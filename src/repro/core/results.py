"""Result containers: per-flow statistics and run summaries.

The paper summarizes a protocol on a scenario with a throughput-delay
point — the median across runs plus a one-standard-deviation ellipse
(Figures 1, 7, 9).  :func:`summarize_ellipse` computes that summary from
a set of per-run flow results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["FlowStats", "RunResult", "EllipsePoint", "summarize_ellipse"]


@dataclass
class FlowStats:
    """Everything measured about one flow in one simulation run."""

    flow_id: int
    kind: str                     # scheme name ("cubic", "tao", "aimd", ...)
    delivered_bytes: int          # unique payload delivered
    on_time_s: float              # total time the application was "on"
    mean_delay_s: float           # mean first-send-to-delivery latency
    base_delay_s: float           # unloaded one-way path latency
    base_rtt_s: float             # unloaded round-trip time
    packets_delivered: int
    packets_sent: int
    retransmissions: int
    timeouts: int
    delta: float = 1.0            # this sender's objective preference

    @property
    def throughput_bps(self) -> float:
        """Paper section 3.2: delivered bytes over total "on" time."""
        if self.on_time_s <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / self.on_time_s

    @property
    def queueing_delay_s(self) -> float:
        """Mean queueing component of delay (total minus unloaded path)."""
        if self.packets_delivered == 0:
            return 0.0
        return max(self.mean_delay_s - self.base_delay_s, 0.0)

    @property
    def loss_rate(self) -> float:
        """Fraction of transmissions that never produced a delivery."""
        if self.packets_sent == 0:
            return 0.0
        lost = self.packets_sent - self.packets_delivered
        return max(lost, 0) / self.packets_sent


@dataclass
class RunResult:
    """One simulation run: flows plus run-level metadata."""

    flows: List[FlowStats]
    seed: int
    duration_s: float
    bottleneck_drops: int = 0
    bottleneck_utilization: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def flows_of_kind(self, kind: str) -> List[FlowStats]:
        return [f for f in self.flows if f.kind == kind]

    def mean_throughput_bps(self,
                            kind: Optional[str] = None) -> float:
        flows = self.flows if kind is None else self.flows_of_kind(kind)
        if not flows:
            return 0.0
        return sum(f.throughput_bps for f in flows) / len(flows)

    def mean_delay_s(self, kind: Optional[str] = None) -> float:
        flows = self.flows if kind is None else self.flows_of_kind(kind)
        flows = [f for f in flows if f.packets_delivered > 0]
        if not flows:
            return 0.0
        return sum(f.mean_delay_s for f in flows) / len(flows)

    def mean_queueing_delay_s(self, kind: Optional[str] = None) -> float:
        flows = self.flows if kind is None else self.flows_of_kind(kind)
        flows = [f for f in flows if f.packets_delivered > 0]
        if not flows:
            return 0.0
        return sum(f.queueing_delay_s for f in flows) / len(flows)


@dataclass(frozen=True)
class EllipsePoint:
    """A Figure 1/7/9-style summary: median point + 1-sigma ellipse."""

    median_throughput_bps: float
    median_delay_s: float
    std_throughput_bps: float
    std_delay_s: float
    n_samples: int

    def as_mbps(self) -> tuple[float, float]:
        return (self.median_throughput_bps / 1e6, self.median_delay_s)


def summarize_ellipse(throughputs_bps: Sequence[float],
                      delays_s: Sequence[float]) -> EllipsePoint:
    """Median + standard deviation of a cloud of (throughput, delay)."""
    if len(throughputs_bps) != len(delays_s) or not throughputs_bps:
        raise ValueError("need equal-length, non-empty samples")
    tpt = np.asarray(throughputs_bps, dtype=float)
    delay = np.asarray(delays_s, dtype=float)
    return EllipsePoint(
        median_throughput_bps=float(np.median(tpt)),
        median_delay_s=float(np.median(delay)),
        std_throughput_bps=float(np.std(tpt)),
        std_delay_s=float(np.std(delay)),
        n_samples=len(throughputs_bps),
    )
