"""The omniscient protocol: the paper's upper bound (section 1.1).

A hypothetical centralized protocol that knows the topology, link
speeds, and exactly when each sender turns on or off.  Whenever the set
of active senders changes it recomputes the *proportionally fair*
throughput allocation and every sender transmits at exactly its
allocation — so no queues ever build and every packet experiences only
propagation delay.

For a sender, the paper defines the omniscient long-term throughput as
the expected value of its allocation (over the stationary on/off
process), with zero queueing delay.  This module provides:

* :func:`proportional_fair_allocation` — general PF solver for a routing
  matrix and capacities (Kelly-style multiplicative dual ascent on link
  prices),
* closed forms for the dumbbell (binomial expectation), and
* subset enumeration for the parking lot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .scenario import NetworkConfig

__all__ = ["OmniscientFlow", "proportional_fair_allocation",
           "dumbbell_expected_throughput", "omniscient_dumbbell",
           "parking_lot_allocation", "omniscient_parking_lot",
           "omniscient_for_config"]


@dataclass(frozen=True)
class OmniscientFlow:
    """The omniscient bound for one flow."""

    flow_id: int
    throughput_bps: float     # E[allocation | flow is on]
    delay_s: float            # unloaded one-way path latency


def proportional_fair_allocation(routes: Sequence[Sequence[float]],
                                 capacities: Sequence[float],
                                 max_iterations: int = 100_000,
                                 tolerance: float = 1e-12) -> np.ndarray:
    """Proportionally fair rates: maximize sum(log x) s.t. R x <= c.

    Solved by multiplicative dual ascent on the link prices (the
    classical Kelly decomposition): each flow transmits at the inverse
    of its path price, and each link multiplies its price by
    ``(load / capacity) ** step``.  The iteration is monotone and
    robust for the small systems this study needs (the solve is exact
    up to ``tolerance``; a final projection guarantees feasibility).

    Parameters
    ----------
    routes:
        L x F matrix; ``routes[l][f]`` is 1 if flow ``f`` crosses link
        ``l`` (fractional entries are allowed).
    capacities:
        Length-L capacities, same units as the returned rates.
    """
    matrix = np.asarray(routes, dtype=float)
    caps = np.asarray(capacities, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != caps.shape[0]:
        raise ValueError("routes must be L x F with len(capacities) == L")
    n_links, n_flows = matrix.shape
    if n_flows == 0:
        return np.zeros(0)
    if np.any(caps <= 0):
        raise ValueError("capacities must be positive")
    for flow in range(n_flows):
        if not np.any(matrix[:, flow] > 0):
            raise ValueError(f"flow {flow} crosses no capacitated link")

    # Work in units where the largest capacity is 1.
    scale = float(np.max(caps))
    caps_scaled = caps / scale
    prices = np.ones(n_links)
    step = 0.5
    rates = np.ones(n_flows)
    for _ in range(max_iterations):
        path_price = matrix.T @ prices
        rates = 1.0 / path_price
        load = matrix @ rates
        ratio = load / caps_scaled
        # Converged when every significant-price link is exactly loaded
        # and nothing is overloaded.
        overload = float(np.max(ratio))
        significant = prices > 1e-9 * float(np.max(prices))
        gap = float(np.max(np.abs(np.log(ratio[significant])))) \
            if np.any(significant) else 0.0
        if overload <= 1.0 + tolerance and gap <= 1e-9:
            break
        prices *= ratio ** step
    # Guarantee feasibility regardless of early exit.
    load = matrix @ rates
    overload = float(np.max(load / caps_scaled))
    if overload > 1.0:
        rates /= overload
    return rates * scale


def dumbbell_expected_throughput(rate_bps: float, n_senders: int,
                                 p_on: float) -> float:
    """E[allocation | on] on a shared link: closed form.

    With each of the other ``n-1`` senders independently on with
    probability ``p``, the sender's PF (equal) share is C/(K+1) with
    K ~ Binomial(n-1, p), and

        E[C / (K+1)] = C * (1 - (1-p)^n) / (n * p).
    """
    if n_senders < 1:
        raise ValueError("n_senders must be >= 1")
    if not 0.0 < p_on <= 1.0:
        raise ValueError("p_on must be in (0, 1]")
    return rate_bps * (1.0 - (1.0 - p_on) ** n_senders) / (n_senders * p_on)


def omniscient_dumbbell(config: NetworkConfig) -> List[OmniscientFlow]:
    """Omniscient bound for every sender of a dumbbell config."""
    if config.topology != "dumbbell":
        raise ValueError("config is not a dumbbell")
    rate = config.link_speed_bps(0)
    tpt = dumbbell_expected_throughput(rate, config.num_senders,
                                       config.p_on)
    one_way = config.rtt_ms / 2e3
    return [OmniscientFlow(i, tpt, one_way)
            for i in range(config.num_senders)]


# ----------------------------------------------------------------------
# Parking lot (Figure 5): flow 0 crosses links 0 and 1; flow 1 only
# link 0; flow 2 only link 1.
# ----------------------------------------------------------------------
_PARKING_ROUTES = {
    0: (1.0, 1.0),
    1: (1.0, 0.0),
    2: (0.0, 1.0),
}


def parking_lot_allocation(link_speeds_bps: Tuple[float, float],
                           active_flows: Sequence[int]) -> Dict[int, float]:
    """PF allocation for a subset of the three parking-lot flows."""
    active = sorted(set(active_flows))
    if not active:
        return {}
    if any(f not in _PARKING_ROUTES for f in active):
        raise ValueError(f"unknown flow in {active_flows}")
    routes = [[_PARKING_ROUTES[f][l] for f in active] for l in (0, 1)]
    # Drop links no active flow crosses (a zero row breaks nothing but
    # wastes a constraint).
    keep = [l for l in (0, 1) if any(routes[l])]
    matrix = [routes[l] for l in keep]
    caps = [link_speeds_bps[l] for l in keep]
    rates = proportional_fair_allocation(matrix, caps)
    return dict(zip(active, rates))


def omniscient_parking_lot(link_speeds_bps: Tuple[float, float],
                           p_on: float,
                           rtt_single_hop_s: float = 0.150
                           ) -> List[OmniscientFlow]:
    """Omniscient bound for the parking lot's three flows.

    Enumerates the on/off states of the other flows (each on with the
    stationary probability) and averages the PF allocation.
    """
    flows = (0, 1, 2)
    one_way = {0: rtt_single_hop_s, 1: rtt_single_hop_s / 2.0,
               2: rtt_single_hop_s / 2.0}
    out: List[OmniscientFlow] = []
    for flow in flows:
        others = [f for f in flows if f != flow]
        expected = 0.0
        for k in range(len(others) + 1):
            for subset in combinations(others, k):
                probability = (p_on ** len(subset)
                               * (1.0 - p_on) ** (len(others) - len(subset)))
                allocation = parking_lot_allocation(
                    link_speeds_bps, [flow, *subset])
                expected += probability * allocation[flow]
        out.append(OmniscientFlow(flow, expected, one_way[flow]))
    return out


def omniscient_for_config(config: NetworkConfig) -> List[OmniscientFlow]:
    """Dispatch on topology."""
    if config.topology == "dumbbell":
        return omniscient_dumbbell(config)
    speeds = (config.link_speed_bps(0), config.link_speed_bps(1))
    return omniscient_parking_lot(speeds, config.p_on,
                                  rtt_single_hop_s=config.rtt_ms / 1e3)
