"""The learnability framework: quantifying the cost of modeling error.

The paper's central methodology (sections 2.2 and 3.6): design a
protocol against *training scenarios* (an imperfect network model), then
measure it on *testing scenarios* (the "real" network).  The learnability
question is how much performance that mismatch costs, compared with

* a protocol designed for an accurate model of the test network, and
* the omniscient upper bound.

This module holds the value-level pieces: the pairing of a training
range with testing configs (:class:`LearnabilityCase`) and the gap
metrics the result sections report (throughput ratios, objective
differences).  The simulation legwork lives in
:mod:`repro.experiments`, keeping this layer import-light.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .objective import Objective
from .scenario import NetworkConfig, ScenarioRange

__all__ = ["LearnabilityCase", "GapReport", "objective_gap",
           "throughput_ratio", "within_factor"]


@dataclass(frozen=True)
class LearnabilityCase:
    """One train/test pairing in the study.

    Example: Table 2's "Tao-10x" is ``training`` spanning 10-100 Mbps and
    ``testing`` sweeping 1-1000 Mbps.
    """

    name: str
    training: ScenarioRange
    testing: Sequence[NetworkConfig]
    objective: Objective = field(default_factory=Objective)

    def in_training_range(self, config: NetworkConfig) -> bool:
        """Is a testing config inside the training model's support?

        Checks the dimensions the paper varies: link speed, RTT, and
        number of senders.  Used to split sweep results into in-range
        and out-of-range regions (Figure 2's shaded bands).
        """
        lo, hi = self.training.link_speed_mbps
        if not all(lo * (1 - 1e-9) <= s <= hi * (1 + 1e-9)
                   for s in config.link_speeds_mbps):
            return False
        lo, hi = self.training.rtt_ms
        if not lo * (1 - 1e-9) <= config.rtt_ms <= hi * (1 + 1e-9):
            return False
        if self.training.sender_mixes is None:
            lo, hi = self.training.num_senders
            if not lo <= config.num_senders <= hi:
                return False
        return True


@dataclass(frozen=True)
class GapReport:
    """Performance gaps of one scheme against references on one scenario."""

    scheme: str
    throughput_bps: float
    delay_s: float
    vs_omniscient_throughput: float    # scheme / omniscient, <= ~1
    vs_accurate_objective: float       # objective difference (log2 units)

    def throughput_within(self, fraction: float) -> bool:
        """True if throughput is within ``fraction`` of omniscient
        (e.g. 0.05 for the calibration experiment's "within 5%")."""
        return self.vs_omniscient_throughput >= 1.0 - fraction


def objective_gap(objective: Objective,
                  scheme_tpt_delay: Sequence[tuple[float, float]],
                  reference_tpt_delay: Sequence[tuple[float, float]]
                  ) -> float:
    """Objective difference (scheme minus reference), in log2 units.

    Positive means the scheme beats the reference.  Both inputs are
    per-flow (throughput_bps, delay_s) pairs.
    """
    return (objective.total(scheme_tpt_delay)
            - objective.total(reference_tpt_delay))


def throughput_ratio(scheme_bps: float, reference_bps: float) -> float:
    """Simple ratio guarded against zero references."""
    if reference_bps <= 0:
        return math.inf if scheme_bps > 0 else 1.0
    return scheme_bps / reference_bps


def within_factor(scheme_bps: float, reference_bps: float,
                  factor: float) -> bool:
    """Is ``scheme`` within a multiplicative ``factor`` of ``reference``?

    Used for paper claims such as "within 3% of the throughput" (factor
    1.03) or "outperformed by 7.2x" (factor check inverted by caller).
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    ratio = throughput_ratio(scheme_bps, reference_bps)
    return 1.0 / factor <= ratio <= factor
