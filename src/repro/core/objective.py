"""Objective functions (paper section 3.2).

The study scores a congestion-control protocol with

    U = log(throughput) - delta * log(delay)                      (Eq. 1)

summed over connections, where throughput is delivered bytes over the
sender's total "on" time, delay is the mean per-packet latency
(propagation + queueing), and ``delta`` weighs delay against throughput
(delta=1 for most experiments; 0.1 for the throughput-sensitive and 10
for the delay-sensitive senders of section 4.6).  The log expresses
proportional fairness.

We use log base 2, as Remy did; the base only shifts every curve by a
constant factor and cancels entirely in comparisons.

For the operating-range figures (2-4) the paper plots a *normalized*
objective so an ideal protocol sits at 0:

    log(throughput / fair_share) - delta * log(delay / min_delay)

where ``fair_share`` is the flow's equal share of the bottleneck and
``min_delay`` its unloaded path latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

__all__ = ["Objective", "normalized_objective", "THROUGHPUT_FLOOR_BPS",
           "DELAY_FLOOR_S"]

#: Floors guarding the logarithms.  A flow that delivered nothing scores
#: as if it moved one bit per second — hugely negative, but finite, so
#: averages over scenario samples stay well-defined.
THROUGHPUT_FLOOR_BPS = 1.0
DELAY_FLOOR_S = 1e-6


@dataclass(frozen=True)
class Objective:
    """The paper's Eq. 1 with a configurable delay weight ``delta``."""

    delta: float = 1.0

    def score(self, throughput_bps: float, delay_s: float) -> float:
        """U = log2(throughput) - delta * log2(delay) for one flow."""
        tpt = max(throughput_bps, THROUGHPUT_FLOOR_BPS)
        delay = max(delay_s, DELAY_FLOOR_S)
        return math.log2(tpt) - self.delta * math.log2(delay)

    def total(self,
              flows: Iterable[Tuple[float, float]]) -> float:
        """Sum of scores over ``(throughput_bps, delay_s)`` pairs."""
        return sum(self.score(tpt, delay) for tpt, delay in flows)


def normalized_objective(throughput_bps: float, delay_s: float,
                         fair_share_bps: float, min_delay_s: float,
                         delta: float = 1.0) -> float:
    """The normalized score plotted in Figures 2, 3, and 4.

    0 means "fair share of the link at zero queueing delay"; negative
    values measure how far a protocol falls short.

    Parameters
    ----------
    fair_share_bps:
        The flow's equal share of the bottleneck (link rate divided by
        the number of senders).
    min_delay_s:
        The flow's unloaded path latency (propagation + serialization).
    """
    if fair_share_bps <= 0:
        raise ValueError("fair_share_bps must be positive")
    if min_delay_s <= 0:
        raise ValueError("min_delay_s must be positive")
    tpt = max(throughput_bps, THROUGHPUT_FLOOR_BPS)
    delay = max(delay_s, min_delay_s)
    return (math.log2(tpt / fair_share_bps)
            - delta * math.log2(delay / min_delay_s))


def mean_normalized_objective(per_flow: Sequence[Tuple[float, float]],
                              fair_share_bps: float, min_delay_s: float,
                              delta: float = 1.0) -> float:
    """Average normalized objective across flows (one sweep point)."""
    if not per_flow:
        raise ValueError("need at least one flow")
    scores = [normalized_objective(tpt, delay, fair_share_bps,
                                   min_delay_s, delta)
              for tpt, delay in per_flow]
    return sum(scores) / len(scores)
