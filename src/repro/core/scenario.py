"""Network configurations and training-scenario distributions.

The paper's protocol-design process takes a set of *training scenarios*
(section 3.1): a distribution over network configurations expressing the
designer's imperfect model of the eventual network.  Two types model
this here:

* :class:`NetworkConfig` — one concrete network: topology, link speeds,
  RTT, senders (and which scheme each runs), workload, and buffering.
* :class:`ScenarioRange` — a distribution over configs (link speeds
  sampled log-uniformly, sender counts uniformly, an optional menu of
  sender mixes for TCP-awareness/diversity training).  ``sample(rng)``
  draws a config; the Remy optimizer averages its objective over draws.

Sender *kinds* are role strings: ``"learner"`` (the tree being trained /
the Tao under test), ``"peer"`` (a second, fixed tree — used by the
sender-diversity experiment), or any registered scheme name ("aimd",
"cubic", "newreno").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..sim.dynamics import DynamicsSpec
from ..topology.dumbbell import bdp_packets

__all__ = ["NetworkConfig", "ScenarioRange", "QUEUE_KINDS"]

QUEUE_KINDS = ("droptail", "codel", "sfq_codel")


@dataclass(frozen=True)
class NetworkConfig:
    """One fully-specified network scenario.

    Conventions
    -----------
    * ``rtt_ms`` is the unloaded RTT of a *single-hop* flow.  On the
      parking lot each hop gets ``rtt_ms / 2`` one-way delay, so the
      two-hop flow sees ``2 * rtt_ms`` (matching Figure 5: 75 ms per hop,
      150 ms one-hop RTT, 300 ms for the crossing flow).
    * ``link_speeds_mbps`` has one entry per bottleneck: one for the
      dumbbell, two for the parking lot.
    * ``buffer_bdp`` of ``None`` means an infinite ("no drop") buffer;
      ``buffer_bytes`` (if set) takes precedence over ``buffer_bdp``.
    * On the parking lot, ``sender_kinds`` must have exactly 3 entries:
      (two-hop flow, link-1 flow, link-2 flow).
    """

    topology: str = "dumbbell"
    link_speeds_mbps: Tuple[float, ...] = (32.0,)
    rtt_ms: float = 150.0
    sender_kinds: Tuple[str, ...] = ("learner", "learner")
    deltas: Tuple[float, ...] = ()
    mean_on_s: float = 1.0
    mean_off_s: float = 1.0
    buffer_bdp: Optional[float] = 5.0
    buffer_bytes: Optional[float] = None
    queue: str = "droptail"
    #: Optional link dynamics (rate traces, outages, jitter,
    #: reordering).  ``None`` — the overwhelmingly common case — is
    #: omitted from ``to_dict()`` so dynamics-free fingerprints (and
    #: therefore existing ResultStore caches) are byte-identical to
    #: before this field existed.
    dynamics: Optional[DynamicsSpec] = None
    #: ECN marking threshold in packets applied to every bottleneck
    #: queue (DCTCP's *K* on drop-tail; mark-instead-of-drop on
    #: CoDel/sfqCoDel).  ``None`` disables ECN and — like ``dynamics``
    #: — is omitted from ``to_dict()`` so ECN-free fingerprints stay
    #: byte-identical to the pre-ECN format.
    ecn_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.topology not in ("dumbbell", "parking_lot"):
            raise ValueError(f"unknown topology {self.topology!r}")
        expected_links = 1 if self.topology == "dumbbell" else 2
        if len(self.link_speeds_mbps) != expected_links:
            raise ValueError(
                f"{self.topology} needs {expected_links} link speed(s), "
                f"got {len(self.link_speeds_mbps)}")
        if any(s <= 0 for s in self.link_speeds_mbps):
            raise ValueError("link speeds must be positive")
        if self.rtt_ms < 0:
            # Zero is allowed: a zero-propagation network degenerates
            # every hop to the links' serialization times, which is the
            # stress scenario pinning the simulator's direct-call
            # zero-delay path (tests/test_golden_traces.py).
            raise ValueError("rtt_ms must be non-negative")
        if not self.sender_kinds:
            raise ValueError("need at least one sender")
        if self.topology == "parking_lot" and len(self.sender_kinds) != 3:
            raise ValueError("parking lot requires exactly 3 senders")
        if self.queue not in QUEUE_KINDS:
            raise ValueError(f"unknown queue {self.queue!r}")
        if self.mean_on_s < 0:
            raise ValueError("mean_on_s must be non-negative")
        if self.mean_off_s < 0:
            raise ValueError("mean_off_s must be non-negative")
        if self.mean_on_s == 0 and self.mean_off_s != 0:
            # mean_on 0 with real off periods would mean "never sends";
            # only the both-zero degenerate (always-on senders, p_on 1)
            # is meaningful.
            raise ValueError(
                "mean_on_s must be positive (or both mean_on_s and "
                "mean_off_s zero for always-on senders)")
        if self.dynamics is not None:
            if not isinstance(self.dynamics, DynamicsSpec):
                raise ValueError(
                    f"dynamics must be a DynamicsSpec, "
                    f"got {type(self.dynamics).__name__}")
            expected = 1 if self.topology == "dumbbell" else 2
            if len(self.dynamics.links) not in (1, expected):
                raise ValueError(
                    f"dynamics has {len(self.dynamics.links)} link "
                    f"schedule(s); {self.topology} needs 1 (applied to "
                    f"all bottlenecks) or {expected}")
        if self.ecn_threshold is not None and self.ecn_threshold < 0:
            raise ValueError("ecn_threshold must be >= 0 packets")
        if not self.deltas:
            object.__setattr__(
                self, "deltas", tuple(1.0 for _ in self.sender_kinds))
        if len(self.deltas) != len(self.sender_kinds):
            raise ValueError("deltas must align with sender_kinds")

    # ------------------------------------------------------------------
    @property
    def num_senders(self) -> int:
        return len(self.sender_kinds)

    @property
    def p_on(self) -> float:
        """Stationary probability a sender is 'on'.

        The always-on degenerate (both means zero) is 1.0, not a
        ZeroDivisionError.
        """
        total = self.mean_on_s + self.mean_off_s
        if total <= 0:
            return 1.0
        return self.mean_on_s / total

    @property
    def always_on(self) -> bool:
        """True for the degenerate both-zero on/off config (no off
        periods at all — permanent backlog)."""
        return self.mean_on_s == 0 and self.mean_off_s == 0

    def link_speed_bps(self, index: int = 0) -> float:
        return self.link_speeds_mbps[index] * 1e6

    def buffer_packets(self, link_index: int = 0,
                       packet_bytes: int = 1500) -> float:
        """Bottleneck buffer size in packets (inf for "no drop")."""
        if self.buffer_bytes is not None:
            return max(math.floor(self.buffer_bytes / packet_bytes), 1)
        if self.buffer_bdp is None:
            return math.inf
        bdp = bdp_packets(self.link_speed_bps(link_index),
                          self.rtt_ms / 1e3, packet_bytes)
        return max(math.floor(self.buffer_bdp * bdp), 1)

    def fair_share_bps(self) -> float:
        """Equal split of the (first) bottleneck across all senders."""
        return self.link_speed_bps(0) / self.num_senders

    def with_senders(self, kinds: Tuple[str, ...],
                     deltas: Optional[Tuple[float, ...]] = None
                     ) -> "NetworkConfig":
        """A copy with a different sender population."""
        if deltas is None:
            deltas = tuple(1.0 for _ in kinds)
        return replace(self, sender_kinds=kinds, deltas=deltas)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "link_speeds_mbps": list(self.link_speeds_mbps),
            "rtt_ms": self.rtt_ms,
            "sender_kinds": list(self.sender_kinds),
            "deltas": list(self.deltas),
            "mean_on_s": self.mean_on_s,
            "mean_off_s": self.mean_off_s,
            "buffer_bdp": self.buffer_bdp,
            "buffer_bytes": self.buffer_bytes,
            "queue": self.queue,
            # The dynamics key is OMITTED when unset: dynamics-free
            # dicts (and the SimTask fingerprints over them) must stay
            # byte-identical to the pre-dynamics format so existing
            # result stores keep hitting.
            **({"dynamics": self.dynamics.to_dict()}
               if self.dynamics is not None else {}),
            # Same omit-when-unset rule as dynamics: ECN-free configs
            # keep the pre-ECN dict shape (and fingerprints).
            **({"ecn_threshold": self.ecn_threshold}
               if self.ecn_threshold is not None else {}),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkConfig":
        dynamics = data.get("dynamics")
        if dynamics is not None and not isinstance(dynamics, DynamicsSpec):
            dynamics = DynamicsSpec.from_dict(dynamics)
        return cls(
            dynamics=dynamics,
            ecn_threshold=data.get("ecn_threshold"),
            topology=data["topology"],
            link_speeds_mbps=tuple(data["link_speeds_mbps"]),
            rtt_ms=data["rtt_ms"],
            sender_kinds=tuple(data["sender_kinds"]),
            deltas=tuple(data["deltas"]),
            mean_on_s=data["mean_on_s"],
            mean_off_s=data["mean_off_s"],
            buffer_bdp=data["buffer_bdp"],
            buffer_bytes=data["buffer_bytes"],
            queue=data["queue"],
        )


@dataclass(frozen=True)
class ScenarioRange:
    """A distribution over :class:`NetworkConfig` (the training model).

    ``link_speed_mbps`` is sampled log-uniformly (the paper samples "100
    link speeds logarithmically from the range"); ``rtt_ms`` uniformly;
    the sender population either uniformly over ``num_senders`` homogeneous
    learners or uniformly over the explicit ``sender_mixes`` menu.
    """

    topology: str = "dumbbell"
    link_speed_mbps: Tuple[float, float] = (32.0, 32.0)
    rtt_ms: Tuple[float, float] = (150.0, 150.0)
    num_senders: Tuple[int, int] = (2, 2)
    sender_mixes: Optional[Tuple[Tuple[str, ...], ...]] = None
    mean_on_s: float = 1.0
    mean_off_s: float = 1.0
    onoff_options: Optional[Tuple[Tuple[float, float], ...]] = None
    buffer_bdp: Optional[float] = 5.0
    buffer_bytes: Optional[float] = None
    queue: str = "droptail"
    learner_delta: float = 1.0
    peer_delta: float = 1.0

    def __post_init__(self) -> None:
        lo, hi = self.link_speed_mbps
        if not 0 < lo <= hi:
            raise ValueError("link_speed_mbps must satisfy 0 < lo <= hi")
        lo, hi = self.rtt_ms
        if not 0 < lo <= hi:
            raise ValueError("rtt_ms must satisfy 0 < lo <= hi")
        lo, hi = self.num_senders
        if not 0 < lo <= hi:
            raise ValueError("num_senders must satisfy 0 < lo <= hi")
        if self.sender_mixes is not None and not self.sender_mixes:
            raise ValueError("sender_mixes, when given, must be non-empty")
        if self.onoff_options is not None and not self.onoff_options:
            raise ValueError("onoff_options, when given, must be non-empty")

    def _delta_for(self, kind: str) -> float:
        if kind == "learner":
            return self.learner_delta
        if kind == "peer":
            return self.peer_delta
        return 1.0

    def sample(self, rng: random.Random) -> NetworkConfig:
        """Draw one concrete configuration."""
        n_links = 1 if self.topology == "dumbbell" else 2
        lo, hi = self.link_speed_mbps
        speeds = tuple(
            math.exp(rng.uniform(math.log(lo), math.log(hi)))
            for _ in range(n_links))
        rtt = rng.uniform(*self.rtt_ms)
        if self.sender_mixes is not None:
            kinds = self.sender_mixes[rng.randrange(len(self.sender_mixes))]
        else:
            count = rng.randint(*self.num_senders)
            kinds = tuple("learner" for _ in range(count))
        deltas = tuple(self._delta_for(k) for k in kinds)
        if self.onoff_options is not None:
            index = rng.randrange(len(self.onoff_options))
            mean_on, mean_off = self.onoff_options[index]
        else:
            mean_on, mean_off = self.mean_on_s, self.mean_off_s
        return NetworkConfig(
            topology=self.topology,
            link_speeds_mbps=speeds,
            rtt_ms=rtt,
            sender_kinds=kinds,
            deltas=deltas,
            mean_on_s=mean_on,
            mean_off_s=mean_off,
            buffer_bdp=self.buffer_bdp,
            buffer_bytes=self.buffer_bytes,
            queue=self.queue,
        )

    def sample_many(self, n: int, seed: int) -> list[NetworkConfig]:
        """Draw ``n`` configs deterministically from ``seed``."""
        rng = random.Random(seed)
        return [self.sample(rng) for _ in range(n)]
