"""The paper's core contribution: the learnability methodology.

Objective functions (section 3.2), network scenario models (section
3.1), the omniscient upper bound (section 1.1), and train-on-A /
test-on-B gap metrics (section 2.2).
"""

from .learnability import (GapReport, LearnabilityCase, objective_gap,
                           throughput_ratio, within_factor)
from .objective import (DELAY_FLOOR_S, THROUGHPUT_FLOOR_BPS, Objective,
                        mean_normalized_objective, normalized_objective)
from .omniscient import (OmniscientFlow, dumbbell_expected_throughput,
                         omniscient_dumbbell, omniscient_for_config,
                         omniscient_parking_lot, parking_lot_allocation,
                         proportional_fair_allocation)
from .results import EllipsePoint, FlowStats, RunResult, summarize_ellipse
from .scenario import QUEUE_KINDS, NetworkConfig, ScenarioRange

__all__ = [
    "Objective", "normalized_objective", "mean_normalized_objective",
    "THROUGHPUT_FLOOR_BPS", "DELAY_FLOOR_S",
    "NetworkConfig", "ScenarioRange", "QUEUE_KINDS",
    "OmniscientFlow", "proportional_fair_allocation",
    "dumbbell_expected_throughput", "omniscient_dumbbell",
    "parking_lot_allocation", "omniscient_parking_lot",
    "omniscient_for_config",
    "FlowStats", "RunResult", "EllipsePoint", "summarize_ellipse",
    "LearnabilityCase", "GapReport", "objective_gap",
    "throughput_ratio", "within_factor",
]
