"""Simulation budgets: trading fidelity against wall-clock time.

A pure-Python packet-level simulator processes a bounded number of
events per second, so every experiment here runs at a configurable
*scale*: simulated duration shrinks on fast links to keep per-run packet
counts bounded (the reproduction's key cost-control, DESIGN.md
section 2), while floors on duration keep enough RTTs and on/off cycles
in each run for the statistics to mean something.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from .scenario import NetworkConfig

__all__ = ["Scale", "QUICK", "DEFAULT", "FULL", "NAMED_SCALES",
           "PACKET_BYTES"]

#: On-the-wire data packet size used for packet-rate math (matches
#: :data:`repro.protocols.transport.DATA_PACKET_BYTES`).
PACKET_BYTES = 1500


@dataclass(frozen=True)
class Scale:
    """Simulation budget knobs shared by experiments and training.

    ``duration_s`` caps the simulated time; ``packet_budget`` shrinks the
    duration on fast links (a 1000 Mbps run is limited to roughly
    ``packet_budget`` packet events); ``min_duration_s`` keeps enough
    on/off cycles and RTTs in even the fastest runs.
    """

    duration_s: float = 60.0
    packet_budget: int = 300_000
    min_duration_s: float = 4.0
    n_seeds: int = 4
    sweep_points: int = 12

    def duration_for(self, config: NetworkConfig) -> float:
        """Simulated seconds for one run of ``config``."""
        rate_pps = max(config.link_speeds_mbps) * 1e6 / (
            8.0 * PACKET_BYTES)
        capped = self.packet_budget / max(rate_pps, 1.0)
        duration = min(self.duration_s, capped)
        floor = max(self.min_duration_s, 10.0 * config.rtt_ms / 1e3)
        return max(duration, floor)

    def with_seeds(self, n_seeds: int) -> "Scale":
        return replace(self, n_seeds=n_seeds)

    # ------------------------------------------------------------------
    @classmethod
    def named(cls, name: str) -> "Scale":
        """The canonical scale registered under ``name``.

        This is the single named-scale lookup shared by the CLI scripts
        (``--scale quick|default|full``), the benchmark harness, and the
        sweep engine — there is deliberately no second SCALES dict
        anywhere else.
        """
        try:
            return NAMED_SCALES[name]
        except KeyError:
            raise ValueError(f"unknown scale {name!r}; "
                             f"available: {sorted(NAMED_SCALES)}") from None

    @classmethod
    def names(cls) -> Tuple[str, ...]:
        """Registered scale names, smallest budget first."""
        return tuple(NAMED_SCALES)


#: Smoke/benchmark scale: seconds per experiment (the budget the CI
#: smoke job and the parity tables run at).
QUICK = Scale(duration_s=10.0, packet_budget=30_000, min_duration_s=4.0,
              n_seeds=2, sweep_points=5)

#: Default scale for examples and EXPERIMENTS.md numbers.  (Unified
#: with the CLI's former SCALES["default"]; smaller than the pre-PR-4
#: library DEFAULT — pass an explicit Scale for bigger budgets.)
DEFAULT = Scale(duration_s=30.0, packet_budget=90_000, min_duration_s=4.0,
                n_seeds=3, sweep_points=7)

#: The largest named budget (the CLI's --scale full): minutes per
#: experiment on one core.  Still far below the paper's statistics —
#: scale n_seeds/duration_s up explicitly for publication-grade runs.
FULL = Scale(duration_s=60.0, packet_budget=300_000, min_duration_s=4.0,
             n_seeds=5, sweep_points=10)

#: The :meth:`Scale.named` registry, smallest budget first.
NAMED_SCALES: Dict[str, Scale] = {
    "quick": QUICK, "default": DEFAULT, "full": FULL,
}
