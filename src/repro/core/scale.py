"""Simulation budgets: trading fidelity against wall-clock time.

A pure-Python packet-level simulator processes a bounded number of
events per second, so every experiment here runs at a configurable
*scale*: simulated duration shrinks on fast links to keep per-run packet
counts bounded (the reproduction's key cost-control, DESIGN.md
section 2), while floors on duration keep enough RTTs and on/off cycles
in each run for the statistics to mean something.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .scenario import NetworkConfig

__all__ = ["Scale", "QUICK", "DEFAULT", "FULL", "PACKET_BYTES"]

#: On-the-wire data packet size used for packet-rate math (matches
#: :data:`repro.protocols.transport.DATA_PACKET_BYTES`).
PACKET_BYTES = 1500


@dataclass(frozen=True)
class Scale:
    """Simulation budget knobs shared by experiments and training.

    ``duration_s`` caps the simulated time; ``packet_budget`` shrinks the
    duration on fast links (a 1000 Mbps run is limited to roughly
    ``packet_budget`` packet events); ``min_duration_s`` keeps enough
    on/off cycles and RTTs in even the fastest runs.
    """

    duration_s: float = 60.0
    packet_budget: int = 300_000
    min_duration_s: float = 4.0
    n_seeds: int = 4
    sweep_points: int = 12

    def duration_for(self, config: NetworkConfig) -> float:
        """Simulated seconds for one run of ``config``."""
        rate_pps = max(config.link_speeds_mbps) * 1e6 / (
            8.0 * PACKET_BYTES)
        capped = self.packet_budget / max(rate_pps, 1.0)
        duration = min(self.duration_s, capped)
        floor = max(self.min_duration_s, 10.0 * config.rtt_ms / 1e3)
        return max(duration, floor)

    def with_seeds(self, n_seeds: int) -> "Scale":
        return replace(self, n_seeds=n_seeds)


#: Benchmark scale: seconds per experiment.
QUICK = Scale(duration_s=12.0, packet_budget=40_000, n_seeds=2,
              sweep_points=6)

#: Default scale for examples and EXPERIMENTS.md numbers.
DEFAULT = Scale(duration_s=60.0, packet_budget=300_000, n_seeds=4,
                sweep_points=12)

#: Full scale, approaching the paper's statistics.
FULL = Scale(duration_s=120.0, packet_budget=1_500_000, n_seeds=8,
             sweep_points=24)
