"""repro.exec — the unified parallel execution layer.

Every simulation this package runs — Remy training evaluations, the
experiment sweeps, the CLI scripts — is one of thousands of independent
(config, trees, seed) runs.  This subpackage gives them a single
batch-execution layer:

* :class:`SimTask` / :class:`SimTaskResult` — declarative, picklable
  descriptions of one run and its output, with a stable fingerprint.
* :class:`Executor` and its implementations (:class:`SerialExecutor`,
  :class:`ProcessPoolExecutor`, :class:`CachingExecutor`).
* :func:`run_batch` / :func:`executor_for` — the entry points callers
  actually use.

See ``docs/EXECUTION.md`` for the architecture and the determinism
contract (serial and pooled execution are bitwise-identical).
"""

from .batch import executor_for, run_batch
from .executors import (CachingExecutor, Executor, ProcessPoolExecutor,
                        SerialExecutor, default_jobs)
from .task import SimTask, SimTaskResult, run_sim_task

__all__ = [
    "SimTask", "SimTaskResult", "run_sim_task",
    "Executor", "SerialExecutor", "ProcessPoolExecutor",
    "CachingExecutor", "default_jobs",
    "run_batch", "executor_for",
]
