"""repro.exec — the unified parallel execution layer.

Every simulation this package runs — Remy training evaluations, the
experiment sweeps, the CLI scripts — is one of thousands of independent
(config, trees, seed) runs.  This subpackage gives them a single
batch-execution layer:

* :class:`SimTask` / :class:`SimTaskResult` — declarative, picklable
  descriptions of one run and its output, with a stable fingerprint
  exposed as the universal :func:`cache_key`.
* :class:`Executor` and its implementations (:class:`SerialExecutor`,
  :class:`ProcessPoolExecutor` with cost-packed chunks,
  :class:`SupervisedExecutor` adding retry/timeout/quarantine fault
  tolerance under a :class:`RetryPolicy`, :class:`CachingExecutor` in
  memory, :class:`StoreExecutor` on disk).
* :class:`RemoteExecutor` / :class:`WorkerServer` — multi-host
  dispatch over TCP (``scripts/worker.py`` daemons) under the same
  :class:`RetryPolicy` failure contract, with lease-based ownership,
  session-resuming reconnects, work stealing, and graceful local
  fallback (``--workers host:port,...`` on the CLIs).
* :class:`ResultStore` — the sharded, schema-versioned,
  corruption-tolerant on-disk result map behind :class:`StoreExecutor`;
  it makes crashed sweeps resumable and shares results across
  processes.
* :func:`run_batch` / :func:`executor_for` — the entry points callers
  actually use (both accept ``store=``).

See ``docs/EXECUTION.md`` for the architecture, the determinism
contract (serial, pooled, and store-backed execution are
bitwise-identical), and the on-disk store format.
"""

from .batch import executor_for, run_batch
from .executors import (CachingExecutor, Executor, ProcessPoolExecutor,
                        SerialExecutor, default_jobs, pack_chunks,
                        task_cost)
from .remote import (RemoteExecutor, RemoteStats, WorkerServer,
                     add_workers_argument, parse_workers, serve_worker,
                     workers_from_args)
from .store import (SCHEMA_VERSION, ResultStore, StoreExecutor,
                    StoreSchemaError, StoreStats, store_main)
from .supervise import (RetryPolicy, SupervisedExecutor, SuperviseStats,
                        TaskFailedError, add_fault_tolerance_arguments,
                        policy_from_args)
from .task import (BACKENDS, SimTask, SimTaskResult, TaskFailure,
                   cache_key, run_sim_task, run_task_group)

__all__ = [
    "SimTask", "SimTaskResult", "TaskFailure", "run_sim_task",
    "run_task_group", "cache_key", "BACKENDS",
    "Executor", "SerialExecutor", "ProcessPoolExecutor",
    "CachingExecutor", "StoreExecutor", "SupervisedExecutor",
    "RemoteExecutor", "RemoteStats", "WorkerServer", "serve_worker",
    "parse_workers", "add_workers_argument", "workers_from_args",
    "default_jobs", "pack_chunks", "task_cost",
    "RetryPolicy", "SuperviseStats", "TaskFailedError",
    "add_fault_tolerance_arguments", "policy_from_args",
    "ResultStore", "StoreStats", "StoreSchemaError", "SCHEMA_VERSION",
    "store_main",
    "run_batch", "executor_for",
]
