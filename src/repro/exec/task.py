"""Declarative simulation tasks.

A :class:`SimTask` is a pickle-friendly description of *one* simulation
run: the network config (as a plain dict), the whisker trees by sender
kind (as JSON strings), the RNG seed, the simulated duration, and
whether to record per-whisker usage.  Everything an executor needs to
reproduce the run in another process — and nothing else — lives on the
task, which is what makes the execution layer's determinism contract
possible: the same task always produces the same result, bit for bit,
regardless of which worker runs it.

Tasks carry a stable :meth:`SimTask.fingerprint` (a SHA-1 over the
canonical JSON form), exposed to every cache through :func:`cache_key`:
:class:`~repro.exec.executors.CachingExecutor` keys its in-memory memo
with it, :class:`~repro.exec.store.StoreExecutor` keys the on-disk
result store with it, and the evaluator uses it to avoid re-running
incumbents.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SimTask", "SimTaskResult", "run_sim_task", "cache_key"]


@dataclass(frozen=True)
class SimTask:
    """One simulation, fully described by plain picklable data.

    Build instances with :meth:`build` (from live ``NetworkConfig`` /
    ``WhiskerTree`` objects) rather than the raw constructor.
    """

    config: dict                           # NetworkConfig.to_dict()
    trees: Tuple[Tuple[str, str], ...]     # sorted (kind, tree_json)
    seed: int
    duration_s: float
    record_usage: bool = False

    @classmethod
    def build(cls, config, trees=None, seed: int = 0,
              duration_s: float = 10.0,
              record_usage: bool = False) -> "SimTask":
        """Construct from a :class:`~repro.core.scenario.NetworkConfig`
        and a ``{kind: WhiskerTree}`` mapping (either may already be in
        serialized form)."""
        config_dict = config if isinstance(config, dict) \
            else config.to_dict()
        pairs = []
        for kind, tree in sorted((trees or {}).items()):
            pairs.append((kind, tree if isinstance(tree, str)
                          else tree.to_json()))
        return cls(config=config_dict, trees=tuple(pairs), seed=seed,
                   duration_s=duration_s, record_usage=record_usage)

    def fingerprint(self) -> str:
        """Stable digest over every field that affects the result."""
        payload = json.dumps(
            {"config": self.config, "trees": self.trees,
             "seed": self.seed, "duration_s": self.duration_s,
             "record_usage": self.record_usage},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(payload.encode()).hexdigest()


def cache_key(task: "SimTask") -> str:
    """The one key every result cache uses, memory or disk.

    Both :class:`~repro.exec.executors.CachingExecutor` and
    :class:`~repro.exec.store.StoreExecutor` key results through this
    helper, so an in-memory entry and an on-disk entry for the same task
    can never be filed under different keys.  The format is pinned by
    ``tests/test_exec.py::TestSimTask::test_fingerprint_format_pinned``;
    changing it invalidates every existing on-disk store, so bump
    :data:`repro.exec.store.SCHEMA_VERSION` alongside any change here.
    """
    return task.fingerprint()


@dataclass
class SimTaskResult:
    """What one executed :class:`SimTask` produced.

    ``run`` holds the full per-flow statistics; ``usage_counts`` /
    ``usage_sums`` carry the learner tree's per-whisker usage when the
    task asked for it (empty otherwise).  Consumers derive scores from
    these fields on the submitting side, so scoring policy never needs
    to travel to the workers.
    """

    run: "RunResult"               # repro.core.results.RunResult
    usage_counts: List[int] = field(default_factory=list)
    usage_sums: List[List[float]] = field(default_factory=list)


def run_sim_task(task: SimTask) -> SimTaskResult:
    """Execute one task (module-level so multiprocessing can pickle it).

    This is the single choke point every executor funnels through:
    serial and pooled execution differ only in *where* this function
    runs, never in what it computes.
    """
    # Imported at call time, not module top: experiments.common imports
    # the protocols package, which imports repro.remy — a cycle at
    # import time but not at call time.
    from ..core.scenario import NetworkConfig
    from ..experiments.common import build_simulation
    from ..remy.compiled import compiled_from_json
    from ..remy.tree import WhiskerTree

    trees: Dict[str, WhiskerTree] = {}
    for kind, text in task.trees:
        tree = WhiskerTree.from_json(text)
        # The task's tree JSON is the canonical serialization its
        # fingerprint hashes, so it keys a process-wide compilation
        # memo: evaluating one candidate over a (config x seed) grid
        # compiles it once per worker, not once per task.
        tree.adopt_compiled(compiled_from_json(text))
        trees[kind] = tree
    config = NetworkConfig.from_dict(task.config)
    handle = build_simulation(config, trees=trees, seed=task.seed,
                              record_usage=task.record_usage)
    run = handle.run(task.duration_s)
    counts: List[int] = []
    sums: List[List[float]] = []
    if task.record_usage and "learner" in trees:
        counts, sums = trees["learner"].extract_stats()
    return SimTaskResult(run=run, usage_counts=counts, usage_sums=sums)
