"""Declarative simulation tasks.

A :class:`SimTask` is a pickle-friendly description of *one* simulation
run: the network config (as a plain dict), the whisker trees by sender
kind (as JSON strings), the RNG seed, the simulated duration, and
whether to record per-whisker usage.  Everything an executor needs to
reproduce the run in another process — and nothing else — lives on the
task, which is what makes the execution layer's determinism contract
possible: the same task always produces the same result, bit for bit,
regardless of which worker runs it.

Tasks carry a stable :meth:`SimTask.fingerprint` (a SHA-1 over the
canonical JSON form), exposed to every cache through :func:`cache_key`:
:class:`~repro.exec.executors.CachingExecutor` keys its in-memory memo
with it, :class:`~repro.exec.store.StoreExecutor` keys the on-disk
result store with it, and the evaluator uses it to avoid re-running
incumbents.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SimTask", "SimTaskResult", "TaskFailure", "run_sim_task",
           "run_task_group", "cache_key", "BACKENDS"]

#: Simulation backends a task may select.  ``"packet"`` is the exact
#: event-driven engine (the source of truth); ``"fluid"`` is the
#: vectorized discrete-time approximation (:mod:`repro.sim.fluid`).
BACKENDS = ("packet", "fluid")


@dataclass(frozen=True)
class SimTask:
    """One simulation, fully described by plain picklable data.

    Build instances with :meth:`build` (from live ``NetworkConfig`` /
    ``WhiskerTree`` objects) rather than the raw constructor.
    """

    config: dict                           # NetworkConfig.to_dict()
    trees: Tuple[Tuple[str, str], ...]     # sorted (kind, tree_json)
    seed: int
    duration_s: float
    record_usage: bool = False
    backend: str = "packet"

    @classmethod
    def build(cls, config, trees=None, seed: int = 0,
              duration_s: float = 10.0,
              record_usage: bool = False,
              backend: str = "packet") -> "SimTask":
        """Construct from a :class:`~repro.core.scenario.NetworkConfig`
        and a ``{kind: WhiskerTree}`` mapping (either may already be in
        serialized form)."""
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        config_dict = config if isinstance(config, dict) \
            else config.to_dict()
        pairs = []
        for kind, tree in sorted((trees or {}).items()):
            pairs.append((kind, tree if isinstance(tree, str)
                          else tree.to_json()))
        if backend == "fluid":
            # Fail at build time, not mid-batch: by the time a mixed
            # task group reaches the fluid branch, every packet task in
            # the batch has already been simulated — an unsupported
            # scheme or packet-only dynamics feature should reject the
            # task before any work happens, with the reason named.
            from ..core.scenario import NetworkConfig
            from ..sim.fluid import fluid_refusal
            cfg = config if isinstance(config, NetworkConfig) \
                else NetworkConfig.from_dict(config_dict)
            reason = fluid_refusal(cfg, tree_kinds=[k for k, _ in pairs])
            if reason is not None:
                raise ValueError(
                    f"backend 'fluid' cannot run this task: {reason}")
        return cls(config=config_dict, trees=tuple(pairs), seed=seed,
                   duration_s=duration_s, record_usage=record_usage,
                   backend=backend)

    def fingerprint(self) -> str:
        """Stable digest over every field that affects the result.

        The default ``backend="packet"`` is *omitted* from the hashed
        payload, so packet tasks fingerprint exactly as they did before
        the field existed — every pre-existing store shard and evaluator
        memo stays valid.  Non-default backends are hashed in, so a
        fluid result can never be filed under (or served for) the
        packet key of the same scenario.
        """
        payload = {"config": self.config, "trees": self.trees,
                   "seed": self.seed, "duration_s": self.duration_s,
                   "record_usage": self.record_usage}
        if self.backend != "packet":
            payload["backend"] = self.backend
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha1(text.encode()).hexdigest()


def cache_key(task: "SimTask") -> str:
    """The one key every result cache uses, memory or disk.

    Both :class:`~repro.exec.executors.CachingExecutor` and
    :class:`~repro.exec.store.StoreExecutor` key results through this
    helper, so an in-memory entry and an on-disk entry for the same task
    can never be filed under different keys.  The format is pinned by
    ``tests/test_exec.py::TestSimTask::test_fingerprint_format_pinned``;
    changing it invalidates every existing on-disk store, so bump
    :data:`repro.exec.store.SCHEMA_VERSION` alongside any change here.
    """
    return task.fingerprint()


@dataclass(frozen=True)
class TaskFailure:
    """Why a task produced no :class:`RunResult`.

    ``kind`` is one of ``"exception"`` (the task itself raised),
    ``"timeout"`` (it exceeded its cost-derived wall-clock budget), or
    ``"worker-death"`` (the worker process died while — after
    bisection, provably *because of* — running it).  ``attempts`` is
    how many times the task was tried before the executor gave up.
    ``resubmissions`` counts how many crash-triggered resubmissions the
    task rode through (the bisection depth for a poison task).
    """

    kind: str
    message: str
    attempts: int = 1
    error_type: str = ""
    traceback: str = ""
    resubmissions: int = 0


@dataclass
class SimTaskResult:
    """What one executed :class:`SimTask` produced.

    ``run`` holds the full per-flow statistics; ``usage_counts`` /
    ``usage_sums`` carry the learner tree's per-whisker usage when the
    task asked for it (empty otherwise).  Consumers derive scores from
    these fields on the submitting side, so scoring policy never needs
    to travel to the workers.

    A result is *either* a run *or* a failure: under the supervised
    executor's quarantine policy a task that exhausted its retries
    yields ``run=None`` with ``failure`` describing why, instead of
    killing the batch.  Check :attr:`ok` before touching :attr:`run`.
    """

    run: Optional["RunResult"] = None   # repro.core.results.RunResult
    usage_counts: List[int] = field(default_factory=list)
    usage_sums: List[List[float]] = field(default_factory=list)
    failure: Optional[TaskFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_sim_task(task: SimTask) -> SimTaskResult:
    """Execute one task (module-level so multiprocessing can pickle it).

    This is the single choke point every executor funnels through:
    serial and pooled execution differ only in *where* this function
    runs, never in what it computes.
    """
    # Imported at call time, not module top: experiments.common imports
    # the protocols package, which imports repro.remy — a cycle at
    # import time but not at call time.
    from ..core.scenario import NetworkConfig
    from ..experiments.common import build_simulation
    from ..remy.compiled import compiled_from_json
    from ..remy.tree import WhiskerTree

    trees: Dict[str, WhiskerTree] = {}
    for kind, text in task.trees:
        tree = WhiskerTree.from_json(text)
        # The task's tree JSON is the canonical serialization its
        # fingerprint hashes, so it keys a process-wide compilation
        # memo: evaluating one candidate over a (config x seed) grid
        # compiles it once per worker, not once per task.
        tree.adopt_compiled(compiled_from_json(text))
        trees[kind] = tree
    config = NetworkConfig.from_dict(task.config)
    if task.backend == "fluid":
        from ..sim.fluid import simulate_fluid
        run = simulate_fluid(config, trees=trees, seeds=(task.seed,),
                             duration_s=task.duration_s)[0]
        # The fluid model has no per-whisker usage instrumentation;
        # usage-recording consumers must stay on the packet backend.
        return SimTaskResult(run=run)
    handle = build_simulation(config, trees=trees, seed=task.seed,
                              record_usage=task.record_usage)
    run = handle.run(task.duration_s)
    counts: List[int] = []
    sums: List[List[float]] = []
    if task.record_usage and "learner" in trees:
        counts, sums = trees["learner"].extract_stats()
    return SimTaskResult(run=run, usage_counts=counts, usage_sums=sums)


def run_task_group(tasks: Sequence[SimTask]) -> List[SimTaskResult]:
    """Execute a batch of tasks, vectorizing fluid seed batches.

    Packet tasks run one at a time through :func:`run_sim_task`.  Fluid
    tasks that differ only by seed are grouped and evaluated by a single
    :func:`~repro.sim.fluid.simulate_fluid` call — one array program per
    (config, trees, duration) group.  Because the fluid integrator is
    batch-invariant (elementwise across seeds), the grouped results are
    bitwise-identical to running each task alone, so every executor may
    route through here without weakening the determinism contract.
    """
    from ..core.scenario import NetworkConfig
    from ..remy.compiled import compiled_from_json
    from ..remy.tree import WhiskerTree

    results: List[Optional[SimTaskResult]] = [None] * len(tasks)
    groups: Dict[Tuple, List[int]] = {}
    for i, task in enumerate(tasks):
        if task.backend != "fluid":
            results[i] = run_sim_task(task)
            continue
        key = (json.dumps(task.config, sort_keys=True,
                          separators=(",", ":")),
               task.trees, task.duration_s, task.record_usage)
        groups.setdefault(key, []).append(i)
    for key, indices in groups.items():
        from ..sim.fluid import simulate_fluid
        first = tasks[indices[0]]
        trees: Dict[str, WhiskerTree] = {}
        for kind, text in first.trees:
            tree = WhiskerTree.from_json(text)
            tree.adopt_compiled(compiled_from_json(text))
            trees[kind] = tree
        config = NetworkConfig.from_dict(first.config)
        seeds = [tasks[i].seed for i in indices]
        runs = simulate_fluid(config, trees=trees, seeds=seeds,
                              duration_s=first.duration_s)
        for i, run in zip(indices, runs):
            results[i] = SimTaskResult(run=run)
    return results  # type: ignore[return-value]
