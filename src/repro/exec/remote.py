"""Remote execution: ship task batches to worker daemons over TCP.

:class:`RemoteExecutor` is the multi-host analogue of
:class:`~repro.exec.supervise.SupervisedExecutor`: the same cost-packed
chunking, the same :class:`~repro.exec.supervise.RetryPolicy`, the same
per-task acks-as-heartbeats, bisection on lost assignments, and
quarantine semantics — but the "workers" are
:class:`WorkerServer` daemons (``scripts/worker.py``) reached over
length-prefixed, CRC-checked frames instead of forked processes reached
over pipes.  Tasks are already plain-data, fingerprinted payloads
(:class:`~repro.exec.task.SimTask`), so shipping them to another host
cannot change what they compute: completed remote results are
bitwise-identical to a fault-free serial run, pinned by the same golden
digests as every other executor.

Failure contract (the PR-8 semantics, verbatim, over a network):

* **Lease-based ownership** — an assignment's deadline is the policy's
  slack plus the sum of its unacknowledged tasks' cost-derived budgets;
  every per-task result message is an ack that shrinks the budget and
  extends the lease.  A silent worker (hung, partitioned, or just gone)
  blows its lease, the connection is dropped, and the lost tasks
  re-dispatch with **bisection** — the PR-8 poison-isolation bound: a
  task that provably kills whatever runs it is isolated in at most
  ``log2(chunk)`` resubmissions, then quarantined (or raised).
* **Reconnect with backoff** — a lost connection retries with
  exponential backoff under a **resumable session id**: the daemon
  keeps a per-session result cache keyed by task fingerprint, so
  re-dispatched tasks that already ran are answered instantly instead
  of recomputed.  After ``max_reconnects`` consecutive failures the
  worker is written off as dead.
* **Straggler mitigation** — when a worker sits idle and nothing is
  queued, the tail half of the busiest in-flight assignment is
  *stolen*: re-packed into a speculative duplicate assignment, resolved
  first-result-wins.  Safe because results are deterministic per
  fingerprint — whichever copy lands first *is* the answer.
* **Graceful degradation** — zero reachable workers (at startup or
  mid-batch) falls back to a local
  :class:`~repro.exec.supervise.SupervisedExecutor` with a warning,
  never an error.

Chaos testing rides the same seeded :class:`~repro.exec.faults.FaultPlan`
scheme: the wire kinds (``conn-drop`` / ``frame-corrupt`` /
``partition`` / ``delay``) fire at the daemon's *send* boundary — after
the task ran and was cached — so an injected network fault costs a
round-trip, not a recompute, and the schedule is a pure function of
``(plan, fingerprint, attempt)``.

Security note: frames are pickled Python objects.  The checksum detects
*corruption*, not tampering — run workers only on hosts/networks you
trust, exactly like any other pickle-based RPC
(``multiprocessing.connection`` included).
"""

from __future__ import annotations

import argparse
import dataclasses
import heapq
import pickle
import select
import socket
import struct
import threading
import time
import traceback
import uuid
import warnings
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

from . import faults
from .executors import ProcessPoolExecutor
from .supervise import (RetryPolicy, SupervisedExecutor, _Assignment,
                        _units)
from .task import (SimTask, SimTaskResult, TaskFailure, cache_key,
                   run_task_group)

__all__ = ["FrameError", "RemoteExecutor", "RemoteStats", "WorkerServer",
           "add_workers_argument", "parse_workers", "recv_frame",
           "send_frame", "serve_worker", "workers_from_args"]

#: Client poll tick, mirroring the supervisor's.
_TICK_S = 0.05

# ----------------------------------------------------------------------
# Wire format: 4-byte magic, big-endian (crc32, length) header, pickled
# payload.  The CRC covers the *uncorrupted* payload, so a frame whose
# bytes were damaged in flight (or by the frame-corrupt chaos fault)
# fails the checksum instead of unpickling garbage.

_MAGIC = b"RPX1"
_HEADER = struct.Struct(">II")
#: Refuse absurd frame lengths outright — a desynced or hostile stream
#: must not convince the client to buffer gigabytes.
_MAX_FRAME = 1 << 28


class FrameError(RuntimeError):
    """A frame failed its magic, length bound, or checksum.

    Always treated as a broken connection: once the byte stream has
    desynced there is no way to find the next frame boundary, so the
    peer is dropped and (client-side) the reconnect path takes over.
    """


class _DropConnection(Exception):
    """Internal: the conn-drop chaos fault — abandon this connection."""


def _corrupted(payload: bytes) -> bytes:
    """Flip the first bytes of ``payload`` (chaos: frame-corrupt)."""
    return bytes(b ^ 0xFF for b in payload[:16]) + payload[16:]


def send_frame(sock: socket.socket, obj, corrupt: bool = False) -> None:
    """Pickle ``obj`` and send it as one checksummed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MAGIC + _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                                   len(payload))
    sock.sendall(header + (_corrupted(payload) if corrupt else payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        data = sock.recv(n - len(buf))
        if not data:
            raise ConnectionError("connection closed mid-frame")
        buf.extend(data)
    return bytes(buf)


def recv_frame(sock: socket.socket):
    """Blocking read of one frame (daemon side / client handshake)."""
    header = _recv_exact(sock, len(_MAGIC) + _HEADER.size)
    if header[:len(_MAGIC)] != _MAGIC:
        raise FrameError(f"bad frame magic {header[:len(_MAGIC)]!r}")
    crc, length = _HEADER.unpack(header[len(_MAGIC):])
    if length > _MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds limit")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("frame checksum mismatch")
    return pickle.loads(payload)


def _parse_frames(buf: bytearray) -> List:
    """Pop every complete frame off ``buf`` (client's per-conn buffer)."""
    out = []
    header_len = len(_MAGIC) + _HEADER.size
    while len(buf) >= header_len:
        if bytes(buf[:len(_MAGIC)]) != _MAGIC:
            raise FrameError(f"bad frame magic {bytes(buf[:4])!r}")
        crc, length = _HEADER.unpack(bytes(buf[len(_MAGIC):header_len]))
        if length > _MAX_FRAME:
            raise FrameError(f"frame length {length} exceeds limit")
        if len(buf) < header_len + length:
            break
        payload = bytes(buf[header_len:header_len + length])
        del buf[:header_len + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise FrameError("frame checksum mismatch")
        out.append(pickle.loads(payload))
    return out


# ----------------------------------------------------------------------
# Worker daemon.


class WorkerServer:
    """A worker daemon serving :class:`RemoteExecutor` clients.

    Thread-per-connection; each connection carries one assignment at a
    time (mirroring one local worker process).  Results are cached per
    *session* keyed by task fingerprint, capped LRU at ``cache_size``
    entries — a client that reconnects under its session id and
    re-dispatches tasks whose results were lost in flight gets instant
    cache hits instead of recomputes.

    ``injector`` overrides fault injection explicitly (tests); when
    ``None``, the daemon uses :func:`repro.exec.faults.injector_from_env`
    — armed only in processes marked by
    :func:`~repro.exec.faults.mark_worker_process`, which
    :func:`serve_worker` (and so ``scripts/worker.py``) does.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 injector: Optional[faults.FaultInjector] = None,
                 cache_size: int = 4096):
        self.host = host
        self.port = port
        self.injector = injector
        self.cache_size = max(int(cache_size), 1)
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: Dict[str, "OrderedDict[str, SimTaskResult]"] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Bind, listen, and serve in background threads; return the
        bound port (useful with ``port=0``)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        sock.settimeout(0.2)       # so the accept loop can see stop()
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept",
            daemon=True)
        self._accept_thread.start()
        return self.port

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (or KeyboardInterrupt)."""
        if self._sock is None:
            self.start()
        try:
            while not self._stop.is_set():
                thread = self._accept_thread
                if thread is None or not thread.is_alive():
                    break
                thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            sock = self._sock
            if sock is None:
                return
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_conn, args=(conn,),
                             name="repro-worker-conn",
                             daemon=True).start()

    # -- session cache -----------------------------------------------------

    def _session(self, sid: str) -> "OrderedDict[str, SimTaskResult]":
        with self._lock:
            return self._sessions.setdefault(sid, OrderedDict())

    def _cache_get(self, cache, key: str) -> Optional[SimTaskResult]:
        with self._lock:
            result = cache.get(key)
            if result is not None:
                cache.move_to_end(key)
            return result

    def _cache_put(self, cache, key: str,
                   result: SimTaskResult) -> None:
        with self._lock:
            cache[key] = result
            cache.move_to_end(key)
            while len(cache) > self.cache_size:
                cache.popitem(last=False)

    # -- per-connection protocol -------------------------------------------

    def _active_injector(self) -> Optional[faults.FaultInjector]:
        if self.injector is not None:
            return self.injector
        try:
            return faults.injector_from_env()
        except ValueError:
            return None

    def _serve_conn(self, sock: socket.socket) -> None:
        try:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            hello = recv_frame(sock)
            if not (isinstance(hello, tuple) and len(hello) >= 2
                    and hello[0] == "hello"):
                return
            sid = hello[1] or uuid.uuid4().hex
            cache = self._session(sid)
            send_frame(sock, ("welcome", sid))
            while not self._stop.is_set():
                msg = recv_frame(sock)
                kind = msg[0] if isinstance(msg, tuple) and msg else None
                if kind == "bye":
                    return
                if kind == "ping":
                    send_frame(sock, ("pong",))
                elif kind == "run" and len(msg) == 5:
                    _, aid, attempt, positions, tasks = msg
                    self._run_assignment(sock, cache, aid, attempt,
                                         positions, tasks)
        except _DropConnection:
            pass
        except (FrameError, ConnectionError, OSError, EOFError,
                pickle.PickleError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _run_assignment(self, sock, cache, aid: int, attempt: int,
                        positions: List[int],
                        tasks: List[SimTask]) -> None:
        """Run one assignment; per-task result messages double as the
        client's heartbeat acks, exactly like the local supervised
        worker's (:func:`repro.exec.supervise._worker_main`)."""
        injector = self._active_injector()
        keys = [cache_key(task) for task in tasks]
        for unit in _units(tasks):
            cached = [self._cache_get(cache, keys[j]) for j in unit]
            if all(result is not None for result in cached):
                # Session replay: the task already ran here (its result
                # was lost in flight) — answer from cache, skip in-task
                # faults (the task is not re-executing).
                outs = cached
            else:
                try:
                    if injector is not None:
                        for j in unit:
                            injector.on_task(keys[j], attempt)
                    outs = run_task_group([tasks[j] for j in unit])
                except Exception as error:
                    detail = (type(error).__name__, str(error),
                              traceback.format_exc())
                    for j in unit:
                        send_frame(sock, ("failure", aid, positions[j],
                                          detail))
                    continue
                for j, out in zip(unit, outs):
                    self._cache_put(cache, keys[j], out)
            for j, out in zip(unit, outs):
                self._send_result(sock, injector, keys[j], attempt,
                                  ("result", aid, positions[j], out))
        send_frame(sock, ("done", aid))

    def _send_result(self, sock, injector, key: str, attempt: int,
                     message) -> None:
        """Send one result frame, applying any scheduled wire fault.

        Faults fire *after* the result is computed and cached, so the
        client's re-dispatch under the same session costs a round-trip,
        not a recompute.
        """
        kind = (injector.on_wire(key, attempt)
                if injector is not None else None)
        if kind == "conn-drop":
            raise _DropConnection(key)
        if kind == "partition":
            time.sleep(injector.plan.partition_s)
        elif kind == "delay":
            time.sleep(injector.plan.delay_s)
        send_frame(sock, message, corrupt=(kind == "frame-corrupt"))


def serve_worker(host: str = "127.0.0.1", port: int = 0,
                 cache_size: int = 4096,
                 on_ready: Optional[Callable[[int], None]] = None) -> None:
    """Run one worker daemon in this process until interrupted.

    Marks the process as a worker first
    (:func:`~repro.exec.faults.mark_worker_process`), so a
    ``REPRO_FAULTS`` plan arms in-task and wire faults *here* — never in
    the dispatching client, whose serial-fallback runs must stay clean.
    ``on_ready`` (if given) receives the bound port once listening.
    """
    faults.mark_worker_process()
    server = WorkerServer(host=host, port=port, cache_size=cache_size)
    bound = server.start()
    if on_ready is not None:
        on_ready(bound)
    server.serve_forever()


# ----------------------------------------------------------------------
# Client.


@dataclass
class RemoteStats:
    """Cumulative counters, mostly for the chaos tests and logs."""

    conn_losses: int = 0        # connections dropped mid-assignment
    reconnects: int = 0         # successful session-resuming reconnects
    dead_workers: int = 0       # workers written off after max_reconnects
    lease_expiries: int = 0     # assignments whose heartbeat lease blew
    frame_errors: int = 0       # corrupt frames (checksum/magic/pickle)
    retries: int = 0            # single-task retries
    bisections: int = 0         # crash-triggered chunk splits
    resubmissions: int = 0      # assignments requeued after a crash
    steals: int = 0             # work-stealing re-packs of batch tails
    duplicates: int = 0         # tasks speculatively duplicated by steals
    serial_fallbacks: int = 0   # in-process last-resort executions
    quarantined: int = 0        # tasks finalized as failure results
    local_fallbacks: int = 0    # batches degraded to the local pool


class _Conn:
    """One worker address plus its connection/assignment state."""

    __slots__ = ("addr", "sock", "buf", "session", "state", "failures",
                 "retry_at", "running")

    def __init__(self, addr: Tuple[str, int]):
        self.addr = addr
        self.sock: Optional[socket.socket] = None
        self.buf = bytearray()
        self.session: Optional[str] = None
        #: offline | idle | busy | backoff | dead
        self.state = "offline"
        self.failures = 0          # consecutive connect failures
        self.retry_at = 0.0
        self.running: Optional[_Lease] = None

    @property
    def name(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"


class _Lease:
    """Client-side state for one in-flight remote assignment.

    The remote analogue of :class:`repro.exec.supervise._Running`: the
    deadline is the lease, per-task result messages are the heartbeats
    that extend it.
    """

    __slots__ = ("assignment", "unacked", "budget", "deadline", "done")

    def __init__(self, assignment: _Assignment, budget: float,
                 deadline: float):
        self.assignment = assignment
        self.unacked: Set[int] = set(assignment.positions)
        self.budget = budget
        self.deadline = deadline
        self.done = False


def parse_workers(spec: Union[str, Sequence]) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` (or a sequence of strings / (host,
    port) pairs) -> a list of addresses.  Listing an address twice opens
    two lanes to that daemon — the unit of client-side parallelism is
    the connection."""
    if isinstance(spec, str):
        parts: List = [part.strip() for part in spec.split(",")
                       if part.strip()]
    else:
        parts = list(spec)
    addrs: List[Tuple[str, int]] = []
    for part in parts:
        if isinstance(part, (tuple, list)) and len(part) == 2:
            addrs.append((str(part[0]), int(part[1])))
            continue
        host, sep, port = str(part).rpartition(":")
        try:
            addrs.append((host, int(port)))
        except ValueError:
            sep = ""
        if not sep or not host:
            raise ValueError(
                f"worker address must be HOST:PORT, got {part!r}")
    return addrs


class RemoteExecutor(ProcessPoolExecutor):
    """Fan tasks out to remote worker daemons under the PR-8 contract.

    A :class:`~repro.exec.executors.ProcessPoolExecutor` subclass (so
    existing ``isinstance`` dispatch keeps working) whose "pool" is a
    set of TCP connections to :class:`WorkerServer` daemons.  See the
    module docstring for the failure semantics; ``policy`` is the same
    :class:`~repro.exec.supervise.RetryPolicy` the local supervised
    executor takes.

    ``fallback_jobs`` sizes the local
    :class:`~repro.exec.supervise.SupervisedExecutor` used when zero
    workers are reachable (default: one per local core).  The fallback
    is created lazily and owned by this executor — ``close()`` releases
    it exactly once.
    """

    def __init__(self, workers: Union[str, Sequence],
                 chunk_size: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None,
                 fallback_jobs: Optional[int] = None,
                 connect_timeout_s: float = 5.0,
                 reconnect_base_s: float = 0.2,
                 reconnect_max_s: float = 5.0,
                 max_reconnects: int = 4,
                 steal: bool = True):
        addrs = parse_workers(workers)
        if not addrs:
            raise ValueError("RemoteExecutor needs at least one worker "
                             "address (HOST:PORT)")
        super().__init__(jobs=len(addrs), chunk_size=chunk_size)
        self.addrs = addrs
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = RemoteStats()
        self.fallback_jobs = fallback_jobs
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_base_s = reconnect_base_s
        self.reconnect_max_s = reconnect_max_s
        self.max_reconnects = max_reconnects
        self.steal = steal
        self._conns: List[_Conn] = []
        self._fallback: Optional[SupervisedExecutor] = None
        self._next_aid = 0

    # -- connection lifecycle ---------------------------------------------

    def _ensure_conns(self) -> List[_Conn]:
        if not self._conns:
            self._conns = [_Conn(addr) for addr in self.addrs]
        return self._conns

    def _backoff(self, conn: _Conn) -> None:
        conn.failures += 1
        if conn.failures > self.max_reconnects:
            conn.state = "dead"
            self.stats.dead_workers += 1
        else:
            conn.state = "backoff"
            conn.retry_at = time.monotonic() + min(
                self.reconnect_base_s * 2.0 ** (conn.failures - 1),
                self.reconnect_max_s)

    def _open(self, conn: _Conn) -> bool:
        """Connect + handshake; on failure schedule a backoff retry."""
        resuming = conn.session is not None
        try:
            sock = socket.create_connection(
                conn.addr, timeout=self.connect_timeout_s)
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
            except OSError:
                pass
            # Stay under a timeout permanently: sends that wedge (peer
            # gone but TCP hasn't noticed) surface as socket.timeout
            # instead of blocking the dispatch loop forever.
            sock.settimeout(self.connect_timeout_s)
            send_frame(sock, ("hello", conn.session))
            msg = recv_frame(sock)
            if not (isinstance(msg, tuple) and len(msg) >= 2
                    and msg[0] == "welcome"):
                sock.close()
                raise FrameError(f"bad handshake from {conn.name}")
            conn.session = msg[1]
        except (OSError, FrameError, ConnectionError, EOFError,
                pickle.PickleError):
            self._backoff(conn)
            return False
        conn.sock = sock
        conn.buf = bytearray()
        conn.state = "idle"
        conn.failures = 0
        if resuming:
            self.stats.reconnects += 1
        return True

    def _lost(self, conn: _Conn) -> Optional[_Lease]:
        """Drop the connection; return its in-flight lease (if any)."""
        lease, conn.running = conn.running, None
        sock, conn.sock = conn.sock, None
        conn.buf = bytearray()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._backoff(conn)
        return lease

    def _ensure_fallback(self) -> SupervisedExecutor:
        if self._fallback is None:
            self._fallback = SupervisedExecutor(self.fallback_jobs,
                                                policy=self.policy)
        return self._fallback

    def _run_local(self, tasks: List[SimTask], positions: Set[int],
                   reason: str) -> Iterator[Tuple[int, SimTaskResult]]:
        """Graceful degradation: run ``positions`` on the local
        supervised pool, warning (not erroring) about the downgrade."""
        order = sorted(positions)
        warnings.warn(
            f"remote execution degraded ({reason}); running "
            f"{len(order)} task(s) on the local supervised pool",
            RuntimeWarning, stacklevel=3)
        self.stats.local_fallbacks += 1
        fallback = self._ensure_fallback()
        stream = fallback.run_iter([tasks[pos] for pos in order])
        try:
            for j, result in stream:
                yield order[j], result
        finally:
            # Deterministic teardown: if this generator is abandoned
            # mid-stream, close the inner one *now* so the fallback's
            # busy workers are reaped immediately, not at GC time.
            stream.close()

    # -- the dispatch loop -------------------------------------------------

    def run_iter(self, tasks: Sequence[SimTask]
                 ) -> Iterator[Tuple[int, SimTaskResult]]:
        tasks = list(tasks)
        if not tasks:
            return
        from .supervise import TaskFailedError
        policy = self.policy
        conns = self._ensure_conns()
        for conn in conns:
            # Stale state from an abandoned batch: drop the lease, keep
            # the socket warm.  Late frames carry old assignment ids
            # and are discarded by the aid check below.
            conn.running = None
            if conn.state == "busy":
                conn.state = "idle"
            if conn.state in ("offline", "backoff"):
                self._open(conn)
        if not any(c.state in ("idle", "busy") for c in conns):
            yield from self._run_local(tasks, set(range(len(tasks))),
                                       "no reachable workers")
            return

        timeouts = [policy.timeout_for(task) for task in tasks]
        pending: Set[int] = set(range(len(tasks)))
        attempts: Dict[int, int] = {}
        resubmits: Dict[int, int] = {}
        speculated: Set[int] = set()
        ready: List[Tuple[float, int, _Assignment]] = []
        emitted: List[Tuple[int, SimTaskResult]] = []
        fatal: List[Tuple[str, TaskFailure]] = []

        def enqueue(positions: List[int], attempt: int,
                    ready_at: float) -> None:
            self._next_aid += 1
            assignment = _Assignment(self._next_aid, list(positions),
                                     attempt)
            heapq.heappush(ready, (ready_at, assignment.aid, assignment))

        def finalize(pos: int, failure: TaskFailure) -> None:
            if pos not in pending:
                return
            pending.discard(pos)
            failure = dataclasses.replace(
                failure, resubmissions=resubmits.get(pos, 0))
            if policy.on_failure == "quarantine":
                self.stats.quarantined += 1
                emitted.append((pos, SimTaskResult(failure=failure)))
            else:
                fatal.append((cache_key(tasks[pos]), failure))

        def on_message(conn: _Conn, msg) -> None:
            lease = conn.running
            if not isinstance(msg, tuple) or len(msg) < 2:
                return
            kind, aid = msg[0], msg[1]
            if lease is None or aid != lease.assignment.aid:
                return                # stale: abandoned assignment
            if kind == "done":
                lease.done = True
                return
            if len(msg) < 4:
                return
            pos = msg[2]
            if pos in lease.unacked:
                # The ack is the heartbeat: shrink the remaining budget
                # and extend the lease for what's left.
                lease.unacked.discard(pos)
                lease.budget -= timeouts[pos]
                lease.deadline = (time.monotonic()
                                  + policy.timeout_slack_s
                                  + max(lease.budget, 0.0))
            if pos not in pending:
                return                # speculation: first result won
            if kind == "result":
                pending.discard(pos)
                emitted.append((pos, msg[3]))
                return
            if kind != "failure":
                return
            error_type, message, tb = msg[3]
            count = attempts.get(pos, 0) + 1
            attempts[pos] = count
            if count <= policy.max_retries:
                self.stats.retries += 1
                enqueue([pos], count,
                        time.monotonic() + policy.backoff_for(count))
            else:
                finalize(pos, TaskFailure(
                    kind="exception",
                    message=f"task raised {error_type}: {message}",
                    attempts=count, error_type=error_type,
                    traceback=tb))

        def on_crash(lease: _Lease, kind: str, now: float) -> None:
            """The lease's worker vanished (conn loss) or went silent
            past its deadline — the PR-8 bisection/poison logic."""
            lost = [pos for pos in lease.assignment.positions
                    if pos in lease.unacked and pos in pending]
            if not lost:
                return
            if len(lost) > 1:
                self.stats.bisections += 1
                self.stats.resubmissions += 2
                for pos in lost:
                    resubmits[pos] = resubmits.get(pos, 0) + 1
                mid = (len(lost) + 1) // 2
                for part in (lost[:mid], lost[mid:]):
                    enqueue(part, lease.assignment.attempt + 1, now)
                return
            pos = lost[0]
            count = attempts.get(pos, 0) + 1
            attempts[pos] = count
            if kind == "worker-death" and lease.assignment.attempt > 0:
                # Bisection-isolated singleton that still took its
                # connection down: proven poison, same as PR-8.
                finalize(pos, TaskFailure(
                    kind="worker-death", attempts=count,
                    message="connection lost while running this task "
                            "(isolated by bisection)"))
                return
            if count <= policy.max_retries:
                self.stats.retries += 1
                self.stats.resubmissions += 1
                resubmits[pos] = resubmits.get(pos, 0) + 1
                enqueue([pos], count, now + policy.backoff_for(count))
                return
            if kind == "timeout" and policy.serial_fallback:
                # Every lease on this task expired: one undisturbed
                # in-process run (no injection — this is the client).
                self.stats.serial_fallbacks += 1
                try:
                    result = run_task_group([tasks[pos]])[0]
                except Exception as error:
                    finalize(pos, TaskFailure(
                        kind="timeout", attempts=count + 1,
                        message=f"lease expired {count} time(s); "
                                f"serial fallback raised "
                                f"{type(error).__name__}: {error}",
                        error_type=type(error).__name__,
                        traceback=traceback.format_exc()))
                else:
                    pending.discard(pos)
                    emitted.append((pos, result))
                return
            what = ("blew its lease" if kind == "timeout"
                    else "lost its connection")
            finalize(pos, TaskFailure(
                kind=kind, attempts=count,
                message=f"{what} on every one of {count} attempt(s)"))

        def crash(conn: _Conn, kind: str, now: float) -> None:
            if kind == "worker-death":
                self.stats.conn_losses += 1
            lease = self._lost(conn)
            if lease is not None:
                on_crash(lease, kind, now)

        def launch(conn: _Conn, assignment: _Assignment,
                   now: float) -> bool:
            try:
                send_frame(conn.sock, (
                    "run", assignment.aid, assignment.attempt,
                    list(assignment.positions),
                    [tasks[pos] for pos in assignment.positions]))
            except (OSError, ConnectionError):
                # Never started remotely — no attempt consumed; the
                # caller requeues the assignment unchanged.
                self.stats.conn_losses += 1
                self._lost(conn)
                return False
            budget = sum(timeouts[pos]
                         for pos in assignment.positions)
            conn.running = _Lease(
                assignment, budget,
                now + policy.timeout_slack_s + budget)
            conn.state = "busy"
            return True

        def dispatch(now: float) -> None:
            while ready and ready[0][0] <= now:
                idle = next((c for c in conns if c.state == "idle"),
                            None)
                if idle is None:
                    return
                _, _, assignment = heapq.heappop(ready)
                positions = [pos for pos in assignment.positions
                             if pos in pending]
                if not positions:
                    continue
                assignment.positions = positions
                if not launch(idle, assignment, now):
                    heapq.heappush(ready, (now, assignment.aid,
                                           assignment))

        def maybe_steal(now: float) -> None:
            """Idle lane + empty queue: speculatively duplicate the
            tail half of the busiest in-flight assignment."""
            if not self.steal:
                return
            for idle in [c for c in conns if c.state == "idle"]:
                if ready and ready[0][0] <= now:
                    return            # real work exists; dispatch wins
                victim_tail: Optional[List[int]] = None
                for victim in conns:
                    lease = victim.running
                    if victim.state != "busy" or lease is None:
                        continue
                    avail = [pos for pos in lease.assignment.positions
                             if pos in lease.unacked and pos in pending
                             and pos not in speculated]
                    if avail and (victim_tail is None
                                  or len(avail) > len(victim_tail)):
                        victim_tail = avail
                        victim_attempt = lease.assignment.attempt
                if victim_tail is None:
                    return
                tail = victim_tail[len(victim_tail) // 2:]
                speculated.update(tail)
                self.stats.steals += 1
                self.stats.duplicates += len(tail)
                self._next_aid += 1
                duplicate = _Assignment(self._next_aid, list(tail),
                                        victim_attempt)
                if not launch(idle, duplicate, now):
                    speculated.difference_update(tail)

        for chunk in self._chunks_for(tasks):
            enqueue(chunk, 0, 0.0)

        try:
            while pending:
                now = time.monotonic()
                for conn in conns:
                    if conn.state == "backoff" and now >= conn.retry_at:
                        self._open(conn)
                dispatch(now)
                maybe_steal(now)
                by_sock = {conn.sock: conn for conn in conns
                           if conn.state in ("idle", "busy")
                           and conn.sock is not None}
                if by_sock:
                    try:
                        readable, _, _ = select.select(
                            list(by_sock), [], [], _TICK_S)
                    except (OSError, ValueError):
                        readable = list(by_sock)
                else:
                    if not any(c.state == "backoff" for c in conns):
                        break         # every worker is dead
                    time.sleep(_TICK_S)
                    readable = []
                now = time.monotonic()
                for sock in readable:
                    conn = by_sock[sock]
                    if conn.sock is not sock:
                        continue      # dropped earlier this tick
                    try:
                        while True:
                            r, _, _ = select.select([sock], [], [], 0)
                            if not r:
                                break
                            data = sock.recv(1 << 16)
                            if not data:
                                raise ConnectionError("EOF")
                            conn.buf.extend(data)
                        msgs = _parse_frames(conn.buf)
                    except (ConnectionError, OSError):
                        crash(conn, "worker-death", now)
                        continue
                    except (FrameError, pickle.PickleError, EOFError,
                            AttributeError, ValueError, IndexError):
                        self.stats.frame_errors += 1
                        crash(conn, "worker-death", now)
                        continue
                    for msg in msgs:
                        on_message(conn, msg)
                if emitted:
                    yield from emitted
                    emitted.clear()
                if fatal:
                    raise TaskFailedError(fatal)
                now = time.monotonic()
                for conn in conns:
                    lease = conn.running
                    if conn.state != "busy" or lease is None:
                        continue
                    if lease.done:
                        conn.running = None
                        conn.state = "idle"
                    elif now > lease.deadline:
                        self.stats.lease_expiries += 1
                        crash(conn, "timeout", now)
                if emitted:
                    yield from emitted
                    emitted.clear()
                if fatal:
                    raise TaskFailedError(fatal)
        except BaseException:
            # Abort (failure, ^C, or an abandoned generator): drop the
            # leases but keep healthy sockets warm — late frames from
            # these assignments are discarded by their stale aids.
            for conn in conns:
                conn.running = None
                if conn.state == "busy":
                    conn.state = "idle"
            raise
        if pending:
            # Mid-batch total loss: every worker written off with work
            # still owed.  Degrade, don't die.
            yield from self._run_local(tasks, pending,
                                       "all workers lost mid-batch")

    def close(self) -> None:
        # Detach everything *first* (same discipline as the local
        # executors): a repeated close() — e.g. after a mid-batch
        # fallback already tore things down — is a clean no-op, and
        # the lazily-created fallback pool is released exactly once.
        conns, self._conns = self._conns, []
        fallback, self._fallback = self._fallback, None
        super().close()
        for conn in conns:
            sock, conn.sock = conn.sock, None
            if sock is not None:
                try:
                    send_frame(sock, ("bye",))
                except (OSError, ConnectionError):
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        if fallback is not None:
            fallback.close()


# ----------------------------------------------------------------------
# CLI surface, shared by sweep.py / run_experiments.py /
# train_assets.py.


def add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="dispatch simulation batches to these repro worker "
             "daemons (scripts/worker.py) instead of local processes; "
             "list an address twice for two parallel lanes.  Zero "
             "reachable workers degrades to the local supervised pool "
             "with a warning")


def workers_from_args(args: argparse.Namespace
                      ) -> Optional[List[Tuple[str, int]]]:
    spec = getattr(args, "workers", None)
    if not spec:
        return None
    return parse_workers(spec)
