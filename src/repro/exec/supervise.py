"""Supervised fault-tolerant execution.

:class:`SupervisedExecutor` replaces the bare ``Pool.imap_unordered``
fan-out with worker processes the supervisor actually *watches*.  The
raw pool had three failure modes that each killed a whole campaign: a
task exception unwound the batch, a worker SIGKILLed by the OOM killer
wedged ``imap_unordered`` forever, and a hung task stalled its chunk
with no deadline.  Here every one of those degrades to a structured,
bounded, per-task outcome:

* **In-task exceptions** come back as messages, are retried up to
  ``RetryPolicy.max_retries`` with exponential backoff, and finally
  become a :class:`~repro.exec.task.TaskFailure` — either raised as
  :class:`TaskFailedError` (``on_failure="raise"``, the default) or
  yielded as a ``SimTaskResult(failure=...)`` variant so the rest of
  the batch completes (``on_failure="quarantine"``).
* **Worker death** is detected by EOF on the worker's result pipe (the
  per-task result messages double as heartbeats/acks).  The lost
  assignment's unacknowledged tasks are resubmitted with **bisection**:
  halves keep splitting until the poison task is alone, so it is
  isolated in at most ``log2(chunk)`` resubmissions while every
  innocent chunk-mate completes.  A singleton that kills its worker
  *after* bisection has proved itself poison and is failed immediately
  rather than fed more workers.
* **Hangs** are bounded by per-task wall-clock budgets derived from
  :func:`~repro.exec.executors.task_cost` (or a flat
  ``--task-timeout``).  A worker that blows its remaining budget is
  killed and its tasks retried; a task that keeps timing out degrades
  gracefully to one in-process serial attempt before being failed.

The determinism contract survives all of it: a task is a pure function
of its fields, so *which* attempt produced a result cannot change the
result.  Under any injected fault schedule (:mod:`repro.exec.faults`),
every completed result is bitwise-identical to a fault-free serial run
— pinned by the golden digests and the chaos suite.
"""

from __future__ import annotations

import argparse
import dataclasses
import heapq
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from . import faults
from .executors import ProcessPoolExecutor, task_cost
from .task import (SimTask, SimTaskResult, TaskFailure, cache_key,
                   run_task_group)

__all__ = ["RetryPolicy", "SupervisedExecutor", "SuperviseStats",
           "TaskFailedError", "add_fault_tolerance_arguments",
           "policy_from_args"]

#: Supervisor poll tick: bounds how stale the liveness/deadline view
#: can get.  Results still stream back the moment they arrive (the
#: multiplexed wait returns early on any readable pipe).
_TICK_S = 0.05

#: How long to wait for a worker's trailing "done" after its last
#: result before writing the worker off and recycling it.
_SETTLE_S = 5.0


class TaskFailedError(RuntimeError):
    """A task exhausted its retries under ``on_failure="raise"``.

    ``failures`` is a list of ``(fingerprint, TaskFailure)`` pairs —
    usually one, but consumers that collect failures batch-wide (the
    experiment runner under quarantine) reuse this type.
    """

    def __init__(self, failures: Sequence[Tuple[str, TaskFailure]]):
        self.failures = list(failures)
        key, failure = self.failures[0]
        more = (f" (+{len(self.failures) - 1} more)"
                if len(self.failures) > 1 else "")
        super().__init__(
            f"task {key[:12]} failed [{failure.kind}] after "
            f"{failure.attempts} attempt(s): {failure.message}{more}")


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to failures.

    Timeouts: a task's wall-clock budget is ``task_timeout_s`` when
    set, else ``min_timeout_s + seconds_per_event * task_cost(task)``
    — proportional to the work the task is *known* to contain, so a
    1000 Mbps run is not killed on a budget sized for 1 Mbps ones.
    An assignment's deadline is the slack plus the sum of its
    unacknowledged tasks' budgets (each ack extends the deadline).

    ``on_failure``: ``"raise"`` aborts the batch with
    :class:`TaskFailedError` once a task is out of retries;
    ``"quarantine"`` yields the failure as a result variant so the
    batch completes and the store records the poison fingerprint.
    """

    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    min_timeout_s: float = 60.0
    seconds_per_event: float = 1e-4
    timeout_slack_s: float = 5.0
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 10.0
    on_failure: str = "raise"
    serial_fallback: bool = True

    def __post_init__(self):
        if self.on_failure not in ("raise", "quarantine"):
            raise ValueError(f"on_failure must be 'raise' or "
                             f"'quarantine', got {self.on_failure!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")

    def timeout_for(self, task: SimTask) -> float:
        if self.task_timeout_s is not None:
            return self.task_timeout_s
        return self.min_timeout_s + self.seconds_per_event * task_cost(task)

    def backoff_for(self, attempt: int) -> float:
        return min(self.backoff_base_s
                   * self.backoff_factor ** max(attempt - 1, 0),
                   self.backoff_max_s)


@dataclass
class SuperviseStats:
    """Cumulative counters, mostly for the chaos tests and logs."""

    retries: int = 0            # single-task retries (exception/timeout)
    worker_deaths: int = 0      # workers that died mid-assignment
    timeouts: int = 0           # assignments killed on deadline
    bisections: int = 0         # crash-triggered chunk splits
    resubmissions: int = 0      # assignments requeued after a crash
    serial_fallbacks: int = 0   # in-process last-resort executions
    quarantined: int = 0        # tasks finalized as failure results


def _units(tasks: Sequence[SimTask]) -> List[List[int]]:
    """Split an assignment into execution units, mirroring
    :func:`~repro.exec.task.run_task_group`'s fluid grouping.

    Packet tasks are singleton units; fluid tasks differing only by
    seed form one vectorized unit.  Running unit-by-unit (instead of
    the whole assignment in one call) lets the worker acknowledge each
    task as it completes, which is what gives the supervisor its
    heartbeat and keeps a crash from losing already-finished work.
    """
    import json

    units: List[List[int]] = []
    fluid: Dict[Tuple, List[int]] = {}
    for j, task in enumerate(tasks):
        if task.backend != "fluid":
            units.append([j])
            continue
        key = (json.dumps(task.config, sort_keys=True,
                          separators=(",", ":")),
               task.trees, task.duration_s, task.record_usage)
        fluid.setdefault(key, []).append(j)
    units.extend(fluid.values())
    return units


def _send(conn, message) -> bool:
    """Send to the supervisor; False means it is gone — stop working."""
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, OSError):
        return False


def _worker_main(inbox, results) -> None:
    """Worker loop: run assignments, ack per task, report exceptions.

    Message protocol (worker -> supervisor), all tagged with the
    assignment id so stale messages from an abandoned assignment are
    discarded:

    * ``("result", aid, pos, SimTaskResult)`` — one task done; doubles
      as the heartbeat/ack that extends the assignment's deadline.
    * ``("failure", aid, pos, (error_type, message, traceback))`` — the
      task raised; structured, never a pickled exception object (which
      may itself fail to unpickle).
    * ``("done", aid)`` — assignment finished, worker is idle.
    """
    faults.mark_worker_process()
    try:
        injector = faults.injector_from_env()
    except ValueError:
        injector = None
    while True:
        try:
            message = inbox.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        aid, attempt, positions, tasks = message
        for unit in _units(tasks):
            try:
                if injector is not None:
                    for j in unit:
                        injector.on_task(cache_key(tasks[j]), attempt)
                outs = run_task_group([tasks[j] for j in unit])
            except Exception as error:
                detail = (type(error).__name__, str(error),
                          traceback.format_exc())
                if not all(_send(results, ("failure", aid, positions[j],
                                           detail)) for j in unit):
                    return
                continue
            for j, out in zip(unit, outs):
                if not _send(results, ("result", aid, positions[j], out)):
                    return
        if not _send(results, ("done", aid)):
            return


class _WorkerHandle:
    """One supervised worker process plus its two channels."""

    __slots__ = ("wid", "inbox", "results", "process")

    def __init__(self, ctx, wid: int):
        self.wid = wid
        self.inbox = ctx.SimpleQueue()
        # duplex=False: (receive end, send end).  The supervisor closes
        # its copy of the send end, so worker death reads as EOF on
        # `results` instead of a silent hang.
        self.results, send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main, args=(self.inbox, send),
            name=f"repro-supervised-{wid}", daemon=True)
        self.process.start()
        send.close()

    def reap(self) -> None:
        """Kill (if needed), join, and release both channels."""
        try:
            self.process.kill()
        except (OSError, ValueError, AttributeError):
            pass
        self.process.join(timeout=5.0)
        try:
            self.results.close()
        except OSError:
            pass
        close_inbox = getattr(self.inbox, "close", None)
        if close_inbox is not None:
            try:
                close_inbox()
            except OSError:
                pass


class _Assignment:
    """A set of task positions dispatched (or queued) as one message."""

    __slots__ = ("aid", "positions", "attempt")

    def __init__(self, aid: int, positions: List[int], attempt: int):
        self.aid = aid
        self.positions = positions
        self.attempt = attempt


class _Running:
    """Supervisor-side state for one in-flight assignment."""

    __slots__ = ("handle", "assignment", "unacked", "budget", "deadline",
                 "broken", "done")

    def __init__(self, handle: _WorkerHandle, assignment: _Assignment,
                 budget: float, deadline: float):
        self.handle = handle
        self.assignment = assignment
        self.unacked: Set[int] = set(assignment.positions)
        self.budget = budget
        self.deadline = deadline
        self.broken = False
        self.done = False


class SupervisedExecutor(ProcessPoolExecutor):
    """Cost-packed fan-out with supervision, retry, and quarantine.

    A drop-in for :class:`~repro.exec.executors.ProcessPoolExecutor`
    (and a subclass of it, so existing ``isinstance`` dispatch keeps
    working): same chunking, same determinism, same streaming
    ``run_iter`` — plus the failure semantics described in the module
    docstring, governed by a :class:`RetryPolicy`.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None):
        super().__init__(jobs=jobs, chunk_size=chunk_size)
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = SuperviseStats()
        self._ctx = multiprocessing.get_context()
        self._idle: List[_WorkerHandle] = []
        self._next_wid = 0
        self._next_aid = 0

    # -- worker lifecycle -------------------------------------------------

    def _checkout(self) -> _WorkerHandle:
        if self._idle:
            return self._idle.pop()
        self._next_wid += 1
        return _WorkerHandle(self._ctx, self._next_wid)

    def close(self) -> None:
        # Detach the worker list *first*: a ^C landing mid-teardown
        # leaves nothing double-owned, and a second close() is a no-op.
        workers, self._idle = self._idle, []
        super().close()
        for handle in workers:
            try:
                handle.inbox.put(None)     # graceful: exit the loop
            except (OSError, ValueError):
                pass
        for handle in workers:
            handle.process.join(timeout=1.0)
            handle.reap()

    # -- the supervision loop ---------------------------------------------

    def run_iter(self, tasks: Sequence[SimTask]
                 ) -> Iterator[Tuple[int, SimTaskResult]]:
        tasks = list(tasks)
        if not tasks:
            return
        policy = self.policy
        timeouts = [policy.timeout_for(task) for task in tasks]
        pending: Set[int] = set(range(len(tasks)))
        attempts: Dict[int, int] = {}     # per-task tries consumed
        resubmits: Dict[int, int] = {}    # crash-resubmission depth
        ready: List[Tuple[float, int, _Assignment]] = []  # (ready_at,..)
        busy: Dict[int, _Running] = {}                    # wid -> state
        emitted: List[Tuple[int, SimTaskResult]] = []
        fatal: List[Tuple[str, TaskFailure]] = []

        def enqueue(positions: List[int], attempt: int,
                    ready_at: float) -> None:
            self._next_aid += 1
            assignment = _Assignment(self._next_aid, list(positions),
                                     attempt)
            heapq.heappush(ready, (ready_at, assignment.aid, assignment))

        def finalize(pos: int, failure: TaskFailure) -> None:
            """Out of options for this task: quarantine or abort."""
            if pos not in pending:
                return
            pending.discard(pos)
            failure = dataclasses.replace(
                failure, resubmissions=resubmits.get(pos, 0))
            if policy.on_failure == "quarantine":
                self.stats.quarantined += 1
                emitted.append((pos, SimTaskResult(failure=failure)))
            else:
                fatal.append((cache_key(tasks[pos]), failure))

        def on_message(r: _Running, msg) -> None:
            kind, aid = msg[0], msg[1]
            if aid != r.assignment.aid:
                return                    # stale: abandoned assignment
            if kind == "done":
                r.done = True
                return
            pos = msg[2]
            if pos in r.unacked:
                # The ack is the heartbeat: shrink the remaining budget
                # and push the deadline out for what's left.
                r.unacked.discard(pos)
                r.budget -= timeouts[pos]
                r.deadline = (time.monotonic() + policy.timeout_slack_s
                              + max(r.budget, 0.0))
            if pos not in pending:
                return                    # duplicate after a kill race
            if kind == "result":
                pending.discard(pos)
                emitted.append((pos, msg[3]))
                return
            error_type, message, tb = msg[3]
            count = attempts.get(pos, 0) + 1
            attempts[pos] = count
            if count <= policy.max_retries:
                self.stats.retries += 1
                enqueue([pos], count,
                        time.monotonic() + policy.backoff_for(count))
            else:
                finalize(pos, TaskFailure(
                    kind="exception",
                    message=f"task raised {error_type}: {message}",
                    attempts=count, error_type=error_type, traceback=tb))

        def drain(r: _Running) -> None:
            while not r.broken:
                try:
                    if not r.handle.results.poll():
                        return
                    msg = r.handle.results.recv()
                except (EOFError, OSError):
                    r.broken = True
                    return
                on_message(r, msg)

        def on_crash(r: _Running, kind: str, now: float) -> None:
            """The assignment's worker died or blew its deadline."""
            if kind == "worker-death":
                self.stats.worker_deaths += 1
            else:
                self.stats.timeouts += 1
            lost = [pos for pos in r.assignment.positions
                    if pos in r.unacked and pos in pending]
            if not lost:
                return
            if len(lost) > 1:
                # Bisection: whichever half holds the poison crashes
                # again and splits again; the other half completes.
                # attempt+1 so seeded *transient* faults (attempt-0
                # only) don't re-fire down the lineage.
                self.stats.bisections += 1
                self.stats.resubmissions += 2
                for pos in lost:
                    resubmits[pos] = resubmits.get(pos, 0) + 1
                mid = (len(lost) + 1) // 2
                for part in (lost[:mid], lost[mid:]):
                    enqueue(part, r.assignment.attempt + 1, now)
                return
            pos = lost[0]
            count = attempts.get(pos, 0) + 1
            attempts[pos] = count
            if kind == "worker-death" and r.assignment.attempt > 0:
                # A bisection-isolated singleton that still kills its
                # worker is proven poison: quarantine it now instead of
                # burning max_retries more workers on it.
                finalize(pos, TaskFailure(
                    kind="worker-death", attempts=count,
                    message="worker died while running this task "
                            "(isolated by bisection)"))
                return
            if count <= policy.max_retries:
                self.stats.retries += 1
                self.stats.resubmissions += 1
                resubmits[pos] = resubmits.get(pos, 0) + 1
                enqueue([pos], count, now + policy.backoff_for(count))
                return
            if kind == "timeout" and policy.serial_fallback:
                # Graceful degradation: workers keep timing out on it,
                # so give the task one undisturbed in-process run (no
                # deadline, no injection — this is the supervisor).
                self.stats.serial_fallbacks += 1
                try:
                    result = run_task_group([tasks[pos]])[0]
                except Exception as error:
                    finalize(pos, TaskFailure(
                        kind="timeout", attempts=count + 1,
                        message=f"timed out {count} time(s); serial "
                                f"fallback raised "
                                f"{type(error).__name__}: {error}",
                        error_type=type(error).__name__,
                        traceback=traceback.format_exc()))
                else:
                    pending.discard(pos)
                    emitted.append((pos, result))
                return
            what = ("timed out" if kind == "timeout"
                    else "killed its worker")
            finalize(pos, TaskFailure(
                kind=kind, attempts=count,
                message=f"{what} on every one of {count} attempt(s)"))

        def dispatch(now: float) -> None:
            while ready and ready[0][0] <= now and len(busy) < self.jobs:
                _, _, assignment = heapq.heappop(ready)
                positions = [pos for pos in assignment.positions
                             if pos in pending]
                if not positions:
                    continue
                assignment.positions = positions
                handle = self._checkout()
                handle.inbox.put(
                    (assignment.aid, assignment.attempt, positions,
                     [tasks[pos] for pos in positions]))
                budget = sum(timeouts[pos] for pos in positions)
                busy[handle.wid] = _Running(
                    handle, assignment, budget,
                    now + policy.timeout_slack_s + budget)

        for chunk in self._chunks_for(tasks):
            enqueue(chunk, 0, 0.0)

        try:
            while pending and (ready or busy):
                now = time.monotonic()
                dispatch(now)
                conns = [r.handle.results for r in busy.values()
                         if not r.broken]
                if conns:
                    _wait(conns, timeout=_TICK_S)
                else:
                    delay = _TICK_S
                    if ready:
                        delay = min(max(ready[0][0] - now, 0.0), _TICK_S)
                    time.sleep(delay)
                for r in list(busy.values()):
                    drain(r)
                if emitted:
                    yield from emitted
                    emitted.clear()
                if fatal:
                    raise TaskFailedError(fatal)
                now = time.monotonic()
                for wid, r in list(busy.items()):
                    if r.done:
                        busy.pop(wid)
                        self._idle.append(r.handle)
                    elif r.broken or not r.handle.process.is_alive():
                        drain(r)          # last-gasp buffered messages
                        busy.pop(wid)
                        r.handle.reap()
                        on_crash(r, "worker-death", now)
                    elif now > r.deadline:
                        busy.pop(wid)
                        r.handle.reap()
                        on_crash(r, "timeout", now)
                if emitted:
                    yield from emitted
                    emitted.clear()
                if fatal:
                    raise TaskFailedError(fatal)
            # All results are out; collect trailing "done" messages so
            # finishing workers return to the idle pool for the next
            # batch (a slow or wedged one is recycled instead).
            for wid, r in list(busy.items()):
                end = time.monotonic() + _SETTLE_S
                while not (r.done or r.broken) \
                        and time.monotonic() < end:
                    if r.handle.results.poll(0.02):
                        drain(r)
                    elif not r.handle.process.is_alive():
                        break
                busy.pop(wid)
                if r.done:
                    self._idle.append(r.handle)
                else:
                    r.handle.reap()
        except BaseException:
            # Abort (failure, ^C, or an abandoned generator): workers
            # still running stale assignments must not survive into the
            # next batch, where their task positions would collide.
            for r in busy.values():
                r.handle.reap()
            busy.clear()
            raise


def add_fault_tolerance_arguments(parser: argparse.ArgumentParser
                                  ) -> None:
    """The CLI surface of :class:`RetryPolicy`, shared by the scripts."""
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per failing task before giving up (default 2)")
    group.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="flat per-task wall-clock budget; default derives one "
             "from each task's simulated-event cost")
    group.add_argument(
        "--on-failure", choices=("raise", "quarantine"),
        default="raise",
        help="raise: abort the run on the first exhausted task "
             "(default).  quarantine: record the failure, finish "
             "everything else, then exit non-zero naming the "
             "quarantined fingerprints")


def policy_from_args(args: argparse.Namespace) -> RetryPolicy:
    return RetryPolicy(max_retries=args.max_retries,
                       task_timeout_s=args.task_timeout,
                       on_failure=args.on_failure)
