"""Deterministic fault injection for the execution layer.

The supervised executor (:mod:`repro.exec.supervise`) exists to survive
faults that are miserable to reproduce by waiting for them: a worker
OOM-killed mid-chunk, a task that hangs, a shard corrupted under a
crashed writer.  This module makes every one of those injectable *on
purpose* and *deterministically*, so the fault-tolerance machinery is
tested the same way the simulator is — against a pinned, seeded
schedule, with results compared bitwise to a fault-free run.

Determinism contract
--------------------
Whether a fault fires is a pure function of ``(plan, task fingerprint,
attempt)``: a SHA-1 over the plan seed, the fault kind, and the task's
:func:`~repro.exec.task.cache_key` is mapped to a uniform draw and
compared against the plan's probability.  No wall clock, no process
RNG.  The same plan therefore injects the same faults into the same
tasks on every run and on every machine — which is what lets the chaos
tests assert that completed results are bitwise-identical to the
fault-free serial reference.

Activation
----------
A plan travels through the :data:`FAULTS_ENV` environment variable
(JSON, see :meth:`FaultPlan.to_json`).  Worker processes read it once
in their initializer (:func:`mark_worker_process` +
:func:`injector_from_env`); the in-task faults (raise / hang / SIGKILL)
fire **only inside worker processes**, so the serial reference run and
the supervisor's own in-process fallback are never injected.  The shard
corruptor (:func:`shard_sabotage`) is the one exception — it fires in
whichever process appends to the store, because that is where shards
are written.

Transient vs. poison
--------------------
``max_attempt`` bounds probabilistic faults to early attempts
(default 0: first attempt only), modelling transient failures the retry
machinery should absorb.  The ``raise_keys`` / ``hang_keys`` /
``kill_keys`` lists target specific fingerprints on *every* attempt —
poison tasks that must end up quarantined, not retried forever.

Network faults
--------------
The remote backend (:mod:`repro.exec.remote`) adds four wire-level
kinds, drawn from the same seeded SHA-1 scheme so chaos runs over TCP
stay exactly as reproducible as local ones:

* ``conn-drop`` — the worker closes the connection instead of sending
  the task's result (models a crashed worker host / RST mid-stream);
* ``frame-corrupt`` — the result frame is sent with flipped payload
  bytes, so the client's checksum rejects it (models a bad NIC/path);
* ``partition`` — the worker goes silent for ``partition_s`` before
  the result (models a network partition; leases must expire);
* ``delay`` — the result is delayed by ``delay_s`` (models a
  straggler; work stealing should duplicate the task).

These fire at the *send* boundary, after the task has run (and been
cached under its session), so a re-dispatch to the same worker is a
cheap cache hit — which is how the chaos tests keep wall-clock sane.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["FAULTS_ENV", "FaultPlan", "FaultInjected", "FaultInjector",
           "injector_from_env", "mark_worker_process", "shard_sabotage"]

#: Environment variable carrying a JSON-encoded :class:`FaultPlan`.
#: Unset (or empty) means no injection anywhere.
FAULTS_ENV = "REPRO_FAULTS"

#: A whole-line garbage record appended by the shard corruptor.  It is
#: deliberately *skippable* garbage (fails JSON parsing), modelling the
#: torn writes a crashed process leaves behind — the store's corruption
#: tolerance must degrade it to a cache miss, never a wrong answer.
_GARBAGE = b"\x00\xfe<injected shard corruption>not json\n"


class FaultInjected(RuntimeError):
    """The in-task exception the injector raises (kind ``exception``)."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault schedule.

    Probabilities are per *(task, kind)*: each task's fingerprint is
    hashed with the seed and the fault kind to an independent uniform
    draw.  ``max_attempt`` limits probabilistic faults to attempts
    ``<= max_attempt`` (``None`` = every attempt); the ``*_keys`` lists
    are poison — they fire on every attempt regardless.
    """

    seed: int = 0
    p_exception: float = 0.0      # raise FaultInjected inside the task
    p_kill: float = 0.0           # SIGKILL the worker before the task
    p_hang: float = 0.0           # sleep hang_s before the task
    p_corrupt: float = 0.0        # append a garbage line after a put
    p_conn_drop: float = 0.0      # close the wire instead of replying
    p_frame_corrupt: float = 0.0  # flip payload bytes in the reply frame
    p_delay: float = 0.0          # delay the reply by delay_s
    p_partition: float = 0.0      # go silent for partition_s first
    hang_s: float = 3600.0
    delay_s: float = 2.0
    partition_s: float = 3600.0
    max_attempt: Optional[int] = 0
    raise_keys: Tuple[str, ...] = field(default_factory=tuple)
    kill_keys: Tuple[str, ...] = field(default_factory=tuple)
    hang_keys: Tuple[str, ...] = field(default_factory=tuple)
    conn_drop_keys: Tuple[str, ...] = field(default_factory=tuple)
    frame_corrupt_keys: Tuple[str, ...] = field(default_factory=tuple)
    delay_keys: Tuple[str, ...] = field(default_factory=tuple)
    partition_keys: Tuple[str, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "p_exception": self.p_exception,
            "p_kill": self.p_kill,
            "p_hang": self.p_hang,
            "p_corrupt": self.p_corrupt,
            "p_conn_drop": self.p_conn_drop,
            "p_frame_corrupt": self.p_frame_corrupt,
            "p_delay": self.p_delay,
            "p_partition": self.p_partition,
            "hang_s": self.hang_s,
            "delay_s": self.delay_s,
            "partition_s": self.partition_s,
            "max_attempt": self.max_attempt,
            "raise_keys": list(self.raise_keys),
            "kill_keys": list(self.kill_keys),
            "hang_keys": list(self.hang_keys),
            "conn_drop_keys": list(self.conn_drop_keys),
            "frame_corrupt_keys": list(self.frame_corrupt_keys),
            "delay_keys": list(self.delay_keys),
            "partition_keys": list(self.partition_keys),
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, "
                             f"got {type(data).__name__}")
        return cls(
            seed=int(data.get("seed", 0)),
            p_exception=float(data.get("p_exception", 0.0)),
            p_kill=float(data.get("p_kill", 0.0)),
            p_hang=float(data.get("p_hang", 0.0)),
            p_corrupt=float(data.get("p_corrupt", 0.0)),
            p_conn_drop=float(data.get("p_conn_drop", 0.0)),
            p_frame_corrupt=float(data.get("p_frame_corrupt", 0.0)),
            p_delay=float(data.get("p_delay", 0.0)),
            p_partition=float(data.get("p_partition", 0.0)),
            hang_s=float(data.get("hang_s", 3600.0)),
            delay_s=float(data.get("delay_s", 2.0)),
            partition_s=float(data.get("partition_s", 3600.0)),
            max_attempt=(None if data.get("max_attempt", 0) is None
                         else int(data.get("max_attempt", 0))),
            raise_keys=tuple(data.get("raise_keys") or ()),
            kill_keys=tuple(data.get("kill_keys") or ()),
            hang_keys=tuple(data.get("hang_keys") or ()),
            conn_drop_keys=tuple(data.get("conn_drop_keys") or ()),
            frame_corrupt_keys=tuple(data.get("frame_corrupt_keys")
                                     or ()),
            delay_keys=tuple(data.get("delay_keys") or ()),
            partition_keys=tuple(data.get("partition_keys") or ()),
        )


def _uniform(seed: int, kind: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (task, fault kind).

    Independent across kinds (the kind is hashed in), stable across
    processes and machines — the whole point of seeded injection.
    """
    digest = hashlib.sha1(f"{seed}:{kind}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultInjector:
    """Executes a :class:`FaultPlan` at the worker's task boundary."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def _probabilistic(self, kind: str, p: float, key: str,
                       attempt: int) -> bool:
        if p <= 0.0:
            return False
        if self.plan.max_attempt is not None \
                and attempt > self.plan.max_attempt:
            return False
        return _uniform(self.plan.seed, kind, key) < p

    def on_task(self, key: str, attempt: int) -> None:
        """Fire any scheduled fault for ``key`` at ``attempt``.

        Called by the supervised worker immediately before running each
        task.  May raise :class:`FaultInjected`, sleep (hang), or
        SIGKILL the calling process — exactly the failure modes the
        supervisor must survive.
        """
        plan = self.plan
        if key in plan.raise_keys \
                or self._probabilistic("exception", plan.p_exception,
                                       key, attempt):
            raise FaultInjected(
                f"injected in-task exception for {key[:12]} "
                f"(attempt {attempt})")
        if key in plan.hang_keys \
                or self._probabilistic("hang", plan.p_hang, key, attempt):
            time.sleep(plan.hang_s)
        if key in plan.kill_keys \
                or self._probabilistic("kill", plan.p_kill, key, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def on_wire(self, key: str, attempt: int) -> Optional[str]:
        """The network fault (if any) scheduled for ``key`` at
        ``attempt``, as a kind string the remote worker interprets at
        its send boundary: ``"conn-drop"``, ``"frame-corrupt"``,
        ``"partition"``, or ``"delay"`` (checked in that order — the
        most disruptive fault wins when several draws fire).  ``None``
        means the result frame goes out untouched.

        The ``*_keys`` lists fire on every attempt (persistent network
        poison); probabilistic draws respect ``max_attempt`` like every
        other transient kind, so a retry after a dropped connection
        normally succeeds.
        """
        plan = self.plan
        for kind, keys, p in (
                ("conn-drop", plan.conn_drop_keys, plan.p_conn_drop),
                ("frame-corrupt", plan.frame_corrupt_keys,
                 plan.p_frame_corrupt),
                ("partition", plan.partition_keys, plan.p_partition),
                ("delay", plan.delay_keys, plan.p_delay)):
            if key in keys or self._probabilistic(kind, p, key, attempt):
                return kind
        return None

    def on_put(self, key: str) -> Optional[bytes]:
        """Garbage to append after persisting ``key``, or ``None``."""
        if _uniform(self.plan.seed, "corrupt", key) < self.plan.p_corrupt:
            return _GARBAGE
        return None


# ----------------------------------------------------------------------
# Per-process activation.  Worker processes opt in explicitly; the
# supervisor / serial paths never see in-task faults even with the env
# var set (the fault-free reference must stay fault-free).

_IS_WORKER = False
_CACHE: Tuple[Optional[str], Optional[FaultInjector]] = (None, None)


def mark_worker_process() -> None:
    """Called by the supervised worker initializer: in-task injection
    is armed only in processes that declare themselves workers."""
    global _IS_WORKER
    _IS_WORKER = True


def _injector() -> Optional[FaultInjector]:
    """The process's injector, rebuilt only when the env var changes."""
    global _CACHE
    raw = os.environ.get(FAULTS_ENV) or None
    cached_raw, cached = _CACHE
    if raw == cached_raw:
        return cached
    injector = None
    if raw is not None:
        try:
            injector = FaultInjector(FaultPlan.from_json(raw))
        except (ValueError, TypeError) as error:
            raise ValueError(
                f"unreadable {FAULTS_ENV} fault plan: {error}")
    _CACHE = (raw, injector)
    return injector


def injector_from_env() -> Optional[FaultInjector]:
    """The worker-side injector, or ``None`` outside worker processes
    (or when no plan is installed)."""
    if not _IS_WORKER:
        return None
    return _injector()


def shard_sabotage(key: str) -> Optional[bytes]:
    """Store-side hook: garbage to append after a shard write.

    Unlike the in-task faults this fires in *any* process with a plan
    installed — shards are written by the supervising process, and
    corrupting them there is precisely the mid-run disk fault the
    store's tolerance machinery claims to absorb.
    """
    injector = _injector()
    if injector is None:
        return None
    return injector.on_put(key)
