"""Executors: strategies for running a batch of :class:`SimTask`.

The determinism contract
------------------------
``run_batch`` returns one :class:`~repro.exec.task.SimTaskResult` per
task, *in task order*, and every executor produces bitwise-identical
results for the same batch: a task is a pure function of its fields, so
where it runs (this process, a worker process, or a cache) can never
change the answer.  The Remy optimizer's common-random-numbers
comparisons and the experiment tables both rely on this.

Executors also expose a streaming view, :meth:`Executor.run_iter`,
yielding ``(index, result)`` pairs *as tasks complete* (in any order).
The disk-backed :class:`~repro.exec.store.StoreExecutor` consumes this
to persist each result the moment it exists — which is what makes a
killed sweep resumable from everything it finished, not just from the
batches it completed.

Four strategies ship today:

* :class:`SerialExecutor` — run in-process, in order.  The reference
  implementation the others must match.
* :class:`ProcessPoolExecutor` — cost-packed chunk fan-out over a
  lazily-created, reusable ``multiprocessing.Pool``.
* :class:`CachingExecutor` — an in-memory wrapper keyed by
  :func:`~repro.exec.task.cache_key`; hits skip execution entirely.
* :class:`~repro.exec.store.StoreExecutor` — the disk-backed analogue
  (in :mod:`repro.exec.store`), sharing the same cache key.

Future backends (multi-host dispatch) plug in by subclassing
:class:`Executor`; callers only ever see ``run_batch``/``run_iter``.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..core.scale import PACKET_BYTES
from .task import (SimTask, SimTaskResult, cache_key, run_sim_task,
                   run_task_group)

__all__ = ["Executor", "SerialExecutor", "ProcessPoolExecutor",
           "CachingExecutor", "default_jobs", "pack_chunks", "task_cost"]

#: ``progress(done, total)`` — called after each task completes.
ProgressFn = Callable[[int, int], None]


def default_jobs() -> int:
    """A sensible worker count for this machine (always >= 1).

    Uses the process's CPU *affinity* when the platform exposes it:
    in a cgroup-limited container (CI) ``cpu_count()`` reports the
    host's cores, and sizing the pool to that oversubscribes the few
    CPUs the scheduler will actually grant.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            cpus = len(affinity(0))
        except OSError:
            cpus = multiprocessing.cpu_count()
    else:
        cpus = multiprocessing.cpu_count()
    return max((cpus or 1) - 1, 1)


def task_cost(task: SimTask) -> float:
    """Expected cost of one task, in simulated packet-events.

    The dominant cost of a pure-Python simulation is the number of
    packet events, which is known *before* running: the task's duration
    (already set via ``Scale.duration_for``) times the bottleneck packet
    rate.  Used to pack pool chunks by cost instead of count, so one
    1000 Mbps run doesn't straggle behind a chunk of 1 Mbps runs.
    """
    speeds = (1.0,)
    if isinstance(task.config, dict):
        speeds = task.config.get("link_speeds_mbps") or (1.0,)
    rate_pps = max(speeds) * 1e6 / (8.0 * PACKET_BYTES)
    return max(task.duration_s, 0.0) * max(rate_pps, 1.0)


def pack_chunks(costs: Sequence[float], n_chunks: int) -> List[List[int]]:
    """Partition task indices into at most ``n_chunks`` balanced chunks.

    Greedy LPT (longest processing time first): indices are assigned in
    decreasing cost order to the currently lightest chunk.  Guarantees:

    * every index appears in exactly one chunk, no chunk is empty;
    * the costliest chunk is at most 2x the ideal lower bound
      ``max(sum(costs) / n_chunks, max(costs))`` (the classic
      list-scheduling bound; LPT is in fact within 4/3);
    * fully deterministic — ties break on index, so the same batch
      always packs the same way on every machine.
    """
    n_chunks = max(int(n_chunks), 1)
    if not costs:
        return []
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    heap: List[Tuple[float, int]] = [
        (0.0, j) for j in range(min(n_chunks, len(costs)))]
    chunks: List[List[int]] = [[] for _ in heap]
    for i in order:
        load, j = heapq.heappop(heap)
        chunks[j].append(i)
        heapq.heappush(heap, (load + max(costs[i], 0.0), j))
    # Zero-cost ties can starve a chunk; empties carry no work, drop
    # them rather than ship them to a worker.
    return [sorted(chunk) for chunk in chunks if chunk]


def _run_chunk(payload: Tuple[List[int], List[SimTask]]
               ) -> Tuple[List[int], List[SimTaskResult]]:
    """Worker-side: run one packed chunk (module-level for pickling).

    Routed through :func:`run_task_group` so a chunk of fluid tasks
    that differ only by seed collapses into one vectorized call; for
    packet tasks the group runner degenerates to per-task
    :func:`run_sim_task`, and fluid batch-invariance keeps the results
    bitwise-independent of the chunking."""
    indices, tasks = payload
    return indices, run_task_group(tasks)


class Executor:
    """Interface: run task batches, optionally report progress.

    Executors are context managers; ``close()`` releases any worker
    state and is always safe to call (idempotent, including on
    executors that never ran anything).
    """

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        raise NotImplementedError

    def run_iter(self, tasks: Sequence[SimTask]
                 ) -> Iterator[Tuple[int, SimTaskResult]]:
        """Yield ``(task index, result)`` as tasks complete, any order.

        The streaming counterpart of :meth:`run_batch`, consumed by
        wrappers that act on each result as soon as it exists (the disk
        store persists per result, so a crash loses at most the tasks
        still in flight).  The default buffers one blocking
        ``run_batch``; executors that can genuinely stream override it.
        """
        yield from enumerate(self.run_batch(list(tasks)))

    def _collect(self, tasks: Sequence[SimTask],
                 progress: Optional[ProgressFn]) -> List[SimTaskResult]:
        """``run_batch`` in terms of :meth:`run_iter`: reorder to task
        order, fire ``progress`` once per completed task."""
        tasks = list(tasks)
        results: List[Optional[SimTaskResult]] = [None] * len(tasks)
        done = 0
        stream = self.run_iter(tasks)
        try:
            for i, result in stream:
                results[i] = result
                done += 1
                if progress is not None:
                    progress(done, len(tasks))
        finally:
            # Close the generator *now*, not at GC time: run_iter
            # implementations reap worker processes in their except/
            # finally blocks, and a progress callback that raises must
            # not leave that cleanup pending on the collector.
            stream.close()
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Release workers/state.  Default: nothing to release."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every task in the calling process, in order."""

    def run_iter(self, tasks: Sequence[SimTask]
                 ) -> Iterator[Tuple[int, SimTaskResult]]:
        tasks = list(tasks)
        fluid = [i for i, task in enumerate(tasks)
                 if task.backend == "fluid"]
        for i, task in enumerate(tasks):
            if task.backend != "fluid":
                yield i, run_sim_task(task)
        if fluid:
            # One vectorized call per seed batch; batch-invariance makes
            # this bitwise-identical to running each task alone.
            yield from zip(fluid,
                           run_task_group([tasks[i] for i in fluid]))

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        return self._collect(tasks, progress)


class ProcessPoolExecutor(Executor):
    """Fan tasks out over a ``multiprocessing.Pool``.

    The pool is created lazily on the first batch and reused across
    batches (worker start-up is the dominant fixed cost), so one
    executor can serve a whole training run or experiment sweep.

    Dispatch is chunked.  By default chunks are *cost-packed*: per-task
    costs are known up front (simulated duration x bottleneck packet
    rate, see :func:`task_cost`), so tasks are packed into ~4 chunks per
    worker balanced by expected cost rather than count — a heterogeneous
    sweep (or the cache-miss remainder of a resumed one) can't
    degenerate into one straggler chunk holding all the expensive runs.
    An explicit ``chunk_size`` opts back into contiguous count-based
    chunks.  Results come back in task order regardless of completion
    order.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or default_jobs()
        self.chunk_size = chunk_size
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.jobs)
        return self._pool

    def _chunks_for(self, tasks: List[SimTask]) -> List[List[int]]:
        if self.chunk_size is not None:
            size = max(self.chunk_size, 1)
            return [list(range(lo, min(lo + size, len(tasks))))
                    for lo in range(0, len(tasks), size)]
        n_chunks = min(len(tasks), self.jobs * 4)
        return pack_chunks([task_cost(task) for task in tasks], n_chunks)

    def run_iter(self, tasks: Sequence[SimTask]
                 ) -> Iterator[Tuple[int, SimTaskResult]]:
        tasks = list(tasks)
        if not tasks:
            return
        pool = self._ensure_pool()
        payloads = [(chunk, [tasks[i] for i in chunk])
                    for chunk in self._chunks_for(tasks)]
        # imap_unordered: completed chunks stream back immediately, so
        # consumers (progress, the disk store) see results as they
        # exist; _collect reorders to task order at the end.
        try:
            for indices, results in pool.imap_unordered(_run_chunk,
                                                        payloads):
                yield from zip(indices, results)
        except GeneratorExit:
            # Consumer stopped early: the pool is healthy, keep it warm
            # for the next batch (remaining chunks finish and are
            # discarded, matching the old semantics).
            raise
        except BaseException:
            # A worker exception (or a worker killed mid-chunk) can
            # leave the pool broken or wedged; recycle it so the next
            # run_batch on this executor gets a fresh pool instead of
            # hanging on a dead one.
            self.close()
            raise

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        return self._collect(tasks, progress)

    def close(self) -> None:
        # Detach before tearing down: if a ^C lands inside terminate()
        # or join(), the executor is already consistent (no dangling
        # half-closed pool) and a repeated close() is a clean no-op —
        # the interrupt itself propagates unmasked.
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


class CachingExecutor(Executor):
    """Memoize an inner executor in memory, keyed by
    :func:`~repro.exec.task.cache_key`.

    Because the key covers *every* field of the task (config, trees,
    seed, duration, flags), a hit is guaranteed to be the result the
    inner executor would have produced — there is no way to get a stale
    answer by changing evaluation settings, which is exactly the bug the
    old tree-keyed score cache had.  Duplicate tasks within one batch
    execute once.  The disk-backed analogue is
    :class:`repro.exec.store.StoreExecutor`; both file results under the
    same key, so memory and disk caches can never diverge.
    """

    def __init__(self, inner: Optional[Executor] = None):
        self.inner = inner or SerialExecutor()
        self._cache: Dict[str, SimTaskResult] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        tasks = list(tasks)
        keys = [cache_key(task) for task in tasks]
        pending: List[SimTask] = []
        pending_keys: List[str] = []
        seen = set()
        for task, key in zip(tasks, keys):
            if key in self._cache:
                self.hits += 1
            elif key not in seen:
                seen.add(key)
                pending.append(task)
                pending_keys.append(key)
        # Progress is reported over the *submitted* batch: cached (and
        # duplicate) tasks count as already done, and a fully-cached
        # batch still fires one final progress(n, n).
        done_offset = len(tasks) - len(pending)
        if pending:
            self.misses += len(pending)
            inner_progress = None
            if progress is not None:
                inner_progress = lambda done, _total: progress(
                    done_offset + done, len(tasks))
            fresh = self.inner.run_batch(pending,
                                         progress=inner_progress)
            for key, result in zip(pending_keys, fresh):
                self._cache[key] = result
        elif progress is not None and tasks:
            progress(len(tasks), len(tasks))
        return [self._cache[key] for key in keys]

    def close(self) -> None:
        self.inner.close()
