"""Executors: strategies for running a batch of :class:`SimTask`.

The determinism contract
------------------------
``run_batch`` returns one :class:`~repro.exec.task.SimTaskResult` per
task, *in task order*, and every executor produces bitwise-identical
results for the same batch: a task is a pure function of its fields, so
where it runs (this process, a worker process, or a cache) can never
change the answer.  The Remy optimizer's common-random-numbers
comparisons and the experiment tables both rely on this.

Three strategies ship today:

* :class:`SerialExecutor` — run in-process, in order.  The reference
  implementation the others must match.
* :class:`ProcessPoolExecutor` — chunked fan-out over a lazily-created,
  reusable ``multiprocessing.Pool``.
* :class:`CachingExecutor` — a wrapper keyed by task fingerprint; hits
  skip execution entirely.

Future backends (sharded / multi-host dispatch) plug in by subclassing
:class:`Executor`; callers only ever see ``run_batch``.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence

from .task import SimTask, SimTaskResult, run_sim_task

__all__ = ["Executor", "SerialExecutor", "ProcessPoolExecutor",
           "CachingExecutor", "default_jobs"]

#: ``progress(done, total)`` — called after each task completes.
ProgressFn = Callable[[int, int], None]


def default_jobs() -> int:
    """A sensible worker count for this machine (always >= 1)."""
    return max((multiprocessing.cpu_count() or 1) - 1, 1)


class Executor:
    """Interface: run task batches, optionally report progress.

    Executors are context managers; ``close()`` releases any worker
    state and is always safe to call (idempotent, including on
    executors that never ran anything).
    """

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release workers/state.  Default: nothing to release."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every task in the calling process, in order."""

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        tasks = list(tasks)
        results: List[SimTaskResult] = []
        for i, task in enumerate(tasks):
            results.append(run_sim_task(task))
            if progress is not None:
                progress(i + 1, len(tasks))
        return results


class ProcessPoolExecutor(Executor):
    """Fan tasks out over a ``multiprocessing.Pool``.

    The pool is created lazily on the first batch and reused across
    batches (worker start-up is the dominant fixed cost), so one
    executor can serve a whole training run or experiment sweep.
    Tasks are dispatched in chunks — by default ~4 chunks per worker,
    balancing scheduling overhead against stragglers — and results come
    back in task order regardless of completion order.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or default_jobs()
        self.chunk_size = chunk_size
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.jobs)
        return self._pool

    def _chunk_for(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return max(self.chunk_size, 1)
        return max(n_tasks // (self.jobs * 4), 1)

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = self._ensure_pool()
        results: List[SimTaskResult] = []
        # imap (not map): same chunked dispatch, but results stream
        # back so progress can fire per task, still in task order.
        for i, result in enumerate(pool.imap(
                run_sim_task, tasks,
                chunksize=self._chunk_for(len(tasks)))):
            results.append(result)
            if progress is not None:
                progress(i + 1, len(tasks))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class CachingExecutor(Executor):
    """Memoize an inner executor by task fingerprint.

    Because the fingerprint covers *every* field of the task (config,
    trees, seed, duration, flags), a hit is guaranteed to be the result
    the inner executor would have produced — there is no way to get a
    stale answer by changing evaluation settings, which is exactly the
    bug the old tree-keyed score cache had.  Duplicate tasks within one
    batch execute once.
    """

    def __init__(self, inner: Optional[Executor] = None):
        self.inner = inner or SerialExecutor()
        self._cache: Dict[str, SimTaskResult] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        tasks = list(tasks)
        keys = [task.fingerprint() for task in tasks]
        pending: List[SimTask] = []
        pending_keys: List[str] = []
        seen = set()
        for task, key in zip(tasks, keys):
            if key in self._cache:
                self.hits += 1
            elif key not in seen:
                seen.add(key)
                pending.append(task)
                pending_keys.append(key)
        # Progress is reported over the *submitted* batch: cached (and
        # duplicate) tasks count as already done, and a fully-cached
        # batch still fires one final progress(n, n).
        done_offset = len(tasks) - len(pending)
        if pending:
            self.misses += len(pending)
            inner_progress = None
            if progress is not None:
                inner_progress = lambda done, _total: progress(
                    done_offset + done, len(tasks))
            fresh = self.inner.run_batch(pending,
                                         progress=inner_progress)
            for key, result in zip(pending_keys, fresh):
                self._cache[key] = result
        elif progress is not None and tasks:
            progress(len(tasks), len(tasks))
        return [self._cache[key] for key in keys]

    def close(self) -> None:
        self.inner.close()
