"""Disk-backed result persistence for the execution layer.

A :class:`ResultStore` is a directory of sharded JSON-lines files
holding one :class:`~repro.exec.task.SimTaskResult` per task
fingerprint, and a :class:`StoreExecutor` wraps any inner executor to
serve cache hits from that store and persist misses *as they complete*.
Together they make crashed sweeps resumable (rerun and only the missing
fingerprints are simulated) and let separate processes — training in
one terminal, experiments in another — share simulation results for
free, because both key the store through the same
:func:`~repro.exec.task.cache_key` the in-memory cache uses.

On-disk layout::

    <store>/
      meta.json            {"magic": ..., "schema": SCHEMA_VERSION}
      shards/
        <2 hex chars>.jsonl   one record per line:
                              {"schema": N, "key": <sha1>, "result": ...}

Durability and concurrency come from the layout, not from locks:

* records are appended as a single ``write`` of one complete line, so
  concurrent writers interleave whole records (POSIX ``O_APPEND``) and
  a crash can truncate at most the final line;
* readers skip lines that fail to parse or carry a foreign schema
  version, so a truncated or corrupted shard degrades into a smaller
  cache, never an error;
* duplicate keys (two processes racing on the same task) are benign —
  fingerprint-equal tasks are result-equal by the determinism contract,
  and ``gc`` rewrites shards down to one record per key;
* ``meta.json`` is written atomically (temp file + rename) and pins the
  schema: opening a store written by an incompatible version fails
  loudly instead of quietly missing every key.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.results import FlowStats, RunResult
from .executors import Executor, ProgressFn, SerialExecutor
from .faults import shard_sabotage
from .task import SimTask, SimTaskResult, TaskFailure, cache_key

__all__ = ["SCHEMA_VERSION", "StoreSchemaError", "StoreStats",
           "ResultStore", "StoreExecutor", "encode_result",
           "decode_result", "encode_failure", "decode_failure",
           "store_main"]

#: Version of the on-disk record format.  Bump whenever
#: :func:`encode_result` / :func:`decode_result` change shape *or* the
#: :func:`~repro.exec.task.cache_key` format changes — old stores are
#: then rejected at open (meta) and old records skipped (per line)
#: rather than silently misread.
SCHEMA_VERSION = 1

_MAGIC = "repro-result-store"
_META = "meta.json"
_SHARDS = "shards"
#: The quarantine shard: one JSONL of ``{"schema", "key", "failure"}``
#: records naming fingerprints whose tasks exhausted their retries
#: (poison tasks).  Kept apart from the result shards so a quarantined
#: key can never be confused with a completed result, and so ``stats``
#: can report it without scanning every shard.
_QUARANTINE = "quarantine.jsonl"


class StoreSchemaError(RuntimeError):
    """The directory is not a compatible result store."""


# ----------------------------------------------------------------------
# Serialization.  JSON round-trips Python floats exactly (repr is the
# shortest string that parses back to the same IEEE double), so a result
# read from disk is bitwise-identical to the one that was written —
# which is what lets store hits participate in the determinism contract.

def encode_result(out: SimTaskResult) -> dict:
    """``SimTaskResult`` -> plain JSON-able dict."""
    run = out.run
    return {
        "run": {
            "flows": [dataclasses.asdict(flow) for flow in run.flows],
            "seed": run.seed,
            "duration_s": run.duration_s,
            "bottleneck_drops": run.bottleneck_drops,
            "bottleneck_utilization": run.bottleneck_utilization,
            "metadata": run.metadata,
        },
        "usage_counts": list(out.usage_counts),
        "usage_sums": [list(row) for row in out.usage_sums],
    }


def decode_result(data: dict) -> SimTaskResult:
    """Inverse of :func:`encode_result`."""
    run = data["run"]
    return SimTaskResult(
        run=RunResult(
            flows=[FlowStats(**flow) for flow in run["flows"]],
            seed=run["seed"],
            duration_s=run["duration_s"],
            bottleneck_drops=run["bottleneck_drops"],
            bottleneck_utilization=run["bottleneck_utilization"],
            metadata=dict(run.get("metadata") or {})),
        usage_counts=list(data.get("usage_counts") or []),
        usage_sums=[list(row) for row in data.get("usage_sums") or []])


def encode_failure(failure: TaskFailure) -> dict:
    """``TaskFailure`` -> plain JSON-able dict (quarantine records)."""
    return dataclasses.asdict(failure)


def decode_failure(data: dict) -> TaskFailure:
    """Inverse of :func:`encode_failure`; tolerant of absent fields."""
    return TaskFailure(
        kind=str(data.get("kind", "exception")),
        message=str(data.get("message", "")),
        attempts=int(data.get("attempts", 1)),
        error_type=str(data.get("error_type", "")),
        traceback=str(data.get("traceback", "")),
        resubmissions=int(data.get("resubmissions", 0)))


def _parse_record(line: bytes, payload: str = "result"
                  ) -> Optional[dict]:
    """One shard line -> record dict, or ``None`` if unusable.

    Unusable covers truncated/garbled JSON (crash mid-append), records
    from a different schema version, and records missing fields —
    corruption tolerance means all of these read as cache misses.
    ``payload`` names the required dict field: ``"result"`` for result
    shards, ``"failure"`` for the quarantine shard.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) \
            or record.get("schema") != SCHEMA_VERSION \
            or not isinstance(record.get("key"), str) \
            or not isinstance(record.get(payload), dict):
        return None
    return record


def _atomic_write(path: str, data: bytes) -> None:
    handle, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-")
    try:
        with os.fdopen(handle, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class StoreStats:
    """What a scan of the store found (``stats``/``verify`` output)."""

    path: str
    schema: int
    shards: int
    records: int          # readable records (including duplicates)
    distinct: int         # distinct fingerprints
    corrupt: int          # unreadable / foreign-schema / undecodable lines
    size_bytes: int
    quarantined: int = 0  # distinct fingerprints in the quarantine shard

    def lines(self) -> List[str]:
        return [
            f"store       {self.path}",
            f"schema      {self.schema}",
            f"shards      {self.shards}",
            f"records     {self.records} ({self.distinct} distinct)",
            f"corrupt     {self.corrupt}",
            f"quarantined {self.quarantined}",
            f"bytes       {self.size_bytes}",
        ]


class ResultStore:
    """Fingerprint-keyed, disk-backed map of simulation results.

    Parameters
    ----------
    path:
        Store directory; created (with ``meta.json``) if absent.
    require_exists:
        Refuse to *create* — raise ``FileNotFoundError`` when no store
        is there yet.  ``--resume`` uses this so a typo'd path fails
        fast instead of silently recomputing a finished sweep.

    Shards are loaded lazily and cached per process; appends from other
    processes after a shard is cached are picked up on the next open
    (the resume workflow: write during a run, read at the next start).
    """

    def __init__(self, path: Union[str, os.PathLike],
                 require_exists: bool = False):
        self.path = str(path)
        self._shards_dir = os.path.join(self.path, _SHARDS)
        self._cache: Dict[str, Dict[str, dict]] = {}
        self._quarantine_cache: Optional[Dict[str, dict]] = None
        if os.path.exists(self.path) and not os.path.isdir(self.path):
            raise StoreSchemaError(
                f"{self.path} is a file, not a result-store directory")
        meta_path = os.path.join(self.path, _META)
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "rb") as fh:
                    meta = json.load(fh)
            except ValueError as error:
                raise StoreSchemaError(
                    f"unreadable store meta {meta_path}: {error}")
            if not isinstance(meta, dict) or meta.get("magic") != _MAGIC:
                raise StoreSchemaError(
                    f"{self.path} is not a result store "
                    f"(bad magic in {_META})")
            if meta.get("schema") != SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"store {self.path} has schema "
                    f"{meta.get('schema')!r}; this build reads only "
                    f"schema {SCHEMA_VERSION} — use a fresh --store "
                    f"path (old results cannot be trusted across "
                    f"format changes)")
        elif require_exists:
            raise FileNotFoundError(
                f"no result store at {self.path} (run once without "
                f"--resume to create it)")
        else:
            os.makedirs(self._shards_dir, exist_ok=True)
            _atomic_write(meta_path, json.dumps(
                {"magic": _MAGIC, "schema": SCHEMA_VERSION},
                sort_keys=True).encode() + b"\n")

    # ------------------------------------------------------------------
    def _shard_of(self, key: str) -> str:
        return key[:2]

    def _shard_path(self, shard: str) -> str:
        return os.path.join(self._shards_dir, f"{shard}.jsonl")

    def _shard_names(self) -> List[str]:
        if not os.path.isdir(self._shards_dir):
            return []
        return sorted(name[:-len(".jsonl")]
                      for name in os.listdir(self._shards_dir)
                      if name.endswith(".jsonl"))

    def _load_shard(self, shard: str) -> Dict[str, dict]:
        loaded = self._cache.get(shard)
        if loaded is not None:
            return loaded
        records: Dict[str, dict] = {}
        path = self._shard_path(shard)
        if os.path.exists(path):
            with open(path, "rb") as fh:
                for line in fh:
                    record = _parse_record(line)
                    if record is not None:
                        records[record["key"]] = record["result"]
        self._cache[shard] = records
        return records

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimTaskResult]:
        payload = self._load_shard(self._shard_of(key)).get(key)
        return None if payload is None else decode_result(payload)

    def __contains__(self, key: str) -> bool:
        return key in self._load_shard(self._shard_of(key))

    def put(self, key: str, result: SimTaskResult) -> None:
        """Persist one result (atomic single-line append).

        Records carry a write timestamp (``ts``, integer epoch seconds)
        so :meth:`evict` can sweep least-recently-written first.  It is
        an *extra* field — readers ignore it and
        :func:`_parse_record` tolerates its absence — so stores written
        before (or without) it stay fully compatible, no schema bump.
        """
        records = self._load_shard(self._shard_of(key))
        payload = encode_result(result)
        line = json.dumps(
            {"schema": SCHEMA_VERSION, "key": key, "result": payload,
             "ts": int(time.time())},
            sort_keys=True, separators=(",", ":")) + "\n"
        os.makedirs(self._shards_dir, exist_ok=True)
        with open(self._shard_path(self._shard_of(key)), "ab") as fh:
            fh.write(line.encode())
            # Chaos hook: under an installed fault plan this appends a
            # torn-write garbage line, which the readers' corruption
            # tolerance must degrade to a miss (see repro.exec.faults).
            garbage = shard_sabotage(key)
            if garbage is not None:
                fh.write(garbage)
        records[key] = payload

    def keys(self) -> Set[str]:
        out: Set[str] = set()
        for shard in self._shard_names():
            out.update(self._load_shard(shard))
        return out

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------
    # Quarantine: fingerprints whose tasks exhausted every retry.  A
    # separate shard, same append/parse discipline as result shards.

    def _quarantine_path(self) -> str:
        return os.path.join(self.path, _QUARANTINE)

    def _load_quarantine(self) -> Dict[str, dict]:
        loaded = self._quarantine_cache
        if loaded is not None:
            return loaded
        records: Dict[str, dict] = {}
        path = self._quarantine_path()
        if os.path.exists(path):
            with open(path, "rb") as fh:
                for line in fh:
                    record = _parse_record(line, payload="failure")
                    if record is not None:
                        records[record["key"]] = record["failure"]
        self._quarantine_cache = records
        return records

    def quarantine(self, key: str, failure: TaskFailure) -> None:
        """Record one poison fingerprint (atomic single-line append)."""
        records = self._load_quarantine()
        payload = encode_failure(failure)
        line = json.dumps(
            {"schema": SCHEMA_VERSION, "key": key, "failure": payload},
            sort_keys=True, separators=(",", ":")) + "\n"
        with open(self._quarantine_path(), "ab") as fh:
            fh.write(line.encode())
        records[key] = payload

    def get_quarantine(self, key: str) -> Optional[TaskFailure]:
        payload = self._load_quarantine().get(key)
        return None if payload is None else decode_failure(payload)

    def quarantined_keys(self) -> Set[str]:
        return set(self._load_quarantine())

    # ------------------------------------------------------------------
    def _scan(self, deep: bool) -> StoreStats:
        records = corrupt = size = 0
        distinct: Set[str] = set()
        shards = self._shard_names()
        for shard in shards:
            path = self._shard_path(shard)
            size += os.path.getsize(path)
            with open(path, "rb") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    record = _parse_record(line)
                    if record is not None and deep:
                        try:
                            decode_result(record["result"])
                        except (KeyError, TypeError, ValueError):
                            record = None
                    if record is None:
                        corrupt += 1
                    else:
                        records += 1
                        distinct.add(record["key"])
        quarantined: Set[str] = set()
        quarantine_path = self._quarantine_path()
        if os.path.exists(quarantine_path):
            size += os.path.getsize(quarantine_path)
            with open(quarantine_path, "rb") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    record = _parse_record(line, payload="failure")
                    if record is not None and deep:
                        try:
                            decode_failure(record["failure"])
                        except (TypeError, ValueError):
                            record = None
                    if record is None:
                        corrupt += 1
                    else:
                        quarantined.add(record["key"])
        return StoreStats(path=self.path, schema=SCHEMA_VERSION,
                          shards=len(shards), records=records,
                          distinct=len(distinct), corrupt=corrupt,
                          size_bytes=size, quarantined=len(quarantined))

    def stats(self) -> StoreStats:
        """Cheap scan: shard/record/corrupt counts and sizes."""
        return self._scan(deep=False)

    def verify(self) -> StoreStats:
        """Deep scan: additionally decode every record, so a payload
        that parses as JSON but no longer decodes counts as corrupt."""
        return self._scan(deep=True)

    @staticmethod
    def _record_line(key: str, record: dict, payload: str) -> str:
        """Canonical serialized form of one (parsed) record.

        Preserves the write timestamp through rewrites — ``gc`` must
        not make every record look freshly written, or :meth:`evict`
        would lose its least-recently-written ordering.
        """
        out = {"schema": SCHEMA_VERSION, "key": key,
               payload: record[payload]}
        if "ts" in record:
            out["ts"] = record["ts"]
        return json.dumps(out, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def _read_records(self, path: str, payload: str = "result"
                      ) -> Tuple[Dict[str, dict], int]:
        """All parseable records in one file (last write per key wins)
        plus the raw line count."""
        keep: Dict[str, dict] = {}
        total = 0
        with open(path, "rb") as fh:
            for line in fh:
                if not line.strip():
                    continue
                total += 1
                record = _parse_record(line, payload=payload)
                if record is not None:
                    keep[record["key"]] = record
        return keep, total

    def gc(self) -> int:
        """Rewrite every shard down to one record per key.

        Drops corrupt/foreign-schema lines and duplicate keys (last
        write wins, matching read semantics); each shard is replaced
        atomically.  Returns the number of lines dropped.
        """
        dropped = 0
        for shard in self._shard_names():
            path = self._shard_path(shard)
            keep, total = self._read_records(path)
            dropped += total - len(keep)
            body = "".join(
                self._record_line(key, keep[key], "result")
                for key in sorted(keep))
            _atomic_write(path, body.encode())
            self._cache[shard] = {key: record["result"]
                                  for key, record in keep.items()}
        quarantine_path = self._quarantine_path()
        if os.path.exists(quarantine_path):
            keep_q, total = self._read_records(quarantine_path,
                                               payload="failure")
            dropped += total - len(keep_q)
            body = "".join(
                self._record_line(key, keep_q[key], "failure")
                for key in sorted(keep_q))
            _atomic_write(quarantine_path, body.encode())
            self._quarantine_cache = {key: record["failure"]
                                      for key, record in keep_q.items()}
        return dropped

    def evict(self, max_bytes: int) -> Tuple[int, int]:
        """Least-recently-written sweep down to ``max_bytes`` of
        result-shard data.

        Records are ordered by their write timestamp (``ts``; records
        from stores predating the field count as oldest) and evicted
        oldest-first until the canonical rewritten shards fit the
        budget.  Every shard is rewritten canonically (so duplicates
        and corrupt lines are dropped as a side effect, like
        :meth:`gc`); the quarantine shard is never evicted — poison
        fingerprints are tiny and forgetting one re-runs a task that
        kills workers.

        Returns ``(evicted_records, evicted_shards)`` — how many
        records were dropped, from how many distinct shards.
        """

        def age(record: dict) -> float:
            try:
                return float(record.get("ts", 0))
            except (TypeError, ValueError):
                return 0.0

        shard_keep: Dict[str, Dict[str, dict]] = {}
        entries: List[Tuple[float, str, str, int]] = []
        total = 0
        for shard in self._shard_names():
            keep, _count = self._read_records(self._shard_path(shard))
            shard_keep[shard] = keep
            for key, record in keep.items():
                size = len(self._record_line(key, record, "result"))
                entries.append((age(record), key, shard, size))
                total += size
        entries.sort()
        evicted = 0
        touched: Set[str] = set()
        for ts, key, shard, size in entries:
            if total <= max(int(max_bytes), 0):
                break
            del shard_keep[shard][key]
            total -= size
            evicted += 1
            touched.add(shard)
        for shard, keep in shard_keep.items():
            body = "".join(
                self._record_line(key, keep[key], "result")
                for key in sorted(keep))
            _atomic_write(self._shard_path(shard), body.encode())
            self._cache[shard] = {key: record["result"]
                                  for key, record in keep.items()}
        return evicted, len(touched)


class StoreExecutor(Executor):
    """Serve hits from a :class:`ResultStore`; persist misses as they
    complete.

    The disk analogue of :class:`~repro.exec.executors.CachingExecutor`,
    keyed by the same :func:`~repro.exec.task.cache_key` so memory and
    disk entries can never diverge.  Misses stream through the inner
    executor's :meth:`~repro.exec.executors.Executor.run_iter` and are
    written to the store the moment each result exists — kill the
    process mid-batch and everything finished so far is already on
    disk, so the rerun simulates only the remainder.

    Failure results (the supervised executor's quarantine variant) are
    recorded in the store's quarantine shard, never in the result
    shards.  With ``skip_quarantined=True`` a known-poison fingerprint
    is served as its recorded failure instead of being re-executed —
    the ``--resume`` behavior that keeps one poison task from killing
    a fresh worker on every rerun.
    """

    def __init__(self, inner: Optional[Executor] = None,
                 store: Union[ResultStore, str, os.PathLike, None] = None,
                 skip_quarantined: bool = False):
        if store is None:
            raise ValueError("StoreExecutor requires a store "
                             "(a ResultStore or a directory path)")
        self.inner = inner or SerialExecutor()
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self.skip_quarantined = skip_quarantined
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def run_batch(self, tasks: Sequence[SimTask],
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimTaskResult]:
        tasks = list(tasks)
        keys = [cache_key(task) for task in tasks]
        fetched: Dict[str, SimTaskResult] = {}
        pending: List[SimTask] = []
        pending_keys: List[str] = []
        seen = set()
        for task, key in zip(tasks, keys):
            if key in fetched:
                self.hits += 1
                continue
            if key in seen:
                continue
            hit = self.store.get(key)
            if hit is not None:
                fetched[key] = hit
                self.hits += 1
                continue
            if self.skip_quarantined:
                known = self.store.get_quarantine(key)
                if known is not None:
                    fetched[key] = SimTaskResult(failure=known)
                    self.quarantined += 1
                    continue
            seen.add(key)
            pending.append(task)
            pending_keys.append(key)
        # Progress spans the submitted batch (hits and duplicates count
        # as already done), mirroring CachingExecutor.
        done_offset = len(tasks) - len(pending)
        if pending:
            self.misses += len(pending)
            done = 0
            stream = self.inner.run_iter(pending)
            try:
                for i, result in stream:
                    if result.failure is not None:
                        # Poison goes to the quarantine shard, never the
                        # result shards: a failure must not be served as
                        # a cache hit by a reader unaware of quarantine.
                        self.store.quarantine(pending_keys[i],
                                              result.failure)
                        self.quarantined += 1
                    else:
                        self.store.put(pending_keys[i], result)
                    fetched[pending_keys[i]] = result
                    done += 1
                    if progress is not None:
                        progress(done_offset + done, len(tasks))
            finally:
                # Deterministic generator finalization: a store write
                # error or raising progress callback must reap the
                # inner executor's in-flight state immediately, not
                # whenever GC finds the suspended generator.
                stream.close()
        elif progress is not None and tasks:
            progress(len(tasks), len(tasks))
        return [fetched[key] for key in keys]

    def close(self) -> None:
        self.inner.close()


# ----------------------------------------------------------------------
# CLI: both scripts expose this as their ``store`` subcommand.

def store_main(argv: Optional[Sequence[str]] = None) -> int:
    """``store stats|gc|verify --store PATH`` — inspect or repair a
    result store.  Returns a shell-style exit code (``verify`` exits 1
    when corrupt records are found; with ``--strict``, ``stats`` and
    ``verify`` also exit 1 on a schema-valid store that holds
    quarantined fingerprints)."""
    parser = argparse.ArgumentParser(
        prog="store",
        description="inspect or repair a disk-backed result store")
    parser.add_argument("command", choices=("stats", "gc", "verify"),
                        help="stats: cheap scan; verify: deep scan "
                             "(decode every record); gc: drop corrupt "
                             "lines and duplicate keys")
    parser.add_argument("--store", required=True,
                        help="result store directory")
    parser.add_argument("--strict", action="store_true",
                        help="also exit non-zero when the store holds "
                             "quarantined (poison) fingerprints")
    parser.add_argument("--max-bytes", type=int, default=None,
                        metavar="N",
                        help="(gc only) after dropping corrupt lines, "
                             "evict least-recently-written results "
                             "until the result shards fit in N bytes")
    args = parser.parse_args(argv)
    if args.max_bytes is not None and args.command != "gc":
        parser.error("--max-bytes only applies to 'gc'")
    try:
        store = ResultStore(args.store, require_exists=True)
    except (FileNotFoundError, StoreSchemaError) as error:
        print(f"store {args.command}: {error}", file=sys.stderr)
        return 2
    if args.command == "gc":
        dropped = store.gc()
        print(f"gc: dropped {dropped} corrupt/duplicate line(s)")
        if args.max_bytes is not None:
            evicted, shards = store.evict(args.max_bytes)
            print(f"gc: evicted {evicted} record(s) from "
                  f"{shards} shard(s)")
    stats = store.verify() if args.command == "verify" else store.stats()
    for line in stats.lines():
        print(line)
    if args.command == "verify":
        if stats.corrupt:
            print(f"verify: FAILED — {stats.corrupt} corrupt record(s) "
                  f"(run 'store gc' to drop them)")
            return 1
    if args.strict and stats.quarantined:
        keys = sorted(store.quarantined_keys())
        shown = ", ".join(key[:12] for key in keys[:8])
        more = f", +{len(keys) - 8} more" if len(keys) > 8 else ""
        print(f"{args.command}: FAILED (--strict) — "
              f"{stats.quarantined} quarantined fingerprint(s): "
              f"{shown}{more}")
        return 1
    if args.command == "verify":
        print("verify: ok — every record decodes")
    return 0
