"""``run_batch`` — the one-call entry point to the execution layer.

Callers that hold an :class:`~repro.exec.executors.Executor` pass it in
and keep ownership (the pool stays warm for the next batch); callers
that just want "N jobs, please" pass ``jobs=`` and a throwaway executor
is created and torn down around the batch.  Either way, ``store=``
layers a disk-backed :class:`~repro.exec.store.StoreExecutor` on top,
so results persist across crashes and processes.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

from .executors import Executor, ProgressFn, SerialExecutor
from .remote import RemoteExecutor
from .store import ResultStore, StoreExecutor
from .supervise import RetryPolicy, SupervisedExecutor
from .task import SimTask, SimTaskResult

__all__ = ["run_batch", "executor_for"]

#: Anything ``store=`` accepts: an open store or a directory path.
StoreLike = Union[ResultStore, str, os.PathLike]

#: Anything ``workers=`` accepts: a ``"host:port,host:port"`` string or
#: a sequence of addresses (see :func:`repro.exec.remote.parse_workers`).
WorkersLike = Union[str, Sequence[Union[str, Tuple[str, int]]]]


def executor_for(jobs: Optional[int],
                 store: Optional[StoreLike] = None,
                 resume: bool = False,
                 policy: Optional[RetryPolicy] = None,
                 workers: Optional[WorkersLike] = None) -> Executor:
    """The executor implied by ``--jobs N`` / ``--store PATH`` flags.

    ``None``, ``0``, or ``1`` jobs mean serial; anything larger is a
    supervised worker pool with that many workers (a
    :class:`~repro.exec.supervise.SupervisedExecutor`: per-task
    exception capture, worker respawn with chunk bisection, cost-derived
    timeouts — see ``docs/EXECUTION.md``, "Failure semantics").
    Negative counts are rejected loudly — silently running a sweep
    single-core after a ``--jobs -8`` typo would waste hours.

    ``policy`` tunes retries/timeouts/quarantine (default
    :class:`RetryPolicy`, which raises on the first exhausted task).

    ``workers`` (``--workers host:port,...``) overrides local
    execution with a :class:`~repro.exec.remote.RemoteExecutor`
    dispatching to those worker daemons under the same policy; ``jobs``
    then sizes only the local fallback pool used when no worker is
    reachable.

    ``store`` (a directory path or an open :class:`ResultStore`) wraps
    the executor in a :class:`StoreExecutor`: results already on disk
    are served without simulating, fresh results are persisted as they
    complete.  Under a quarantine policy the store also records poison
    fingerprints and — on ``resume`` — serves their recorded failures
    instead of re-executing them.  ``resume`` additionally requires the
    store to already exist — the ``--resume`` guard against a typo'd
    path quietly recomputing a finished sweep (``FileNotFoundError``
    otherwise).

    The caller owns the result and should ``close()`` it (or use it as
    a context manager).
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if resume and store is None:
        raise ValueError("resume requires a result store "
                         "(pass store=/--store)")
    if workers:
        inner: Executor = RemoteExecutor(workers, policy=policy,
                                         fallback_jobs=jobs or None)
    elif jobs is not None and jobs > 1:
        inner = SupervisedExecutor(jobs, policy=policy)
    else:
        inner = SerialExecutor()
    if store is None:
        return inner
    if not isinstance(store, ResultStore):
        store = ResultStore(store, require_exists=resume)
    quarantining = policy is not None and policy.on_failure == "quarantine"
    return StoreExecutor(inner, store=store,
                         skip_quarantined=quarantining)


def run_batch(tasks: Sequence[SimTask],
              executor: Optional[Executor] = None,
              jobs: Optional[int] = None,
              progress: Optional[ProgressFn] = None,
              store: Optional[StoreLike] = None,
              policy: Optional[RetryPolicy] = None,
              workers: Optional[WorkersLike] = None
              ) -> List[SimTaskResult]:
    """Run ``tasks`` and return their results in task order.

    Exactly one of ``executor`` / ``jobs`` is normally given; with
    neither, the batch runs serially.  A passed-in executor is *not*
    closed (it may be reused); a ``jobs``-created one is.  ``store``
    layers disk-backed result persistence over either — a passed-in
    executor is then wrapped for this batch but still not closed.
    Callers issuing *many* batches against one store should pass an
    open :class:`ResultStore` (or a long-lived
    :class:`StoreExecutor`), not a path: a path is opened fresh each
    call, re-parsing its shards from disk.
    """
    if executor is not None:
        if store is not None:
            # Wrap without taking ownership: StoreExecutor.close would
            # close the caller's executor, so don't close the wrapper.
            executor = StoreExecutor(executor, store=store)
        return executor.run_batch(tasks, progress=progress)
    with executor_for(jobs, store=store, policy=policy,
                      workers=workers) as owned:
        return owned.run_batch(tasks, progress=progress)
