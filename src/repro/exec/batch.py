"""``run_batch`` — the one-call entry point to the execution layer.

Callers that hold an :class:`~repro.exec.executors.Executor` pass it in
and keep ownership (the pool stays warm for the next batch); callers
that just want "N jobs, please" pass ``jobs=`` and a throwaway executor
is created and torn down around the batch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .executors import (Executor, ProcessPoolExecutor, ProgressFn,
                        SerialExecutor)
from .task import SimTask, SimTaskResult

__all__ = ["run_batch", "executor_for"]


def executor_for(jobs: Optional[int]) -> Executor:
    """The executor implied by a ``--jobs N`` flag.

    ``None``, ``0``, or ``1`` mean serial; anything larger is a process
    pool with that many workers.  Negative counts are rejected loudly —
    silently running a sweep single-core after a ``--jobs -8`` typo
    would waste hours.  The caller owns the result and should
    ``close()`` it (or use it as a context manager).
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs is not None and jobs > 1:
        return ProcessPoolExecutor(jobs)
    return SerialExecutor()


def run_batch(tasks: Sequence[SimTask],
              executor: Optional[Executor] = None,
              jobs: Optional[int] = None,
              progress: Optional[ProgressFn] = None
              ) -> List[SimTaskResult]:
    """Run ``tasks`` and return their results in task order.

    Exactly one of ``executor`` / ``jobs`` is normally given; with
    neither, the batch runs serially.  A passed-in executor is *not*
    closed (it may be reused); a ``jobs``-created one is.
    """
    if executor is not None:
        return executor.run_batch(tasks, progress=progress)
    with executor_for(jobs) as owned:
        return owned.run_batch(tasks, progress=progress)
