"""RemyCC actions.

An action is the triplet the paper describes in section 3.5:

* ``window_multiple`` (m) — multiplier applied to the congestion window,
* ``window_increment`` (b) — additive term,
* ``intersend_s`` (tau) — lower bound on the pacing interval between
  transmissions, in seconds.

On every ACK the sender sets ``cwnd = m * cwnd + b`` and paces outgoing
packets at least ``tau`` apart.  With a stable whisker (m < 1) the window
converges to the fixed point ``b / (1 - m)``, which is how a piecewise-
constant rule table expresses a target window per congestion regime.

The optimizer explores neighbouring actions; :meth:`Action.neighbors`
generates the moves (additive in m and b, multiplicative in tau, with a
geometrically growing step for the expanding-search refinement Remy
uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Action", "DEFAULT_ACTION",
           "MIN_WINDOW_MULTIPLE", "MAX_WINDOW_MULTIPLE",
           "MIN_WINDOW_INCREMENT", "MAX_WINDOW_INCREMENT",
           "MIN_INTERSEND_S", "MAX_INTERSEND_S"]

MIN_WINDOW_MULTIPLE = 0.0
MAX_WINDOW_MULTIPLE = 2.0
MIN_WINDOW_INCREMENT = -32.0
MAX_WINDOW_INCREMENT = 64.0
MIN_INTERSEND_S = 2e-5
MAX_INTERSEND_S = 1.0

#: Base step sizes for the optimizer's neighbourhood moves.
_MULTIPLE_STEP = 0.05
_INCREMENT_STEP = 1.0
_INTERSEND_FACTOR = 1.6


@dataclass(frozen=True)
class Action:
    """One (m, b, tau) triplet, always stored clamped to legal bounds."""

    window_multiple: float
    window_increment: float
    intersend_s: float

    def clamped(self) -> "Action":
        """Return a copy with every component inside its legal range."""
        return Action(
            min(max(self.window_multiple, MIN_WINDOW_MULTIPLE),
                MAX_WINDOW_MULTIPLE),
            min(max(self.window_increment, MIN_WINDOW_INCREMENT),
                MAX_WINDOW_INCREMENT),
            min(max(self.intersend_s, MIN_INTERSEND_S), MAX_INTERSEND_S),
        )

    def apply_to_window(self, window: float) -> float:
        """The per-ACK window map: ``m * w + b`` (uncapped)."""
        return self.window_multiple * window + self.window_increment

    def neighbors(self, scale: float = 1.0) -> List["Action"]:
        """The six single-dimension moves at step size ``scale``.

        Moves that fall outside the legal bounds are clamped; moves that
        collapse onto the current action are dropped.
        """
        m_step = _MULTIPLE_STEP * scale
        b_step = _INCREMENT_STEP * scale
        t_factor = _INTERSEND_FACTOR ** scale
        raw = [
            Action(self.window_multiple + m_step, self.window_increment,
                   self.intersend_s),
            Action(self.window_multiple - m_step, self.window_increment,
                   self.intersend_s),
            Action(self.window_multiple, self.window_increment + b_step,
                   self.intersend_s),
            Action(self.window_multiple, self.window_increment - b_step,
                   self.intersend_s),
            Action(self.window_multiple, self.window_increment,
                   self.intersend_s * t_factor),
            Action(self.window_multiple, self.window_increment,
                   self.intersend_s / t_factor),
        ]
        out: List[Action] = []
        for candidate in raw:
            clamped = candidate.clamped()
            if clamped != self and clamped not in out:
                out.append(clamped)
        return out

    def to_dict(self) -> dict:
        return {"m": self.window_multiple, "b": self.window_increment,
                "tau": self.intersend_s}

    @classmethod
    def from_dict(cls, data: dict) -> "Action":
        return cls(float(data["m"]), float(data["b"]),
                   float(data["tau"])).clamped()

    def __iter__(self) -> Iterator[float]:
        yield self.window_multiple
        yield self.window_increment
        yield self.intersend_s


#: The optimizer's starting point: hold the window (m=1, b=1 grows it by
#: one packet per ACK, i.e. slow-start-fast) with light pacing.  Training
#: immediately tunes this; it only needs to produce *some* ACK clock.
DEFAULT_ACTION = Action(window_multiple=1.0, window_increment=1.0,
                        intersend_s=1e-4)
