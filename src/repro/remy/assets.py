"""Pre-trained whisker trees shipped with the package.

Training a Tao protocol takes minutes-to-hours even at this
reproduction's reduced scale, so the benchmark harness loads rule tables
trained ahead of time by ``scripts/train_assets.py`` and stored as JSON
under ``repro/data/assets/``.  Each asset file records the tree, the
training scenario range, and the training log, so every shipped
protocol is reproducible from the committed code.

Asset names mirror the paper's protocol names (Table 2a etc.):
``tao_2x`` ... ``tao_1000x``, ``tao_mux_1_2`` ... ``tao_mux_1_100``,
``tao_rtt_150`` ..., ``tao_structure_one`` / ``tao_structure_two``,
``tao_tcp_naive`` / ``tao_tcp_aware``, ``tao_delta_*``, and the signal
knockout variants ``tao_knockout_<signal>``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .tree import WhiskerTree

__all__ = ["asset_dir", "available_assets", "load_tree", "save_asset",
           "load_asset_metadata"]


def asset_dir() -> Path:
    """Directory holding the shipped rule tables."""
    return Path(__file__).resolve().parent.parent / "data" / "assets"


def available_assets() -> List[str]:
    """Names of all shipped rule tables."""
    directory = asset_dir()
    if not directory.is_dir():
        return []
    return sorted(path.stem for path in directory.glob("*.json"))


def _asset_path(name: str) -> Path:
    return asset_dir() / f"{name}.json"


def load_tree(name: str) -> WhiskerTree:
    """Load a shipped rule table by name (e.g. ``"tao_2x"``)."""
    path = _asset_path(name)
    if not path.is_file():
        raise FileNotFoundError(
            f"no asset named {name!r}; available: {available_assets()}")
    with open(path) as handle:
        data = json.load(handle)
    return WhiskerTree.from_dict(data["tree"])


def load_asset_metadata(name: str) -> dict:
    """Everything recorded about an asset except the tree itself."""
    path = _asset_path(name)
    with open(path) as handle:
        data = json.load(handle)
    return {key: value for key, value in data.items() if key != "tree"}


def save_asset(name: str, tree: WhiskerTree,
               training_range: Optional[dict] = None,
               log: Optional[Dict[str, object]] = None,
               directory: Optional[Path] = None) -> Path:
    """Persist a trained tree (used by ``scripts/train_assets.py``)."""
    directory = directory if directory is not None else asset_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    payload = {
        "name": name,
        "tree": tree.to_dict(),
        "training_range": training_range or {},
        "log": log or {},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return path
