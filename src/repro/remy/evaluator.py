"""Evaluating whisker trees over training scenarios.

The optimizer's inner loop asks one question, thousands of times: *what
is the mean objective of this rule table over the training
distribution?*  This module answers it, with

* deterministic scenario sampling (common random numbers: every
  candidate tree sees exactly the same drawn configs and seeds, so score
  differences reflect the trees, not the luck of the draw),
* per-whisker usage accounting (the optimizer refines the busiest
  whisker and splits at its observed mean signals), and
* batch submission through :mod:`repro.exec` — training is
  embarrassingly parallel and pure Python is slow, so handing the
  (tree, config, seed) grid to a process-pool executor is what makes
  the reproduction practical (DESIGN.md section 2).  Serial and pooled
  execution produce bitwise-identical scores.

Caching happens at the task level: the evaluator memoizes each task's
*derived* outputs (objective score plus usage stats — a few floats, not
the full per-flow ``RunResult``) keyed by the full
:meth:`~repro.exec.SimTask.fingerprint` (config, trees, seed, duration,
flags), so re-testing an incumbent tree is free and — unlike the old
tree-keyed score cache — changing ``EvalSettings.scale`` can never
return a stale score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.objective import Objective
from ..core.scale import Scale
from ..core.scenario import ScenarioRange
from ..exec import Executor, SerialExecutor, SimTask, StoreExecutor
from .tree import WhiskerTree

__all__ = ["EvalSettings", "EvalResult", "TreeEvaluator",
           "run_training_task", "score_training_run"]


@dataclass(frozen=True)
class EvalSettings:
    """Budget for one tree evaluation."""

    n_configs: int = 8
    config_seed: int = 4242
    sim_seeds: Tuple[int, ...] = (1,)
    scale: Scale = field(default_factory=lambda: Scale(
        duration_s=16.0, packet_budget=30_000, min_duration_s=4.0))


@dataclass
class EvalResult:
    """Mean objective plus merged per-whisker usage statistics."""

    score: float
    usage_counts: List[int]
    usage_sums: List[List[float]]
    per_config_scores: List[float]


def score_training_run(result: "RunResult") -> float:
    """The training objective of one run: summed over learner flows.

    Pure float math over the returned :class:`FlowStats`, so the score
    is identical whether the simulation ran in-process or in a worker.
    """
    from ..experiments.common import scored_flows

    score = 0.0
    for flow in scored_flows(result):
        if flow.kind != "learner":
            continue
        objective = Objective(delta=flow.delta)
        delay = flow.mean_delay_s if flow.packets_delivered \
            else flow.base_delay_s
        score += objective.score(flow.throughput_bps, delay)
    return score


def run_training_task(tree_json: str, peer_json: Optional[str],
                      config_dict: dict, seed: int, duration: float,
                      record_usage: bool) -> Tuple[float, list, list]:
    """One simulation of one tree on one config (kept for callers of
    the pre-``repro.exec`` API; now a thin shim over
    :func:`repro.exec.run_sim_task`).

    Returns ``(objective_sum, usage_counts, usage_sums)``; usage lists
    are empty when ``record_usage`` is off.
    """
    from ..exec import run_sim_task

    trees = {"learner": tree_json}
    if peer_json is not None:
        trees["peer"] = peer_json
    task = SimTask.build(config_dict, trees=trees, seed=seed,
                         duration_s=duration, record_usage=record_usage)
    out = run_sim_task(task)
    return score_training_run(out.run), out.usage_counts, out.usage_sums


class TreeEvaluator:
    """Scores whisker trees over a :class:`ScenarioRange`.

    Parameters
    ----------
    executor:
        Any :class:`repro.exec.Executor` (e.g. a
        :class:`~repro.exec.ProcessPoolExecutor` for multi-core
        training); ``None`` runs tasks serially.  The evaluator
        memoizes each task's derived score and usage stats by task
        fingerprint, so repeated tasks — the incumbent tree under
        common random numbers — are never re-simulated.
    store:
        Optional disk-backed :class:`~repro.exec.ResultStore` (or a
        directory path).  The executor is wrapped in a
        :class:`~repro.exec.StoreExecutor`, so whisker evaluations
        persist across crashes and are shared with any other process
        pointed at the same store (e.g. ``run_experiments.py`` reusing
        training simulations) — the in-memory memo above stays the
        first, cheaper layer.
    screen:
        ``"fluid"`` turns :meth:`evaluate_batch` into screen-then-
        confirm: every candidate is scored on the cheap vectorized
        fluid backend, then the ``confirm_top`` best (plus any
        candidate whose fluid score still beats the best confirmed
        packet score) are re-scored on the exact packet engine.  The
        batch's best returned score is therefore always a genuine
        packet-engine score — the optimizer can never adopt an action
        on the strength of a fluid approximation.  ``None`` (default)
        scores everything on the packet engine.  :meth:`evaluate` —
        used for incumbents and usage recording — always runs packet.
    confirm_top:
        How many screened candidates to packet-confirm per batch
        (minimum 1; ignored unless ``screen`` is set).
    """

    def __init__(self, scenario_range: ScenarioRange,
                 settings: EvalSettings = EvalSettings(),
                 executor: Optional[Executor] = None,
                 store=None,
                 screen: Optional[str] = None,
                 confirm_top: int = 4):
        if screen not in (None, "fluid"):
            raise ValueError(f"screen must be None or 'fluid', "
                             f"got {screen!r}")
        self.scenario_range = scenario_range
        self.settings = settings
        executor = executor or SerialExecutor()
        if store is not None:
            executor = StoreExecutor(executor, store=store)
        self.executor = executor
        self.screen = screen
        self.confirm_top = max(int(confirm_top), 1)
        self.configs = scenario_range.sample_many(
            settings.n_configs, settings.config_seed)
        # fingerprint -> (score, usage_counts, usage_sums): a few
        # floats per task, never the full per-flow RunResult.  The
        # fingerprint hashes the task's backend, so fluid screens and
        # packet confirmations can never serve each other's scores.
        self._memo: Dict[str, Tuple[float, list, list]] = {}
        self._evaluations = 0

    @property
    def evaluations(self) -> int:
        """Simulations actually executed (cache hits excluded)."""
        return self._evaluations

    @property
    def cached_tasks(self) -> int:
        """Memoized task results currently held."""
        return len(self._memo)

    def clear_cache(self) -> None:
        """Drop memoized task results (the ``evaluations`` count stays).

        The optimizer calls this after every structural split: a split
        changes the tree's fingerprint, so all cached entries become
        unreachable — clearing bounds memory to one generation's tasks
        without losing a single hit.
        """
        self._memo.clear()

    def _tasks_for(self, tree: WhiskerTree,
                   peer: Optional[WhiskerTree],
                   record_usage: bool,
                   backend: str = "packet") -> List[SimTask]:
        trees = {"learner": tree.to_json()}
        if peer is not None:
            trees["peer"] = peer.to_json()
        tasks = []
        for config in self.configs:
            duration = self.settings.scale.duration_for(config)
            for seed in self.settings.sim_seeds:
                tasks.append(SimTask.build(
                    config, trees=trees, seed=seed, duration_s=duration,
                    record_usage=record_usage, backend=backend))
        return tasks

    def _run_tasks(self, tasks: List[SimTask]
                   ) -> List[Tuple[float, list, list]]:
        """Memoized (score, usage_counts, usage_sums) per task.

        Misses go to the executor as one batch (deduplicated); only the
        derived outputs are retained.
        """
        keys = [task.fingerprint() for task in tasks]
        pending: List[SimTask] = []
        pending_keys: List[str] = []
        seen = set()
        for task, key in zip(tasks, keys):
            if key not in self._memo and key not in seen:
                seen.add(key)
                pending.append(task)
                pending_keys.append(key)
        if pending:
            fresh = self.executor.run_batch(pending)
            self._evaluations += len(pending)
            failed = [(key, out.failure)
                      for key, out in zip(pending_keys, fresh)
                      if out.failure is not None]
            if failed:
                # A candidate scored on a partial grid is not comparable
                # to one scored on the full grid — quarantined results
                # must abort the evaluation, never be skipped over.
                from ..exec import TaskFailedError
                raise TaskFailedError(failed)
            for key, out in zip(pending_keys, fresh):
                self._memo[key] = (score_training_run(out.run),
                                   out.usage_counts, out.usage_sums)
        return [self._memo[key] for key in keys]

    def evaluate(self, tree: WhiskerTree,
                 peer: Optional[WhiskerTree] = None,
                 record_usage: bool = False) -> EvalResult:
        """Mean objective of ``tree``; merges usage stats into ``tree``."""
        tasks = self._tasks_for(tree, peer, record_usage)
        outputs = self._run_tasks(tasks)
        scores = [score for score, _, _ in outputs]
        mean = sum(scores) / len(scores)

        n_whiskers = len(tree)
        counts = [0] * n_whiskers
        sums = [[0.0] * 4 for _ in range(n_whiskers)]
        if record_usage:
            for _, task_counts, task_sums in outputs:
                for i, count in enumerate(task_counts):
                    counts[i] += count
                    for dim in range(4):
                        sums[i][dim] += task_sums[i][dim]
            tree.merge_stats(counts, sums)
        return EvalResult(score=mean, usage_counts=counts,
                          usage_sums=sums, per_config_scores=scores)

    def _batch_scores(self, trees: Sequence[WhiskerTree],
                      peer: Optional[WhiskerTree],
                      backend: str) -> List[float]:
        """Mean score per tree over the (config × seed) grid."""
        tasks: List[SimTask] = []
        for tree in trees:
            tasks.extend(self._tasks_for(tree, peer, False,
                                         backend=backend))
        outputs = self._run_tasks(tasks)
        per_tree = len(self.configs) * len(self.settings.sim_seeds)
        scores: List[float] = []
        for i in range(len(trees)):
            chunk = outputs[i * per_tree:(i + 1) * per_tree]
            scores.append(sum(score for score, _, _ in chunk)
                          / len(chunk))
        return scores

    def evaluate_batch(self, trees: Sequence[WhiskerTree],
                       peer: Optional[WhiskerTree] = None) -> List[float]:
        """Scores for many candidate trees, one flat task batch.

        Memoization makes re-testing the incumbent free, and the flat
        batch lets a pooled executor see the whole candidate set at
        once — the widest fan-out the optimizer's inner loop offers.

        With ``screen="fluid"`` this becomes screen-then-confirm: all
        candidates are scored on the fluid backend, the ``confirm_top``
        best are re-scored on the packet engine, and confirmation keeps
        expanding while any unconfirmed fluid score still exceeds the
        best confirmed packet score.  Confirmed trees return their
        packet score; the rest return their (strictly lower-ranked)
        fluid score — so the batch argmax is always packet-exact.
        """
        trees = list(trees)
        if self.screen is None or not trees:
            return self._batch_scores(trees, peer, "packet")
        scores = self._batch_scores(trees, peer, self.screen)
        order = sorted(range(len(trees)),
                       key=lambda i: (-scores[i], i))
        confirmed: Dict[int, float] = {}
        wave = order[:self.confirm_top]
        while wave:
            packet = self._batch_scores([trees[i] for i in wave],
                                        peer, "packet")
            confirmed.update(zip(wave, packet))
            best = max(confirmed.values())
            wave = [i for i in order
                    if i not in confirmed and scores[i] >= best]
        return [confirmed.get(i, scores[i])
                for i in range(len(trees))]
