"""Evaluating whisker trees over training scenarios.

The optimizer's inner loop asks one question, thousands of times: *what
is the mean objective of this rule table over the training
distribution?*  This module answers it, with

* deterministic scenario sampling (common random numbers: every
  candidate tree sees exactly the same drawn configs and seeds, so score
  differences reflect the trees, not the luck of the draw),
* per-whisker usage accounting (the optimizer refines the busiest
  whisker and splits at its observed mean signals), and
* optional multiprocessing across (tree, config, seed) tasks — training
  is embarrassingly parallel and pure Python is slow, so this is what
  makes the reproduction practical (DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.objective import Objective
from ..core.scale import Scale
from ..core.scenario import NetworkConfig, ScenarioRange
from .tree import WhiskerTree

__all__ = ["EvalSettings", "EvalResult", "TreeEvaluator", "run_training_task"]


@dataclass(frozen=True)
class EvalSettings:
    """Budget for one tree evaluation."""

    n_configs: int = 8
    config_seed: int = 4242
    sim_seeds: Tuple[int, ...] = (1,)
    scale: Scale = field(default_factory=lambda: Scale(
        duration_s=16.0, packet_budget=30_000, min_duration_s=4.0))


@dataclass
class EvalResult:
    """Mean objective plus merged per-whisker usage statistics."""

    score: float
    usage_counts: List[int]
    usage_sums: List[List[float]]
    per_config_scores: List[float]


def run_training_task(tree_json: str, peer_json: Optional[str],
                      config_dict: dict, seed: int, duration: float,
                      record_usage: bool) -> Tuple[float, list, list]:
    """One simulation of one tree on one config (module-level for pickling).

    Returns ``(objective_sum, usage_counts, usage_sums)``; usage lists
    are empty when ``record_usage`` is off.
    """
    # Imported here, not at module top: experiments.common imports the
    # protocols package, which imports repro.remy — a cycle at import
    # time but not at call time.
    from ..experiments.common import build_simulation, scored_flows

    tree = WhiskerTree.from_json(tree_json)
    trees = {"learner": tree}
    if peer_json is not None:
        trees["peer"] = WhiskerTree.from_json(peer_json)
    config = NetworkConfig.from_dict(config_dict)
    handle = build_simulation(config, trees=trees, seed=seed,
                              record_usage=record_usage)
    result = handle.run(duration)

    score = 0.0
    for flow in scored_flows(result):
        if flow.kind != "learner":
            continue
        objective = Objective(delta=flow.delta)
        delay = flow.mean_delay_s if flow.packets_delivered \
            else flow.base_delay_s
        score += objective.score(flow.throughput_bps, delay)
    if record_usage:
        counts, sums = tree.extract_stats()
        return score, counts, sums
    return score, [], []


class TreeEvaluator:
    """Scores whisker trees over a :class:`ScenarioRange`.

    Parameters
    ----------
    pool:
        An object with a ``starmap(fn, iterable)`` method (e.g.
        ``multiprocessing.Pool``); ``None`` runs tasks serially.
    """

    def __init__(self, scenario_range: ScenarioRange,
                 settings: EvalSettings = EvalSettings(),
                 pool=None):
        self.scenario_range = scenario_range
        self.settings = settings
        self.pool = pool
        self.configs = scenario_range.sample_many(
            settings.n_configs, settings.config_seed)
        self._cache: Dict[str, float] = {}
        self.evaluations = 0

    def _tasks_for(self, tree: WhiskerTree,
                   peer: Optional[WhiskerTree],
                   record_usage: bool) -> List[tuple]:
        tree_json = tree.to_json()
        peer_json = peer.to_json() if peer is not None else None
        tasks = []
        for config in self.configs:
            duration = self.settings.scale.duration_for(config)
            for seed in self.settings.sim_seeds:
                tasks.append((tree_json, peer_json, config.to_dict(),
                              seed, duration, record_usage))
        return tasks

    def _run_tasks(self, tasks: List[tuple]) -> List[tuple]:
        if self.pool is not None:
            return self.pool.starmap(run_training_task, tasks)
        return [run_training_task(*task) for task in tasks]

    def _cache_key(self, tree: WhiskerTree,
                   peer: Optional[WhiskerTree]) -> str:
        key = tree.fingerprint()
        if peer is not None:
            key += ":" + peer.fingerprint()
        return key

    def evaluate(self, tree: WhiskerTree,
                 peer: Optional[WhiskerTree] = None,
                 record_usage: bool = False) -> EvalResult:
        """Mean objective of ``tree``; merges usage stats into ``tree``."""
        tasks = self._tasks_for(tree, peer, record_usage)
        outputs = self._run_tasks(tasks)
        self.evaluations += len(tasks)
        scores = [out[0] for out in outputs]
        mean = sum(scores) / len(scores)
        self._cache[self._cache_key(tree, peer)] = mean

        n_whiskers = len(tree)
        counts = [0] * n_whiskers
        sums = [[0.0] * 4 for _ in range(n_whiskers)]
        if record_usage:
            for _, task_counts, task_sums in outputs:
                for i, count in enumerate(task_counts):
                    counts[i] += count
                    for dim in range(4):
                        sums[i][dim] += task_sums[i][dim]
            tree.merge_stats(counts, sums)
        return EvalResult(score=mean, usage_counts=counts,
                          usage_sums=sums, per_config_scores=scores)

    def evaluate_batch(self, trees: Sequence[WhiskerTree],
                       peer: Optional[WhiskerTree] = None) -> List[float]:
        """Scores for many candidate trees, one flat task batch.

        Caches by fingerprint so re-testing the incumbent is free.
        """
        pending: List[tuple] = []
        pending_index: List[int] = []
        scores: List[Optional[float]] = []
        tasks_per_tree = (len(self.configs)
                          * len(self.settings.sim_seeds))
        for i, tree in enumerate(trees):
            key = self._cache_key(tree, peer)
            if key in self._cache:
                scores.append(self._cache[key])
                continue
            scores.append(None)
            pending.extend(self._tasks_for(tree, peer, False))
            pending_index.append(i)
        if pending:
            outputs = self._run_tasks(pending)
            self.evaluations += len(pending)
            for slot, tree_index in enumerate(pending_index):
                chunk = outputs[slot * tasks_per_tree:
                                (slot + 1) * tasks_per_tree]
                mean = sum(out[0] for out in chunk) / len(chunk)
                scores[tree_index] = mean
                self._cache[self._cache_key(trees[tree_index], peer)] = mean
        return [float(s) for s in scores]
