"""The Remy search procedure (paper section 3.3).

Following Winstein & Balakrishnan (SIGCOMM 2013), the optimizer
alternates two moves on the whisker tree:

1. **Action refinement.**  Evaluate the tree over sampled training
   scenarios, pick the most-used whisker that has not been optimized in
   this generation, and hill-climb its (m, b, tau) action over the
   six single-dimension neighbour moves at geometrically growing step
   sizes.  Common random numbers make candidate comparisons low-variance.
2. **Structural growth.**  When every whisker has been refined, split
   the busiest whisker at the mean of its observed signal vectors (one
   binary split per active signal dimension) and start a new generation.

The original tool burned a CPU-year per protocol; this reproduction runs
the same loop at a reduced budget (see DESIGN.md), scaling with the
``EvalSettings`` and ``OptimizerSettings`` knobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.scenario import ScenarioRange
from ..exec import Executor
from .action import Action
from .evaluator import EvalSettings, TreeEvaluator
from .tree import WhiskerTree

__all__ = ["OptimizerSettings", "TrainingLog", "RemyOptimizer",
           "cooptimize"]

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class OptimizerSettings:
    """Search budget for one training run."""

    generations: int = 3            # number of whisker splits
    max_action_steps: int = 10      # hill-climb rounds per whisker
    neighbor_scales: tuple = (1.0, 4.0)
    min_improvement: float = 1e-3   # log2 units of objective
    time_budget_s: Optional[float] = None


@dataclass
class TrainingLog:
    """What happened during a training run."""

    scores: List[float]
    tree_sizes: List[int]
    evaluations: int
    wall_time_s: float

    @property
    def final_score(self) -> float:
        return self.scores[-1] if self.scores else float("-inf")


class RemyOptimizer:
    """Searches for a Tao protocol over a training scenario range."""

    def __init__(self, scenario_range: ScenarioRange,
                 eval_settings: EvalSettings = EvalSettings(),
                 settings: OptimizerSettings = OptimizerSettings(),
                 executor: Optional[Executor] = None,
                 progress: Optional[ProgressFn] = None,
                 screen: Optional[str] = None,
                 confirm_top: int = 4):
        # screen="fluid" makes candidate batches screen-then-confirm
        # (see TreeEvaluator); incumbents are always packet-scored.
        self.evaluator = TreeEvaluator(scenario_range, eval_settings,
                                       executor=executor,
                                       screen=screen,
                                       confirm_top=confirm_top)
        self.settings = settings
        self._progress = progress or (lambda message: None)

    # ------------------------------------------------------------------
    def train(self, tree: Optional[WhiskerTree] = None,
              peer: Optional[WhiskerTree] = None
              ) -> tuple[WhiskerTree, TrainingLog]:
        """Run the full search; returns the tree and a log."""
        started = time.monotonic()
        settings = self.settings
        if tree is None:
            tree = WhiskerTree()
        log = TrainingLog(scores=[], tree_sizes=[], evaluations=0,
                          wall_time_s=0.0)

        for generation in range(settings.generations + 1):
            score = self._refine_generation(tree, peer, started)
            log.scores.append(score)
            log.tree_sizes.append(len(tree))
            self._progress(
                f"generation {generation}: score={score:.3f} "
                f"whiskers={len(tree)}")
            if generation == settings.generations:
                break
            if self._out_of_time(started):
                self._progress("time budget exhausted; stopping")
                break
            target = tree.most_used_whisker()
            if target is None:  # pragma: no cover - defensive
                break
            tree.split(target)
            tree.reset_optimized_flags()
            # The split changed the tree's fingerprint: every cached
            # task result is now unreachable, so drop them.
            self.evaluator.clear_cache()

        log.evaluations = self.evaluator.evaluations
        log.wall_time_s = time.monotonic() - started
        return tree, log

    # ------------------------------------------------------------------
    def _out_of_time(self, started: float) -> bool:
        budget = self.settings.time_budget_s
        return budget is not None and time.monotonic() - started > budget

    def _refine_generation(self, tree: WhiskerTree,
                           peer: Optional[WhiskerTree],
                           started: float) -> float:
        """Optimize every whisker's action once; returns final score."""
        tree.reset_stats()
        baseline = self.evaluator.evaluate(tree, peer=peer,
                                           record_usage=True)
        score = baseline.score
        while True:
            whisker = tree.most_used_whisker(only_unoptimized=True)
            if whisker is None or whisker.optimized:
                return score
            index = tree.whiskers().index(whisker)
            score = self._improve_action(tree, index, score, peer)
            whisker.optimized = True
            if self._out_of_time(started):
                return score

    def _improve_action(self, tree: WhiskerTree, index: int,
                        current_score: float,
                        peer: Optional[WhiskerTree]) -> float:
        """Hill-climb one whisker's action; returns the best score."""
        settings = self.settings
        for _ in range(settings.max_action_steps):
            action = tree.whiskers()[index].action
            candidates: List[Action] = []
            for scale in settings.neighbor_scales:
                for neighbor in action.neighbors(scale):
                    if neighbor not in candidates:
                        candidates.append(neighbor)
            candidate_trees = []
            for candidate in candidates:
                clone = tree.clone()
                clone.set_action(index, candidate)
                candidate_trees.append(clone)
            scores = self.evaluator.evaluate_batch(candidate_trees,
                                                   peer=peer)
            best_index = max(range(len(scores)), key=scores.__getitem__)
            if scores[best_index] <= current_score + settings.min_improvement:
                return current_score
            current_score = scores[best_index]
            tree.set_action(index, candidates[best_index])
        return current_score


def cooptimize(range_a: ScenarioRange, range_b: ScenarioRange,
               eval_settings: EvalSettings = EvalSettings(),
               settings: OptimizerSettings = OptimizerSettings(),
               rounds: int = 2, executor: Optional[Executor] = None,
               progress: Optional[ProgressFn] = None,
               screen: Optional[str] = None,
               confirm_top: int = 4) -> tuple[WhiskerTree, WhiskerTree]:
    """Alternating co-optimization (paper section 4.6).

    Trains tree A against fixed tree B as its "peer" cross-traffic and
    vice versa, alternating ``rounds`` times.  Used for the
    sender-diversity experiment where a throughput-sensitive and a
    delay-sensitive protocol learn to share one bottleneck.
    """
    tree_a = WhiskerTree()
    tree_b = WhiskerTree()
    for round_number in range(rounds):
        if progress:
            progress(f"co-optimization round {round_number}: side A")
        optimizer_a = RemyOptimizer(range_a, eval_settings, settings,
                                    executor=executor, progress=progress,
                                    screen=screen,
                                    confirm_top=confirm_top)
        tree_a, _ = optimizer_a.train(tree_a, peer=tree_b)
        if progress:
            progress(f"co-optimization round {round_number}: side B")
        optimizer_b = RemyOptimizer(range_b, eval_settings, settings,
                                    executor=executor, progress=progress,
                                    screen=screen,
                                    confirm_top=confirm_top)
        tree_b, _ = optimizer_b.train(tree_b, peer=tree_a)
    return tree_a, tree_b
