"""The Remy protocol-design tool (substrate reimplementation).

Whisker-tree rule tables, the congestion-signal memory, and the
iterative optimizer that searches for "tractable attempts at optimal"
(Tao) protocols given a training :class:`~repro.core.scenario.ScenarioRange`.
"""

from .action import (DEFAULT_ACTION, MAX_INTERSEND_S, MAX_WINDOW_INCREMENT,
                     MAX_WINDOW_MULTIPLE, MIN_INTERSEND_S,
                     MIN_WINDOW_INCREMENT, MIN_WINDOW_MULTIPLE, Action)
from .assets import (asset_dir, available_assets, load_asset_metadata,
                     load_tree, save_asset)
from .evaluator import EvalResult, EvalSettings, TreeEvaluator
from .memory import (ALL_SIGNALS, NUM_SIGNALS, SIGNAL_LOWER_BOUNDS,
                     SIGNAL_NAMES, SIGNAL_UPPER_BOUNDS, Memory, SignalMask)
from .optimizer import (OptimizerSettings, RemyOptimizer, TrainingLog,
                        cooptimize)
from .tree import WhiskerTree
from .whisker import Whisker, full_domain

__all__ = [
    "Action", "DEFAULT_ACTION",
    "MIN_WINDOW_MULTIPLE", "MAX_WINDOW_MULTIPLE",
    "MIN_WINDOW_INCREMENT", "MAX_WINDOW_INCREMENT",
    "MIN_INTERSEND_S", "MAX_INTERSEND_S",
    "Memory", "SignalMask", "ALL_SIGNALS", "SIGNAL_NAMES", "NUM_SIGNALS",
    "SIGNAL_LOWER_BOUNDS", "SIGNAL_UPPER_BOUNDS",
    "Whisker", "full_domain", "WhiskerTree",
    "EvalSettings", "EvalResult", "TreeEvaluator",
    "OptimizerSettings", "RemyOptimizer", "TrainingLog", "cooptimize",
    "asset_dir", "available_assets", "load_tree", "save_asset",
    "load_asset_metadata",
]
