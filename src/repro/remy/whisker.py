"""Whiskers: piecewise-constant rules in congestion-signal space.

A whisker is an axis-aligned box over the four-signal domain plus the
:class:`~repro.remy.action.Action` executed whenever the sender's signal
vector falls inside the box (paper section 3.3: "Remy assumes a
piecewise-constant mapping").

Whiskers also accumulate usage statistics during simulation — how often
they fired, and the running mean of the signal vectors that hit them.
The optimizer uses the counts to pick which whisker to refine next and
the means as split points when subdividing (Remy splits the busiest
whisker "at the median of observed memory values"; we track the mean,
which is cheaper to maintain online and serves the same purpose).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .action import Action
from .memory import NUM_SIGNALS, SIGNAL_LOWER_BOUNDS, SIGNAL_UPPER_BOUNDS

__all__ = ["Whisker", "full_domain"]


def full_domain() -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """The (lower, upper) corners covering the whole signal space."""
    return SIGNAL_LOWER_BOUNDS, SIGNAL_UPPER_BOUNDS


class Whisker:
    """One box-shaped rule: signal bounds, an action, and usage stats."""

    __slots__ = ("lower", "upper", "action", "use_count",
                 "signal_sums", "optimized")

    def __init__(self, lower: Sequence[float], upper: Sequence[float],
                 action: Action):
        lower = tuple(lower)
        upper = tuple(upper)
        if len(lower) != NUM_SIGNALS or len(upper) != NUM_SIGNALS:
            raise ValueError(f"bounds must have {NUM_SIGNALS} dimensions")
        for dim, (lo, hi) in enumerate(zip(lower, upper)):
            if not lo < hi:
                raise ValueError(
                    f"degenerate box on dim {dim}: [{lo}, {hi})")
        self.lower = lower
        self.upper = upper
        self.action = action
        self.use_count = 0
        self.signal_sums = [0.0] * NUM_SIGNALS
        self.optimized = False

    def contains(self, vector: Sequence[float]) -> bool:
        """Half-open box membership: lower <= v < upper on every dim."""
        for value, lo, hi in zip(vector, self.lower, self.upper):
            if value < lo or value >= hi:
                return False
        return True

    def record_use(self, vector: Sequence[float]) -> None:
        """Update usage statistics after this whisker fired."""
        self.use_count += 1
        sums = self.signal_sums
        for dim in range(NUM_SIGNALS):
            sums[dim] += vector[dim]

    def reset_stats(self) -> None:
        self.use_count = 0
        self.signal_sums = [0.0] * NUM_SIGNALS

    def mean_signals(self) -> List[float]:
        """Mean observed signal vector (box centre if never used)."""
        if self.use_count == 0:
            return [(lo + hi) / 2.0
                    for lo, hi in zip(self.lower, self.upper)]
        return [s / self.use_count for s in self.signal_sums]

    def split_point(self, dim: int) -> float:
        """Where to split this box on ``dim``: the mean observed signal,
        nudged inside the box if degenerate."""
        lo, hi = self.lower[dim], self.upper[dim]
        point = self.mean_signals()[dim]
        if not lo < point < hi:
            point = (lo + hi) / 2.0
        # Guard against splits indistinguishable from a box edge.
        width = hi - lo
        point = min(max(point, lo + 1e-6 * width), hi - 1e-6 * width)
        return point

    def with_action(self, action: Action) -> "Whisker":
        """A copy of this box carrying a different action (stats reset)."""
        return Whisker(self.lower, self.upper, action)

    def to_dict(self) -> dict:
        return {"lower": list(self.lower), "upper": list(self.upper),
                "action": self.action.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "Whisker":
        return cls(data["lower"], data["upper"],
                   Action.from_dict(data["action"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Whisker(action=(m={self.action.window_multiple:.3g}, "
                f"b={self.action.window_increment:.3g}, "
                f"tau={self.action.intersend_s:.3g}), "
                f"uses={self.use_count})")
