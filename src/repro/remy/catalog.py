"""The catalog of Tao protocols trained for the paper's experiments.

Each entry transcribes one row of the paper's training-scenario tables
(Tables 2a, 3a, 4a, 5, 6a, 7a, plus the section 3.4 signal knockouts)
into a :class:`~repro.core.scenario.ScenarioRange`.  The
``scripts/train_assets.py`` script trains every entry and stores the
resulting rule tables under ``repro/data/assets/``; experiments load
them by catalog name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.scenario import ScenarioRange
from .memory import SIGNAL_NAMES, SignalMask

__all__ = ["TaoSpec", "CATALOG", "COOPT_PAIRS", "knockout_mask"]

_LEARNER2 = (("learner", "learner"),)


def knockout_mask(signal: str) -> SignalMask:
    """All signals active except ``signal`` (section 3.4 knockouts)."""
    if signal not in SIGNAL_NAMES:
        raise ValueError(f"unknown signal {signal!r}; "
                         f"choose from {SIGNAL_NAMES}")
    return tuple(name != signal for name in SIGNAL_NAMES)


@dataclass(frozen=True)
class TaoSpec:
    """One protocol to synthesize: its training model and signal mask."""

    name: str
    training: ScenarioRange
    mask: SignalMask = (True, True, True, True)
    paper_table: str = ""
    #: Name of the co-optimization partner spec, if trained jointly.
    coopt_partner: Optional[str] = None


def _speed_taos() -> Dict[str, TaoSpec]:
    """Table 2a: operating ranges in link speed, centered on 32 Mbps."""
    ranges = {
        "tao_1000x": (1.0, 1000.0),
        "tao_100x": (3.2, 320.0),
        "tao_10x": (10.0, 100.0),
        "tao_2x": (22.0, 44.0),
    }
    return {
        name: TaoSpec(name, ScenarioRange(
            link_speed_mbps=span, rtt_ms=(150.0, 150.0),
            num_senders=(2, 2), buffer_bdp=5.0),
            paper_table="Table 2a")
        for name, span in ranges.items()
    }


def _mux_taos() -> Dict[str, TaoSpec]:
    """Table 3a: degrees of multiplexing on a 15 Mbps dumbbell."""
    tops = {"tao_mux_1_2": 2, "tao_mux_1_10": 10, "tao_mux_1_20": 20,
            "tao_mux_1_50": 50, "tao_mux_1_100": 100}
    return {
        name: TaoSpec(name, ScenarioRange(
            link_speed_mbps=(15.0, 15.0), rtt_ms=(150.0, 150.0),
            num_senders=(1, top), buffer_bdp=5.0),
            paper_table="Table 3a")
        for name, top in tops.items()
    }


def _rtt_taos() -> Dict[str, TaoSpec]:
    """Table 4a: operating ranges in propagation delay, 33 Mbps."""
    spans = {
        "tao_rtt_150": (150.0, 150.0),
        "tao_rtt_145_155": (145.0, 155.0),
        "tao_rtt_140_160": (140.0, 160.0),
        "tao_rtt_50_250": (50.0, 250.0),
    }
    return {
        name: TaoSpec(name, ScenarioRange(
            link_speed_mbps=(33.0, 33.0), rtt_ms=span,
            num_senders=(2, 2), buffer_bdp=5.0),
            paper_table="Table 4a")
        for name, span in spans.items()
    }


def _structure_taos() -> Dict[str, TaoSpec]:
    """Table 5: simplified one-bottleneck vs. full two-bottleneck model.

    The simplified model collapses the parking lot into one 150 ms-delay
    bottleneck shared by two senders; the full model trains directly on
    the three-flow parking lot with 75 ms per hop.  Both sample link
    speeds log-uniformly over 10-100 Mbps.
    """
    one = TaoSpec("tao_structure_one", ScenarioRange(
        link_speed_mbps=(10.0, 100.0), rtt_ms=(300.0, 300.0),
        num_senders=(2, 2), buffer_bdp=5.0),
        paper_table="Table 5")
    two = TaoSpec("tao_structure_two", ScenarioRange(
        topology="parking_lot", link_speed_mbps=(10.0, 100.0),
        rtt_ms=(150.0, 150.0),
        sender_mixes=(("learner", "learner", "learner"),),
        buffer_bdp=5.0),
        paper_table="Table 5")
    return {"tao_structure_one": one, "tao_structure_two": two}


def _tcp_awareness_taos() -> Dict[str, TaoSpec]:
    """Table 6a: TCP-naive vs. TCP-aware training.

    The aware variant sees AIMD (NewReno-like) cross-traffic in half of
    its training scenarios; both train on 9-11 Mbps, 100 ms, 2 BDP
    buffers, with nearly-continuous and 5 s on/off workloads.
    """
    onoff = ((5.0, 5.0), (5.0, 0.01))
    naive = TaoSpec("tao_tcp_naive", ScenarioRange(
        link_speed_mbps=(9.0, 11.0), rtt_ms=(100.0, 100.0),
        sender_mixes=_LEARNER2, onoff_options=onoff, buffer_bdp=2.0),
        paper_table="Table 6a")
    aware = TaoSpec("tao_tcp_aware", ScenarioRange(
        link_speed_mbps=(9.0, 11.0), rtt_ms=(100.0, 100.0),
        sender_mixes=(("learner", "learner"), ("learner", "aimd")),
        onoff_options=onoff, buffer_bdp=2.0),
        paper_table="Table 6a")
    return {"tao_tcp_naive": naive, "tao_tcp_aware": aware}


def _diversity_taos() -> Dict[str, TaoSpec]:
    """Table 7a: throughput-sensitive (delta=0.1) and delay-sensitive
    (delta=10) senders, naive (trained alone) and co-optimized."""
    base = dict(link_speed_mbps=(10.0, 10.0), rtt_ms=(100.0, 100.0),
                buffer_bdp=None)
    alone = (("learner",), ("learner", "learner"))
    mixed = (("learner",), ("learner", "learner"),
             ("learner", "peer"), ("learner", "peer", "peer"),
             ("learner", "learner", "peer"),
             ("learner", "learner", "peer", "peer"))
    return {
        "tao_delta_tpt_naive": TaoSpec(
            "tao_delta_tpt_naive", ScenarioRange(
                sender_mixes=alone, learner_delta=0.1, **base),
            paper_table="Table 7a"),
        "tao_delta_del_naive": TaoSpec(
            "tao_delta_del_naive", ScenarioRange(
                sender_mixes=alone, learner_delta=10.0, **base),
            paper_table="Table 7a"),
        "tao_delta_tpt_coopt": TaoSpec(
            "tao_delta_tpt_coopt", ScenarioRange(
                sender_mixes=mixed, learner_delta=0.1, peer_delta=10.0,
                **base),
            paper_table="Table 7a",
            coopt_partner="tao_delta_del_coopt"),
        "tao_delta_del_coopt": TaoSpec(
            "tao_delta_del_coopt", ScenarioRange(
                sender_mixes=mixed, learner_delta=10.0, peer_delta=0.1,
                **base),
            paper_table="Table 7a",
            coopt_partner="tao_delta_tpt_coopt"),
    }


def _knockout_taos() -> Dict[str, TaoSpec]:
    """Section 3.4: retrain with each congestion signal removed."""
    calibration = ScenarioRange(
        link_speed_mbps=(32.0, 32.0), rtt_ms=(150.0, 150.0),
        num_senders=(2, 2), buffer_bdp=5.0)
    specs = {}
    for signal in SIGNAL_NAMES:
        name = f"tao_knockout_{signal}"
        specs[name] = TaoSpec(name, calibration,
                              mask=knockout_mask(signal),
                              paper_table="Section 3.4")
    return specs


def _calibration_tao() -> Dict[str, TaoSpec]:
    """Table 1: the calibration experiment's protocol."""
    return {"tao_calibration": TaoSpec("tao_calibration", ScenarioRange(
        link_speed_mbps=(32.0, 32.0), rtt_ms=(150.0, 150.0),
        num_senders=(2, 2), buffer_bdp=5.0),
        paper_table="Table 1")}


def _build_catalog() -> Dict[str, TaoSpec]:
    catalog: Dict[str, TaoSpec] = {}
    for group in (_calibration_tao(), _speed_taos(), _mux_taos(),
                  _rtt_taos(), _structure_taos(), _tcp_awareness_taos(),
                  _diversity_taos(), _knockout_taos()):
        catalog.update(group)
    return catalog


#: Every Tao protocol in the study, keyed by asset name.
CATALOG: Dict[str, TaoSpec] = _build_catalog()

#: Pairs trained by alternating co-optimization (section 4.6).
COOPT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("tao_delta_tpt_coopt", "tao_delta_del_coopt"),
)
