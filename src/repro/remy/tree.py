"""The whisker tree: RemyCC's piecewise-constant rule table.

The tree partitions the four-dimensional congestion-signal space into
axis-aligned boxes (whiskers), each carrying one action.  Lookup walks a
binary k-d structure; splitting replaces the busiest leaf with ``2^k``
children (one binary split per *active* signal dimension, at the mean of
the signals observed in that leaf), exactly Remy's structural move when
action refinement stops paying.

Signal knockout (paper section 3.4) is expressed through the tree's
``mask``: a knocked-out signal is never split on, so the protocol cannot
condition behaviour on it.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional, Sequence, Union

from .action import DEFAULT_ACTION, Action
from .memory import ALL_SIGNALS, NUM_SIGNALS, SignalMask
from .whisker import Whisker, full_domain

__all__ = ["WhiskerTree"]


class _Leaf:
    __slots__ = ("whisker",)

    def __init__(self, whisker: Whisker):
        self.whisker = whisker


class _Split:
    __slots__ = ("dim", "value", "left", "right")

    def __init__(self, dim: int, value: float,
                 left: "_Node", right: "_Node"):
        self.dim = dim
        self.value = value
        self.left = left
        self.right = right


_Node = Union[_Leaf, _Split]


class WhiskerTree:
    """A rule table mapping signal vectors to actions."""

    def __init__(self, default_action: Action = DEFAULT_ACTION,
                 mask: SignalMask = ALL_SIGNALS):
        if len(mask) != NUM_SIGNALS:
            raise ValueError(f"mask must have {NUM_SIGNALS} entries")
        if not any(mask):
            raise ValueError("at least one signal must stay active")
        lower, upper = full_domain()
        self.mask = tuple(mask)
        self._root: _Node = _Leaf(Whisker(lower, upper, default_action))
        self._leaves: Optional[List[Whisker]] = None
        self._compiled = None

    def _invalidate_caches(self) -> None:
        """Drop derived views after any structural or action change."""
        self._leaves = None
        self._compiled = None

    # ------------------------------------------------------------------
    # Lookup and traversal
    # ------------------------------------------------------------------
    def lookup(self, vector: Sequence[float]) -> Whisker:
        """The unique whisker whose box contains ``vector``."""
        node = self._root
        while isinstance(node, _Split):
            if vector[node.dim] < node.value:
                node = node.left
            else:
                node = node.right
        return node.whisker

    def whiskers(self) -> List[Whisker]:
        """All leaves in deterministic (depth-first, left-first) order.

        The list is cached (``split`` invalidates it) because the
        optimizer calls this on every ``set_action`` /
        ``most_used_whisker``, which used to rebuild it by walking the
        whole tree each time.  Treat the result as read-only.
        """
        leaves = self._leaves
        if leaves is None:
            leaves = []
            stack: List[_Node] = [self._root]
            while stack:
                node = stack.pop()
                if isinstance(node, _Leaf):
                    leaves.append(node.whisker)
                else:
                    stack.append(node.right)
                    stack.append(node.left)
            self._leaves = leaves
        return leaves

    def compiled(self):
        """This tree flattened to a :class:`~repro.remy.compiled.CompiledTree`.

        Cached; ``split`` and ``set_action`` invalidate it.  Mutating a
        whisker's ``action`` attribute directly does *not* — use
        ``set_action``.
        """
        if self._compiled is None:
            from .compiled import CompiledTree
            self._compiled = CompiledTree.from_tree(self)
        return self._compiled

    def adopt_compiled(self, compiled) -> None:
        """Install a pre-built compiled form for this tree.

        Only valid when ``compiled`` was flattened from a tree with
        identical structure and actions (e.g. the memoized compilation
        of the exact JSON this tree was parsed from — see
        :func:`repro.remy.compiled.compiled_from_json`); there is no
        verification, a mismatch silently corrupts lookups.
        """
        self._compiled = compiled

    def __len__(self) -> int:
        return len(self.whiskers())

    # ------------------------------------------------------------------
    # Statistics plumbing (used by the optimizer)
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        for whisker in self.whiskers():
            whisker.reset_stats()

    def reset_optimized_flags(self) -> None:
        for whisker in self.whiskers():
            whisker.optimized = False

    def merge_stats(self, counts: Sequence[int],
                    signal_sums: Sequence[Sequence[float]]) -> None:
        """Fold usage stats gathered in a worker process back in."""
        leaves = self.whiskers()
        if len(counts) != len(leaves):
            raise ValueError("stats length does not match tree size")
        for whisker, count, sums in zip(leaves, counts, signal_sums):
            whisker.use_count += count
            for dim in range(NUM_SIGNALS):
                whisker.signal_sums[dim] += sums[dim]

    def extract_stats(self) -> tuple[list[int], list[list[float]]]:
        leaves = self.whiskers()
        return ([w.use_count for w in leaves],
                [list(w.signal_sums) for w in leaves])

    def most_used_whisker(self,
                          only_unoptimized: bool = False
                          ) -> Optional[Whisker]:
        """The busiest leaf, optionally restricted to unoptimized ones.

        With ``only_unoptimized`` the search also skips whiskers that
        never fired — optimizing the action of a rule no signal vector
        reaches is wasted simulation time (most children of a fresh
        split are empty).
        """
        candidates = [w for w in self.whiskers()
                      if not (only_unoptimized and w.optimized)]
        if only_unoptimized:
            candidates = [w for w in candidates if w.use_count > 0]
        elif not any(w.use_count > 0 for w in candidates):
            return candidates[0] if candidates else None
        else:
            candidates = [w for w in candidates if w.use_count > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda w: w.use_count)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_action(self, index: int, action: Action) -> None:
        """Replace the action of the ``index``-th whisker in-place."""
        self.whiskers()[index].action = action.clamped()
        # The leaf list is still valid (same boxes), but any compiled
        # form now carries a stale action table.
        self._compiled = None

    def split(self, whisker: Whisker) -> int:
        """Split ``whisker`` into one child per half-space of every
        active dimension (2^k children).  Returns the number of children
        created.  The children inherit the parent's action.
        """
        dims = [d for d in range(NUM_SIGNALS) if self.mask[d]]
        subtree = self._build_split(whisker, dims)
        self._root = self._replace(self._root, whisker, subtree)
        self._invalidate_caches()
        return 2 ** len(dims)

    def _build_split(self, whisker: Whisker, dims: List[int]) -> _Node:
        if not dims:
            child = Whisker(whisker.lower, whisker.upper, whisker.action)
            return _Leaf(child)
        dim, rest = dims[0], dims[1:]
        point = whisker.split_point(dim)
        lower_box = Whisker(
            whisker.lower,
            tuple(point if d == dim else whisker.upper[d]
                  for d in range(NUM_SIGNALS)),
            whisker.action)
        upper_box = Whisker(
            tuple(point if d == dim else whisker.lower[d]
                  for d in range(NUM_SIGNALS)),
            whisker.upper,
            whisker.action)
        # Children keep the parent's observed-signal means so deeper
        # splits in the same round still have sensible split points.
        return _Split(dim, point,
                      self._build_split(lower_box, rest),
                      self._build_split(upper_box, rest))

    def _replace(self, node: _Node, target: Whisker,
                 replacement: _Node) -> _Node:
        if isinstance(node, _Leaf):
            if node.whisker is target:
                return replacement
            return node
        node.left = self._replace(node.left, target, replacement)
        node.right = self._replace(node.right, target, replacement)
        return node

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"mask": list(self.mask), "root": _node_to_dict(self._root)}

    @classmethod
    def from_dict(cls, data: dict) -> "WhiskerTree":
        tree = cls(mask=tuple(bool(x) for x in data["mask"]))
        tree._root = _node_from_dict(data["root"])
        tree._invalidate_caches()
        return tree

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WhiskerTree":
        return cls.from_dict(json.loads(text))

    def clone(self) -> "WhiskerTree":
        """Deep copy (via serialization; stats are not copied)."""
        return WhiskerTree.from_dict(self.to_dict())

    def fingerprint(self) -> str:
        """Stable digest of the structure + actions (for eval caching)."""
        return hashlib.sha1(self.to_json().encode()).hexdigest()


def _node_to_dict(node: _Node) -> dict:
    if isinstance(node, _Leaf):
        return {"leaf": node.whisker.to_dict()}
    return {"dim": node.dim, "value": node.value,
            "left": _node_to_dict(node.left),
            "right": _node_to_dict(node.right)}


def _node_from_dict(data: dict) -> _Node:
    if "leaf" in data:
        return _Leaf(Whisker.from_dict(data["leaf"]))
    return _Split(int(data["dim"]), float(data["value"]),
                  _node_from_dict(data["left"]),
                  _node_from_dict(data["right"]))
