"""Compiled whisker trees: the rule-table hot path as flat arrays.

:class:`~repro.remy.tree.WhiskerTree` is the right structure for the
*optimizer* — it splits, clones, and serializes — but its per-ACK
``lookup`` walks ``isinstance``-dispatched node objects and its
``record_use`` pays a method call plus a Python loop per hit.  Every
simulated packet in training and evaluation funnels through those two
operations, which makes them the constant factor the whole reproduction
is bottlenecked on.

:class:`CompiledTree` flattens a tree once into parallel arrays:

* internal node ``i`` carries ``dims[i]`` / ``thresholds[i]`` and two
  child references ``left[i]`` / ``right[i]``;
* a child reference ``>= 0`` is another internal node index, and ``< 0``
  encodes a leaf as ``~leaf_index`` (so a pure index walk needs no tag
  checks at all);
* leaf ``j`` carries its action unpacked into ``action_m[j]`` /
  ``action_b[j]`` / ``action_tau[j]``.

Leaves are numbered in the tree's canonical depth-first left-first
order — the exact order :meth:`WhiskerTree.whiskers` yields — so a leaf
index is interchangeable with a whisker list index everywhere (usage
merging, ``set_action``, stats extraction).

Usage statistics accumulate into a :class:`UsageStats` pair of flat
arrays (one integer increment plus four float adds per ACK) and merge
back into the tree's whiskers once per run via
:meth:`UsageStats.merge_into`.  The float additions happen in the same
per-dimension order as ``Whisker.record_use``, so for a fresh tree the
merged sums are bitwise-identical to the interpreted path's — the golden
trace suite pins this.

A ``CompiledTree`` is immutable and holds no references back to any
whisker, so one compiled instance can be shared by every simulation of
the same rule table; :func:`compiled_from_json` memoizes compilation on
the tree's canonical JSON (the same text the task fingerprint hashes),
which is how the evaluator's workers compile each candidate tree once
per process rather than once per (config, seed) task.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .memory import NUM_SIGNALS

__all__ = ["CompiledTree", "UsageStats", "compiled_from_json"]

# The record paths below unroll the four signal dimensions by hand.
assert NUM_SIGNALS == 4

#: Bound on the JSON -> CompiledTree memo (structures are small — tens
#: of floats per leaf — but worker processes are long-lived).
_JSON_CACHE_MAX = 256

_JSON_CACHE: dict = {}


class CompiledTree:
    """A whisker tree flattened into parallel arrays (immutable)."""

    __slots__ = ("n_leaves", "root_ref", "dims", "thresholds",
                 "left", "right", "action_m", "action_b", "action_tau")

    def __init__(self, root_ref: int, dims: List[int],
                 thresholds: List[float], left: List[int],
                 right: List[int], action_m: List[float],
                 action_b: List[float], action_tau: List[float]):
        self.root_ref = root_ref
        self.dims = dims
        self.thresholds = thresholds
        self.left = left
        self.right = right
        self.action_m = action_m
        self.action_b = action_b
        self.action_tau = action_tau
        self.n_leaves = len(action_m)

    @classmethod
    def from_tree(cls, tree) -> "CompiledTree":
        """Flatten ``tree`` (a :class:`WhiskerTree`).

        Prefer :meth:`WhiskerTree.compiled`, which caches the result on
        the tree and invalidates it on mutation.
        """
        from .tree import _Leaf

        dims: List[int] = []
        thresholds: List[float] = []
        left: List[int] = []
        right: List[int] = []
        action_m: List[float] = []
        action_b: List[float] = []
        action_tau: List[float] = []

        def emit(node) -> int:
            """Flatten ``node``; returns its child reference encoding."""
            if isinstance(node, _Leaf):
                action = node.whisker.action
                leaf_index = len(action_m)
                action_m.append(action.window_multiple)
                action_b.append(action.window_increment)
                action_tau.append(action.intersend_s)
                return ~leaf_index
            index = len(dims)
            dims.append(node.dim)
            thresholds.append(node.value)
            left.append(0)       # patched below
            right.append(0)
            # Children are emitted left-first so leaves come out in the
            # same depth-first order as WhiskerTree.whiskers().
            left[index] = emit(node.left)
            right[index] = emit(node.right)
            return index

        root_ref = emit(tree._root)
        return cls(root_ref, dims, thresholds, left, right,
                   action_m, action_b, action_tau)

    def lookup(self, vector: Sequence[float]) -> int:
        """Index of the leaf whose box contains ``vector``.

        Equivalent to ``tree.whiskers().index(tree.lookup(vector))``,
        as one iterative index walk with no attribute dispatch.
        """
        node = self.root_ref
        dims = self.dims
        thresholds = self.thresholds
        left = self.left
        right = self.right
        while node >= 0:
            node = left[node] if vector[dims[node]] < thresholds[node] \
                else right[node]
        return ~node

    def new_stats(self) -> "UsageStats":
        """A zeroed flat usage accumulator sized for this tree."""
        return UsageStats(self.n_leaves)


class UsageStats:
    """Flat per-run usage accumulator for one compiled tree.

    One instance is shared by every sender driving the same rule table
    in a run, so the interleaving of their hits — and therefore the
    float addition order — matches the interpreted path, where the
    senders shared the tree's whisker objects.
    """

    __slots__ = ("counts", "sums")

    def __init__(self, n_leaves: int):
        self.counts = [0] * n_leaves
        self.sums = [0.0] * (NUM_SIGNALS * n_leaves)

    def record(self, leaf: int, signals: Sequence[float]) -> None:
        """Fold one hit of ``leaf`` in (hot callers inline this)."""
        self.counts[leaf] += 1
        base = leaf * 4
        sums = self.sums
        sums[base] += signals[0]
        sums[base + 1] += signals[1]
        sums[base + 2] += signals[2]
        sums[base + 3] += signals[3]

    def merge_into(self, tree) -> None:
        """Add the accumulated stats to ``tree``'s whiskers and reset.

        Delegates to :meth:`WhiskerTree.merge_stats` — the same fold the
        evaluator applies to worker results — so there is exactly one
        merge implementation to keep bitwise-faithful.  Resetting makes
        repeated run/merge cycles accumulate correctly (each merge folds
        only the hits since the previous one).
        """
        counts, sums = self.as_lists()
        tree.merge_stats(counts, sums)
        self.counts = [0] * len(self.counts)
        self.sums = [0.0] * len(self.sums)

    def as_lists(self) -> Tuple[List[int], List[List[float]]]:
        """(counts, per-leaf sums) in whisker order, like
        :meth:`WhiskerTree.extract_stats`."""
        sums = self.sums
        return (list(self.counts),
                [list(sums[i * 4:i * 4 + 4])
                 for i in range(len(self.counts))])


def compiled_from_json(text: str) -> CompiledTree:
    """Compile a serialized tree, memoized on the exact JSON text.

    The executors ship trees to workers as the canonical JSON produced
    by :meth:`WhiskerTree.to_json` — the same bytes the task fingerprint
    hashes — so the text itself is a fingerprint-strength cache key,
    minus the SHA-1.  Evaluating one candidate tree over an N-config x
    M-seed grid compiles it once per worker process instead of N*M
    times.
    """
    compiled = _JSON_CACHE.get(text)
    if compiled is None:
        from .tree import WhiskerTree

        compiled = CompiledTree.from_tree(WhiskerTree.from_json(text))
        if len(_JSON_CACHE) >= _JSON_CACHE_MAX:
            # Insertion-ordered dict: evict the oldest entry.
            _JSON_CACHE.pop(next(iter(_JSON_CACHE)))
        _JSON_CACHE[text] = compiled
    return compiled
