"""The congestion signals tracked by RemyCC senders.

The paper's senders maintain four signals, updated on every ACK
(section 3.3):

1. ``rec_ewma`` — EWMA of the interarrival times between ACKs, gain 1/8.
2. ``slow_rec_ewma`` — the same with gain 1/256 (long-history average).
3. ``send_ewma`` — EWMA (gain 1/8) of the intersend times between the
   sender timestamps echoed in received ACKs.
4. ``rtt_ratio`` — most recent RTT divided by the minimum RTT seen so
   far in this "on" period.

The signal-knockout study (section 3.4) retrains protocols with one
signal removed; :data:`SignalMask` encodes which signals a rule table is
allowed to condition on.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["SIGNAL_NAMES", "NUM_SIGNALS", "SIGNAL_UPPER_BOUNDS",
           "SIGNAL_LOWER_BOUNDS", "SignalMask", "ALL_SIGNALS", "Memory"]

SIGNAL_NAMES: Tuple[str, ...] = (
    "rec_ewma", "slow_rec_ewma", "send_ewma", "rtt_ratio")

NUM_SIGNALS = len(SIGNAL_NAMES)

#: Domain bounds used by the whisker tree.  EWMAs are in seconds (an
#: interarrival above 16 s means the flow is effectively dead); the RTT
#: ratio is dimensionless and clipped at 64x the minimum.
SIGNAL_LOWER_BOUNDS: Tuple[float, ...] = (0.0, 0.0, 0.0, 1.0)
SIGNAL_UPPER_BOUNDS: Tuple[float, ...] = (16.0, 16.0, 16.0, 64.0)

#: Which signals a tree may split on: a 4-tuple of bools.
SignalMask = Tuple[bool, bool, bool, bool]

ALL_SIGNALS: SignalMask = (True, True, True, True)

_FAST_GAIN = 1.0 / 8.0
_SLOW_GAIN = 1.0 / 256.0

#: Clip bounds unpacked to module-level scalars so the per-ACK hot path
#: pays no tuple indexing.  The caps are the exact float `_clip` used to
#: compute per call: strictly inside the domain so the half-open whisker
#: boxes always contain the vector.
_LO0, _LO1, _LO2, _LO3 = SIGNAL_LOWER_BOUNDS
_HI0, _HI1, _HI2, _HI3 = SIGNAL_UPPER_BOUNDS
_CAP0 = _HI0 * (1.0 - 1e-9)
_CAP1 = _HI1 * (1.0 - 1e-9)
_CAP2 = _HI2 * (1.0 - 1e-9)
_CAP3 = _HI3 * (1.0 - 1e-9)


class Memory:
    """Per-sender congestion-signal state.

    Reset at the start of each "on" period (and after a retransmission
    timeout), matching the paper's model where each on-period is a fresh
    transfer.
    """

    __slots__ = ("rec_ewma", "slow_rec_ewma", "send_ewma", "rtt_ratio",
                 "min_rtt", "_last_ack_time", "_last_echo", "_have_sample")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Forget all history (fresh on-period)."""
        self.rec_ewma = 0.0
        self.slow_rec_ewma = 0.0
        self.send_ewma = 0.0
        self.rtt_ratio = 1.0
        self.min_rtt = float("inf")
        self._last_ack_time = -1.0
        self._last_echo = -1.0
        self._have_sample = False

    def on_ack(self, now: float, echo_sent_at: float,
               rtt_sample: float) -> None:
        """Fold one arriving ACK into the four signals."""
        if self._last_ack_time >= 0.0:
            interarrival = now - self._last_ack_time
            if self._have_sample:
                self.rec_ewma += _FAST_GAIN * (interarrival - self.rec_ewma)
                self.slow_rec_ewma += _SLOW_GAIN * (
                    interarrival - self.slow_rec_ewma)
            else:
                # Seed the averages with the first observation instead of
                # decaying up from zero.
                self.rec_ewma = interarrival
                self.slow_rec_ewma = interarrival
                self._have_sample = True
        self._last_ack_time = now

        if self._last_echo >= 0.0:
            intersend = echo_sent_at - self._last_echo
            if intersend >= 0.0:
                if self.send_ewma > 0.0:
                    self.send_ewma += _FAST_GAIN * (
                        intersend - self.send_ewma)
                else:
                    self.send_ewma = intersend
        self._last_echo = echo_sent_at

        if rtt_sample > 0.0:
            if rtt_sample < self.min_rtt:
                self.min_rtt = rtt_sample
            self.rtt_ratio = rtt_sample / self.min_rtt

    def vector(self) -> Tuple[float, float, float, float]:
        """The signal vector used for whisker-tree lookup (clipped)."""
        v0 = self.rec_ewma
        v1 = self.slow_rec_ewma
        v2 = self.send_ewma
        v3 = self.rtt_ratio
        return (
            _LO0 if v0 < _LO0 else (_CAP0 if v0 >= _HI0 else v0),
            _LO1 if v1 < _LO1 else (_CAP1 if v1 >= _HI1 else v1),
            _LO2 if v2 < _LO2 else (_CAP2 if v2 >= _HI2 else v2),
            _LO3 if v3 < _LO3 else (_CAP3 if v3 >= _HI3 else v3),
        )

    def signals_into(self, out: list) -> None:
        """Write the clipped signal vector into ``out[0:4]`` in place.

        The allocation-free twin of :meth:`vector` for the compiled
        lookup path: callers reuse one scratch list per flow instead of
        building a fresh tuple on every ACK.  Values are identical to
        :meth:`vector`'s.
        """
        v0 = self.rec_ewma
        v1 = self.slow_rec_ewma
        v2 = self.send_ewma
        v3 = self.rtt_ratio
        out[0] = _LO0 if v0 < _LO0 else (_CAP0 if v0 >= _HI0 else v0)
        out[1] = _LO1 if v1 < _LO1 else (_CAP1 if v1 >= _HI1 else v1)
        out[2] = _LO2 if v2 < _LO2 else (_CAP2 if v2 >= _HI2 else v2)
        out[3] = _LO3 if v3 < _LO3 else (_CAP3 if v3 >= _HI3 else v3)


def _clip(value: float, dim: int) -> float:
    """Reference clip (kept for tests/tools; the hot paths inline it)."""
    low = SIGNAL_LOWER_BOUNDS[dim]
    high = SIGNAL_UPPER_BOUNDS[dim]
    if value < low:
        return low
    if value >= high:
        # Keep strictly inside the domain so the half-open whisker boxes
        # always contain the vector.
        return high * (1.0 - 1e-9)
    return value
