"""Application workload models.

The paper models each endpoint's application as an on/off source
(section 3.1): the sender is "on" (infinite backlog) for a duration drawn
from an exponential distribution, then "off" for another exponential
duration, repeating.  Table 6 additionally uses nearly-continuous load
("5 s ON, 10 ms OFF"), and Figure 8 uses a *deterministic* schedule
(cross-traffic on exactly from t=5 s to t=10 s) — both are covered here.

A workload drives any object exposing ``set_on(now)`` / ``set_off(now)``
(the transport's :class:`~repro.protocols.transport.FlowSender` does).
The workload also owns the "on time" accounting used as the denominator
of the paper's throughput definition (section 3.2).
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, Sequence, Tuple

from .engine import Simulator

__all__ = ["Switchable", "OnOffWorkload", "ScheduledWorkload",
           "AlwaysOnWorkload"]


class Switchable(Protocol):
    """Anything an application workload can switch on and off."""

    def set_on(self, now: float) -> None: ...

    def set_off(self, now: float) -> None: ...


class _WorkloadBase:
    """Shared on-time bookkeeping."""

    def __init__(self, sim: Simulator, sender: Switchable):
        self.sim = sim
        self.sender = sender
        self._on = False
        self._on_since = 0.0
        self._accumulated_on = 0.0

    @property
    def is_on(self) -> bool:
        return self._on

    def on_time(self, now: Optional[float] = None) -> float:
        """Total seconds spent "on" up to ``now`` (default: current time)."""
        if now is None:
            now = self.sim.now
        total = self._accumulated_on
        if self._on:
            total += now - self._on_since
        return total

    def _switch_on(self) -> None:
        if self._on:
            return
        self._on = True
        self._on_since = self.sim.now
        self.sender.set_on(self.sim.now)

    def _switch_off(self) -> None:
        if not self._on:
            return
        self._on = False
        self._accumulated_on += self.sim.now - self._on_since
        self.sender.set_off(self.sim.now)


class OnOffWorkload(_WorkloadBase):
    """Exponential on/off source (the paper's workload model).

    Parameters
    ----------
    mean_on_s, mean_off_s:
        Means of the exponential on/off durations.
    rng:
        Dedicated random stream; pass a seeded ``random.Random`` for
        reproducibility.
    start_in_equilibrium:
        If True (default), the initial state is drawn from the stationary
        distribution ``P(on) = mean_on / (mean_on + mean_off)`` so short
        simulations are not biased by everyone starting "off".
    """

    def __init__(self, sim: Simulator, sender: Switchable,
                 mean_on_s: float, mean_off_s: float,
                 rng: random.Random,
                 start_in_equilibrium: bool = True):
        super().__init__(sim, sender)
        if mean_on_s <= 0 or mean_off_s < 0:
            raise ValueError("mean_on_s must be > 0 and mean_off_s >= 0")
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rng = rng
        self._start_in_equilibrium = start_in_equilibrium

    def start(self) -> None:
        """Schedule the first transition.  Call once before ``sim.run``."""
        p_on = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        if self._start_in_equilibrium and self.rng.random() < p_on:
            self.sim.schedule(0.0, self._begin_on)
        else:
            delay = 0.0 if self.mean_off_s == 0 \
                else self.rng.expovariate(1.0 / self.mean_off_s)
            self.sim.schedule(delay, self._begin_on)

    def _begin_on(self) -> None:
        self._switch_on()
        duration = self.rng.expovariate(1.0 / self.mean_on_s)
        self.sim.schedule(duration, self._begin_off)

    def _begin_off(self) -> None:
        self._switch_off()
        if self.mean_off_s == 0:
            self.sim.schedule(0.0, self._begin_on)
            return
        duration = self.rng.expovariate(1.0 / self.mean_off_s)
        self.sim.schedule(duration, self._begin_on)


class ScheduledWorkload(_WorkloadBase):
    """Deterministic on intervals (Figure 8's contrived cross-traffic).

    ``intervals`` is a sequence of ``(start, stop)`` pairs in seconds.
    """

    def __init__(self, sim: Simulator, sender: Switchable,
                 intervals: Sequence[Tuple[float, float]]):
        super().__init__(sim, sender)
        cleaned: List[Tuple[float, float]] = []
        last_stop = -1.0
        for start, stop in intervals:
            if stop <= start:
                raise ValueError(f"empty interval ({start}, {stop})")
            if start < last_stop:
                raise ValueError("intervals must be sorted and disjoint")
            cleaned.append((start, stop))
            last_stop = stop
        self.intervals = tuple(cleaned)

    def start(self) -> None:
        for start, stop in self.intervals:
            self.sim.schedule_at(start, self._switch_on)
            self.sim.schedule_at(stop, self._switch_off)


class AlwaysOnWorkload(_WorkloadBase):
    """A source with permanent backlog (long-running bulk transfer)."""

    def start(self) -> None:
        self.sim.schedule(0.0, self._switch_on)
