"""Discrete-time fluid-model simulation backend (``backend="fluid"``).

The packet engine (:mod:`repro.sim.engine` + :mod:`repro.protocols`) is
the reproduction's source of truth: it simulates every packet, ACK and
queue event exactly.  This module trades that exactness for throughput:
it advances per-flow congestion windows and per-queue occupancy in fixed
time steps of ``dt`` seconds, numpy-vectorized across senders *and*
seeds — one array program evaluates a whole seed batch, at sender
counts (hundreds to thousands) the event-driven engine cannot touch.

What is modeled
---------------
* the *exact* on/off application schedule of the packet engine: the
  same per-flow ``random.Random(seed * 1_000_003 + i * 7_919 + 17)``
  streams and draw order as :class:`~repro.sim.workload.OnOffWorkload`,
  so both backends see identical workloads and on-time denominators;
* ack-clocked sending: each "on" flow injects
  ``min(cwnd / rtt_est, 1 / tau)`` packets per second, where
  ``rtt_est`` is the unloaded RTT plus the current queueing delay along
  the flow's path;
* FIFO bottleneck queues with per-flow occupancy, proportional-share
  service and drop-tail overflow; CoDel as an above-target timer that
  emits loss signals; sfqCoDel as per-flow buckets served by
  water-filling with per-bucket CoDel timers;
* propagation as per-flow lag lines: departures reach the receiver (and
  the sender's ACK clock) the correct number of steps later, so slow
  start ramps on the real RTT and in-flight data drains after "off";
* fluid ports of every controller family: NewReno/AIMD slow start and
  congestion avoidance with a one-RTT loss refractory standing in for
  fast recovery, Cubic's cubic-in-time target with a round-based
  HyStart analogue, Vegas's per-RTT ``diff`` rule, DCTCP's
  marked-fraction EWMA with per-RTT proportional cuts (driven by a
  threshold-marking indicator on droptail queues — ECN on CoDel
  variants stays packet-only, as does PCC entirely), and the RemyCC
  whisker controller — EWMA memory signals computed from rates and
  ``dt``, window updates compounded per-ACK in closed form, lookups
  batched through the flat :class:`~repro.remy.compiled.CompiledTree`
  arrays.

What is **not** modeled: retransmission timeouts and RTO backoff,
sub-RTT burstiness (dynamics are smoothed over ``dt``), and per-whisker
usage recording (fluid tasks return empty usage stats).  The packet
engine stays authoritative; ``docs/PERFORMANCE.md`` documents the
committed fluid-vs-packet tolerance bands and when the two backends are
not comparable.

Determinism
-----------
Every update is elementwise over ``(seeds, flows)`` arrays or a
reduction along the flow axis of one seed's row, so a seed evaluated
alone is bitwise-identical to the same seed inside a batch — the
executors' determinism contract extends to seed-batched fluid runs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.results import FlowStats, RunResult
from ..core.scenario import NetworkConfig

__all__ = ["simulate_fluid", "fluid_dt", "fluid_refusal", "FLUID_SCHEMES"]

_PKT = 1500.0              # on-the-wire data packet bytes
_PKT_BITS = _PKT * 8.0

# RemyCC memory constants (mirrors repro.remy.memory; imported lazily
# in _check_constants to avoid import cycles at module load).
_FAST_GAIN = 1.0 / 8.0
_SLOW_GAIN = 1.0 / 256.0
_SIG_HI = (16.0, 16.0, 16.0, 64.0)
_SIG_LO = (0.0, 0.0, 0.0, 1.0)
_CAP = tuple(hi * (1.0 - 1e-9) for hi in _SIG_HI)
_REMY_MAX_WINDOW = 20_000.0
_MAX_WINDOW = 1_000_000.0

# Cubic constants (RFC 8312, mirrors repro.protocols.cubic).
_CUBIC_C = 0.4
_CUBIC_BETA = 0.7

# CoDel constants (RFC 8289, mirrors repro.sim.codel).
_CODEL_TARGET = 0.005
_CODEL_INTERVAL = 0.100

#: Scheme families the fluid backend can port.  Rule-table kinds (any
#: kind with an attached tree) are always supported.
FLUID_SCHEMES = ("newreno", "aimd", "cubic", "vegas", "dctcp")

# Scheme family codes.
_F_REMY, _F_RENO, _F_CUBIC, _F_VEGAS, _F_DCTCP = 0, 1, 2, 3, 4

# DCTCP constants (Alizadeh et al., mirrors repro.protocols.dctcp).
_DCTCP_GAIN = 1.0 / 16.0


def fluid_dt(config: NetworkConfig) -> float:
    """The fluid time step for ``config``: ~30 steps per unloaded RTT,
    clamped to [0.1 ms, 4 ms].  Depends only on the config, so the same
    task always integrates on the same grid."""
    min_rtt = min(_base_delays(config)[1])
    return min(max(min_rtt / 30.0, 1e-4), 4e-3)


# ----------------------------------------------------------------------
# Topology description
# ----------------------------------------------------------------------

def _base_delays(config: NetworkConfig):
    """Per-flow unloaded delays and per-link path structure.

    Returns ``(base_oneway, base_rtt, flow_links, caps, props,
    rev_prop)`` where ``flow_links[f]`` lists bottleneck link indices on
    flow ``f``'s data path in hop order.  Mirrors the packet topology:
    access links are infinitely fast, all propagation sits on the
    bottleneck hops, and the ACK path never queues (40-byte ACKs on
    infinite-rate links serialize in zero time).
    """
    n = config.num_senders
    if config.topology == "dumbbell":
        caps = [config.link_speed_bps(0)]
        one_way = config.rtt_ms / 2e3
        props = [one_way]
        flow_links = [[0] for _ in range(n)]
        rev_prop = [one_way] * n
    else:  # parking_lot: flow 0 crosses both links, flows 1/2 one each
        caps = [config.link_speed_bps(0), config.link_speed_bps(1)]
        d = config.rtt_ms / 2e3
        props = [d, d]
        flow_links = [[0, 1], [0], [1]]
        rev_prop = [2.0 * d, d, d]
    tx = [_PKT_BITS / c for c in caps]
    base_oneway = [sum(props[l] + tx[l] for l in flow_links[f])
                   for f in range(n)]
    base_rtt = [base_oneway[f] + rev_prop[f] for f in range(n)]
    return base_oneway, base_rtt, flow_links, caps, props, rev_prop


# ----------------------------------------------------------------------
# Workload schedules (exact replication of OnOffWorkload's RNG draws)
# ----------------------------------------------------------------------

def _flow_schedule(seed: int, flow: int, mean_on: float, mean_off: float,
                   duration: float) -> Tuple[List[float], float]:
    """Toggle times (alternating on, off, on, ...) and total on-time.

    Replays :class:`~repro.sim.workload.OnOffWorkload` exactly: the same
    dedicated ``random.Random`` stream and the same draw order, with
    draws stopping once the next transition falls beyond ``duration`` —
    events past the horizon never fire in the packet engine, so their
    draws never happen there either.
    """
    if mean_on == 0 and mean_off == 0:
        # The always-on degenerate: permanently on, no draws at all
        # (matching AlwaysOnWorkload, which never touches an RNG).
        return [0.0], duration
    rng = random.Random(seed * 1_000_003 + flow * 7_919 + 17)
    p_on = mean_on / (mean_on + mean_off)
    if rng.random() < p_on:
        t = 0.0
    else:
        t = 0.0 if mean_off == 0 else rng.expovariate(1.0 / mean_off)
    toggles: List[float] = []
    while t <= duration:
        toggles.append(t)                       # ON at t
        t += rng.expovariate(1.0 / mean_on)
        if t > duration:
            break
        toggles.append(t)                       # OFF at t
        if mean_off > 0:
            t += rng.expovariate(1.0 / mean_off)
    on_time = 0.0
    for j in range(0, len(toggles), 2):
        start = toggles[j]
        stop = toggles[j + 1] if j + 1 < len(toggles) else duration
        on_time += min(stop, duration) - start
    return toggles, on_time


# ----------------------------------------------------------------------
# Compiled-tree batch lookup
# ----------------------------------------------------------------------

class _NumpyTree:
    """A :class:`~repro.remy.compiled.CompiledTree` as numpy arrays,
    plus the iterative masked descent that looks up many signal vectors
    at once."""

    def __init__(self, compiled):
        self.root_ref = compiled.root_ref
        self.dims = np.asarray(compiled.dims, dtype=np.int64)
        self.thresholds = np.asarray(compiled.thresholds, dtype=np.float64)
        self.left = np.asarray(compiled.left, dtype=np.int64)
        self.right = np.asarray(compiled.right, dtype=np.int64)
        self.m = np.asarray(compiled.action_m, dtype=np.float64)
        self.b = np.asarray(compiled.action_b, dtype=np.float64)
        self.tau = np.asarray(compiled.action_tau, dtype=np.float64)

    def lookup(self, signals: np.ndarray) -> np.ndarray:
        """Leaf indices for a ``(M, 4)`` batch of clipped signals."""
        node = np.full(signals.shape[0], self.root_ref, dtype=np.int64)
        if self.dims.size == 0:          # single-leaf tree
            return np.zeros(signals.shape[0], dtype=np.int64)
        while True:
            internal = node >= 0
            if not internal.any():
                break
            idx = node[internal]
            sig = signals[internal, self.dims[idx]]
            node[internal] = np.where(sig < self.thresholds[idx],
                                      self.left[idx], self.right[idx])
        return ~node


# ----------------------------------------------------------------------
# The fluid integrator
# ----------------------------------------------------------------------

def fluid_refusal(config: NetworkConfig,
                  tree_kinds: Sequence[str] = ()) -> Optional[str]:
    """Why the fluid backend cannot run this scenario, or ``None``.

    This is the single source of truth for fluid support, callable
    *before* any simulation work: ``SimTask.build`` and the CLIs use it
    to fail fast (with the offending kind or dynamics feature named)
    instead of erroring mid-batch after packet tasks already ran.
    ``tree_kinds`` lists the sender kinds that will have rule tables
    attached (those are always portable).
    """
    tree_kinds = set(tree_kinds)
    for kind in config.sender_kinds:
        if kind not in tree_kinds and kind not in FLUID_SCHEMES:
            return (f"scheme {kind!r} is packet-only (no fluid port); "
                    f"fluid-portable: rule-table kinds plus "
                    f"{FLUID_SCHEMES} — see docs/PERFORMANCE.md for "
                    f"the fluid coverage list")
    if config.ecn_threshold is not None and config.queue != "droptail":
        return (f"ECN marking on queue {config.queue!r} is packet-only "
                f"(the fluid model ports threshold marking on droptail "
                f"only — see docs/PERFORMANCE.md)")
    if config.dynamics is not None:
        reason = config.dynamics.packet_only_reason()
        if reason is not None:
            return (f"dynamics feature {reason} is packet-only "
                    f"(no fluid analogue); rate traces and outages "
                    f"are supported")
    return None


def _scheme_families(config: NetworkConfig, trees: Dict[str, object]):
    """Map sender kinds to fluid families; returns (family[N], groups)
    where groups maps a tree to its flow indices."""
    family = np.empty(config.num_senders, dtype=np.int64)
    tree_groups: Dict[int, Tuple[object, List[int]]] = {}
    for i, kind in enumerate(config.sender_kinds):
        if kind in trees:
            family[i] = _F_REMY
            tree = trees[kind]
            entry = tree_groups.setdefault(id(tree), (tree, []))
            entry[1].append(i)
        elif kind in ("newreno", "aimd"):
            family[i] = _F_RENO
        elif kind == "cubic":
            family[i] = _F_CUBIC
        elif kind == "vegas":
            family[i] = _F_VEGAS
        elif kind == "dctcp":
            family[i] = _F_DCTCP
        else:
            raise ValueError(
                f"fluid backend cannot run scheme {kind!r} "
                f"(packet-only); supported: rule-table kinds plus "
                f"{FLUID_SCHEMES}")
    return family, list(tree_groups.values())


def simulate_fluid(config: NetworkConfig,
                   trees: Optional[Dict[str, object]] = None,
                   seeds: Sequence[int] = (0,),
                   duration_s: float = 10.0) -> List[RunResult]:
    """Run ``config`` on the fluid backend for every seed in ``seeds``.

    One array program advances the whole ``(seed, flow)`` grid; the
    returned :class:`~repro.core.results.RunResult` list is aligned with
    ``seeds`` and bitwise-independent of how seeds are batched.
    """
    trees = trees or {}
    refusal = fluid_refusal(config, tree_kinds=tuple(trees))
    if refusal is not None:
        raise ValueError(f"fluid backend cannot run this scenario: "
                         f"{refusal}")
    S = len(seeds)
    N = config.num_senders
    base_oneway, base_rtt_l, flow_links, caps_l, props, rev_prop = \
        _base_delays(config)
    family, tree_groups = _scheme_families(config, trees)
    np_trees = [( _NumpyTree(tree.compiled()), np.asarray(flows, dtype=np.int64))
                for tree, flows in tree_groups]

    dt = fluid_dt(config)
    n_steps = max(int(round(duration_s / dt)), 1)
    dt = duration_s / n_steps

    L = len(caps_l)
    caps = np.asarray(caps_l, dtype=np.float64)              # bytes? no: bps
    caps_Bps = caps / 8.0
    buffers = np.asarray(
        [config.buffer_packets(l) * _PKT if math.isfinite(
            config.buffer_packets(l)) else math.inf for l in range(L)])
    H = max(len(links) for links in flow_links)
    hop_link = np.full((N, H), -1, dtype=np.int64)
    for f, links in enumerate(flow_links):
        hop_link[f, :len(links)] = links
    last_hop = np.asarray([len(links) - 1 for links in flow_links],
                          dtype=np.int64)
    base_rtt = np.asarray(base_rtt_l, dtype=np.float64)
    base_ow = np.asarray(base_oneway, dtype=np.float64)

    # Per-link member (flow, hop) index arrays.
    members: List[Tuple[np.ndarray, np.ndarray]] = []
    for l in range(L):
        fidx = [f for f in range(N) for h in range(H)
                if hop_link[f, h] == l]
        hidx = [h for f in range(N) for h in range(H)
                if hop_link[f, h] == l]
        members.append((np.asarray(fidx, dtype=np.int64),
                        np.asarray(hidx, dtype=np.int64)))
    is_sfq = config.queue == "sfq_codel"
    is_codel = config.queue == "codel"

    # Lag lines (in steps).  Delivery and ACK lags are floored at one
    # step: the step loop reads them *before* writing the current step,
    # so a lag of at least 1 always reads a completed past step.
    lag_hop = np.zeros((N, H), dtype=np.int64)
    for f in range(N):
        for h, l in enumerate(flow_links[f]):
            lag_hop[f, h] = int(round(props[l] / dt))
    lag_del = np.asarray(
        [max(int(round(props[flow_links[f][-1]] / dt)), 1)
         for f in range(N)], dtype=np.int64)
    lag_ack = np.asarray(
        [max(int(round((props[flow_links[f][-1]] + rev_prop[f]) / dt)),
             1) for f in range(N)], dtype=np.int64)
    K = int(max(lag_hop.max(), lag_del.max(), lag_ack.max())) + 1

    # Workload schedules (exact RNG replay, per (seed, flow)).
    max_tog = 1
    toggles_py: List[List[List[float]]] = []
    on_time = np.zeros((S, N))
    for si, seed in enumerate(seeds):
        row = []
        for f in range(N):
            tog, ot = _flow_schedule(seed, f, config.mean_on_s,
                                     config.mean_off_s, duration_s)
            on_time[si, f] = ot
            row.append(tog)
            max_tog = max(max_tog, len(tog) + 1)
        toggles_py.append(row)
    toggles = np.full((S, N, max_tog), np.inf)
    for si in range(S):
        for f in range(N):
            tog = toggles_py[si][f]
            toggles[si, f, :len(tog)] = tog
    ptr = np.zeros((S, N), dtype=np.int64)

    # Controller state.
    is_remy = family == _F_REMY
    is_reno = family == _F_RENO
    is_cubic = family == _F_CUBIC
    is_vegas = family == _F_VEGAS
    is_dctcp = family == _F_DCTCP
    # DCTCP grows and reacts to loss exactly like Reno; only its mark
    # reaction differs.  With no dctcp flows ``is_renoish`` equals
    # ``is_reno`` elementwise, so every pre-ECN trajectory stays
    # bitwise identical.
    is_renoish = is_reno | is_dctcp
    shp = (S, N)
    on = np.zeros(shp, dtype=bool)
    started = np.zeros(shp, dtype=bool)
    inflight = np.zeros(shp)                     # packets sent, un-ACKed
    w = np.where(is_remy, 1.0, 2.0) * np.ones(shp)
    ssthresh = np.full(shp, np.inf)
    pace_tau = np.zeros(shp)
    recover_until = np.full(shp, -np.inf)
    # RemyCC memory.
    rec_ewma = np.zeros(shp)
    slow_ewma = np.zeros(shp)
    send_ewma = np.zeros(shp)
    have_rec = np.zeros(shp, dtype=bool)
    min_rtt = np.full(shp, np.inf)
    rtt_ratio = np.ones(shp)
    # Cubic.
    cb_epoch = np.full(shp, np.nan)
    cb_wmax = np.zeros(shp)
    cb_k = np.zeros(shp)
    cb_wtcp = np.zeros(shp)
    cb_round_end = np.zeros(shp)
    cb_round_min = np.full(shp, np.inf)
    cb_prev_min = np.full(shp, np.inf)
    # Vegas.
    vg_base = np.full(shp, np.inf)
    vg_round_end = np.zeros(shp)
    vg_round_min = np.full(shp, np.inf)
    vg_in_ss = np.ones(shp, dtype=bool)
    vg_grow = np.ones(shp, dtype=bool)
    # DCTCP: EWMA of the marked-ACK fraction, cuts once per RTT round
    # (the Alizadeh fluid model's alpha, driven by the lagged marking
    # indicator below).
    dc_alpha = np.zeros(shp)
    dc_round_end = np.full(shp, -np.inf)
    dc_acked = np.zeros(shp)
    dc_marked = np.zeros(shp)

    # Queues and lag rings.
    q = np.zeros((S, N, H))                      # bytes per (flow, hop)
    dep_hist = np.zeros((S, N, H, K))            # departure rate, B/s
    sent_hist = np.zeros((S, N, K))              # send rate, pkts/s
    qd_hist = np.zeros((S, N, K))                # path queueing delay, s
    loss_hist = np.zeros((S, N, K), dtype=bool)  # loss signals
    drop_hist = np.zeros((S, N, K))              # dropped pkts per step
    # ECN: per-step CE-marking indicator, read on the ACK lag like
    # ``loss_hist`` (allocated only when ECN is on, so non-ECN runs
    # execute the exact pre-ECN program).
    ecn_thresh_bytes = (config.ecn_threshold * _PKT
                        if config.ecn_threshold is not None else None)
    mark_hist = (np.zeros((S, N, K), dtype=bool)
                 if ecn_thresh_bytes is not None else None)
    codel_above = np.zeros((S, L))               # FIFO-CoDel timers
    codel_above_q = np.zeros((S, N, H))          # sfq per-bucket timers

    # Accumulators.  FIFO links get *exact* fluid latency: per-link
    # cumulative accepted-arrival and departure curves, inverted each
    # step (bytes departing now waited since the matching arrival), so
    # delays are means over *delivered* bytes — matching the packet
    # engine, which never counts packets still queued at run end.  sfq
    # buckets use the arrival-time fair-share approximation instead.
    delivered_bytes = np.zeros(shp)
    wait_sum = np.zeros((S, N, H))               # pkt-weighted waits, s
    wt_pkts = np.zeros((S, N, H))                # their packet weights
    cum_arr = np.zeros((S, L, n_steps + 1))      # accepted bytes curve
    cum_dep = np.zeros((S, L, n_steps + 1))      # departed bytes curve
    tau_idx = np.zeros((S, L), dtype=np.int64)   # FIFO inversion ptr
    s_idx = np.arange(S)
    # FIFO links also serve with *exact* FIFO flow composition:
    # departures at t carry the per-flow mix of the arrivals they
    # matched, read off per-flow arrival curves (tail drop falls on
    # arriving fluid, so the curves are append-only).  This matters
    # when one flow's burst should starve another flow's deliveries,
    # as it does behind a deep backlog; proportional sharing would let
    # the starved flow keep draining.  sfq links keep fair-share
    # service, which is their actual discipline.
    cum_arr_f = {} if is_sfq else {
        l: np.zeros((S, len(members[l][0]), n_steps + 1))
        for l in range(L)}
    prev_v = {l: np.zeros((S, len(members[l][0])))
              for l in cum_arr_f}
    tau_hi = np.zeros((S, L), dtype=np.int64)    # composition ptr
    sent_pkts = np.zeros(shp)
    drop_bytes = np.zeros((S, L))
    link_out_bytes = np.zeros((S, L))

    arange_n = np.arange(N)
    inv_caps_Bps = 1.0 / caps_Bps

    # Link dynamics: piecewise-constant per-step capacity arrays.  A
    # static config takes ``caps_step is None`` and the loop below uses
    # the exact same scalars (and therefore the exact same floats) as
    # before dynamics existed — the golden fluid digests pin this.
    # During a zero-capacity (outage) step the queueing-delay estimate
    # uses the *nominal* capacity (the backlog drains at that rate once
    # service resumes); a true infinite-sojourn estimate would poison
    # every downstream EWMA for no modeling gain.
    caps_step = None
    inv_caps_step = None
    drop_down = [False] * L
    if config.dynamics is not None and not config.dynamics.is_empty:
        dyn = config.dynamics
        if any(dyn.schedule_for(l).varies_rate for l in range(L)):
            caps_step = np.tile(caps_Bps, (n_steps, 1))
            for l in range(L):
                schedule = dyn.schedule_for(l)
                drop_down[l] = schedule.outage_policy == "drop"
                changes = schedule.timeline(caps_l[l])
                for at, rate_bps in changes:
                    start = min(int(math.ceil(at / dt)), n_steps)
                    caps_step[start:, l] = rate_bps / 8.0
            inv_caps_step = np.where(caps_step > 0.0,
                                     np.divide(1.0, caps_step,
                                               where=caps_step > 0.0,
                                               out=np.zeros_like(caps_step)),
                                     inv_caps_Bps[None, :])

    for step in range(n_steps):
        t = step * dt
        if caps_step is None:
            caps_now = caps_Bps
            inv_now = inv_caps_Bps
        else:
            caps_now = caps_step[step]
            inv_now = inv_caps_step[step]
        # -- 1. workload toggles due at or before t --------------------
        while True:
            nxt = np.take_along_axis(toggles, ptr[..., None],
                                     axis=2)[..., 0]
            due = nxt <= t
            if not due.any():
                break
            turning_on = due & (ptr % 2 == 0)
            on = (on | turning_on) & ~(due & (ptr % 2 == 1))
            r_on = turning_on & is_remy
            if r_on.any():          # RemyCC: fresh transfer each "on"
                w = np.where(r_on, 1.0, w)
                pace_tau = np.where(r_on, 0.0, pace_tau)
                rec_ewma = np.where(r_on, 0.0, rec_ewma)
                slow_ewma = np.where(r_on, 0.0, slow_ewma)
                send_ewma = np.where(r_on, 0.0, send_ewma)
                have_rec &= ~r_on
                min_rtt = np.where(r_on, np.inf, min_rtt)
                rtt_ratio = np.where(r_on, 1.0, rtt_ratio)
            f_on = turning_on & ~is_remy & ~started
            if f_on.any():          # TCPs persist across on/off cycles
                w = np.where(f_on, 2.0, w)
                ssthresh = np.where(f_on, np.inf, ssthresh)
            started |= turning_on
            ptr += due

        # -- 2. current path queueing delay (from last step's queues) --
        qlink = np.empty((S, L))
        path_qd = np.zeros(shp)
        for l, (fidx, hidx) in enumerate(members):
            q_mem = q[:, fidx, hidx]
            qlink[:, l] = q_mem.sum(axis=1)
            if is_sfq:
                n_act = np.maximum((q_mem > 0).sum(axis=1), 1)
                path_qd[:, fidx] += q_mem * (n_act[:, None]
                                             * inv_now[l])
            else:
                path_qd[:, fidx] += (qlink[:, l]
                                     * inv_now[l])[:, None]
        rtt_est = base_rtt[None, :] + path_qd

        # -- 3. delivery and the ACK clock (lagged streams) ------------
        # All reads are from steps already written; windows react to
        # this step's ACK arrivals before this step's sends, exactly as
        # the event-driven sender transmits from inside the ACK handler.
        pos_now = step % K
        pos_del = (step - lag_del) % K
        dep_del = dep_hist[:, arange_n, last_hop, pos_del]
        delivered_bytes += dep_del * dt
        pos_ack = (step - lag_ack) % K
        acks = dep_hist[:, arange_n, last_hop, pos_ack] * (dt / _PKT)
        inflight = np.maximum(inflight - acks, 0.0)
        # Dropped packets never produce ACKs; release them from the
        # window on the same lagged clock the packet transport's loss
        # detection runs on.
        inflight = np.maximum(
            inflight - drop_hist[:, arange_n, pos_ack], 0.0)
        loss = loss_hist[:, arange_n, pos_ack]
        sent_lag = sent_hist[:, arange_n, pos_ack]
        rtt_sample = base_rtt[None, :] + qd_hist[:, arange_n, pos_ack]
        marked = (mark_hist[:, arange_n, pos_ack]
                  if mark_hist is not None else None)

        # -- 4. loss reactions (multiplicative decrease) ---------------
        lost = loss & started & (t >= recover_until)
        if lost.any():
            lr = lost & is_renoish
            ssthresh = np.where(lr, np.maximum(w * 0.5, 2.0), ssthresh)
            w = np.where(lr, ssthresh, w)
            lc = lost & is_cubic
            if lc.any():
                cb_wmax = np.where(
                    lc, np.where(w < cb_wmax,
                                 w * (1.0 + _CUBIC_BETA) / 2.0, w),
                    cb_wmax)
                w = np.where(lc, np.maximum(w * _CUBIC_BETA, 2.0), w)
                ssthresh = np.where(lc, w, ssthresh)
                cb_epoch = np.where(lc, np.nan, cb_epoch)
            lv = lost & is_vegas
            if lv.any():
                w = np.where(lv, np.maximum(w * 0.75, 2.0), w)
                vg_in_ss &= ~lv
            # RemyCC has no loss rule (dupacks feed the same table).
            recover_until = np.where(lost & ~is_remy, t + rtt_est,
                                     recover_until)

        # -- 4b. DCTCP mark reaction -----------------------------------
        # Tally marked vs total ACKs over one RTT round; at round end
        # fold the fraction into alpha (gain 1/16) and, if any ACK was
        # marked, cut once by alpha/2 — the proportional decrease that
        # distinguishes DCTCP from Reno's blind halving.
        if marked is not None and is_dctcp.any():
            d_ack = is_dctcp & started & (acks > 0.0)
            dc_acked = np.where(d_ack, dc_acked + acks, dc_acked)
            dc_marked = np.where(d_ack & marked, dc_marked + acks,
                                 dc_marked)
            due = d_ack & (t >= dc_round_end)
            if due.any():
                frac = np.divide(dc_marked, dc_acked,
                                 where=dc_acked > 0.0,
                                 out=np.zeros_like(dc_marked))
                dc_alpha = np.where(
                    due, dc_alpha + _DCTCP_GAIN * (frac - dc_alpha),
                    dc_alpha)
                cut = due & (frac > 0.0)
                w = np.where(cut,
                             np.maximum(w * (1.0 - dc_alpha / 2.0),
                                        2.0), w)
                ssthresh = np.where(cut, np.maximum(w, 2.0), ssthresh)
                dc_acked = np.where(due, 0.0, dc_acked)
                dc_marked = np.where(due, 0.0, dc_marked)
                dc_round_end = np.where(due, t + rtt_sample,
                                        dc_round_end)

        # -- 5. window growth ------------------------------------------
        acked = started & (acks > 0.0)
        grow = acked & (t >= recover_until)
        # NewReno / AIMD (DCTCP included: Reno-style growth).
        g = grow & is_renoish
        in_ss = g & (w < ssthresh)
        w = np.where(in_ss, w + acks, w)
        in_ca = g & ~in_ss
        w = np.where(in_ca, w + acks / w, w)
        # Cubic.
        g = grow & is_cubic
        if g.any():
            new_round = g & (t >= cb_round_end)
            cb_prev_min = np.where(new_round, cb_round_min, cb_prev_min)
            cb_round_min = np.where(new_round, np.inf, cb_round_min)
            cb_round_end = np.where(new_round, t + rtt_sample,
                                    cb_round_end)
            cb_round_min = np.where(g, np.minimum(cb_round_min,
                                                  rtt_sample),
                                    cb_round_min)
            ss = g & (w < ssthresh)
            eta = np.minimum(np.maximum(cb_prev_min / 8.0, 0.004), 0.016)
            hexit = ss & np.isfinite(cb_prev_min) \
                & (cb_round_min >= cb_prev_min + eta)
            ssthresh = np.where(hexit, w, ssthresh)
            ss &= ~hexit
            w = np.where(ss, w + acks, w)
            ca = g & ~ss
            init = ca & np.isnan(cb_epoch)
            if init.any():
                cb_epoch = np.where(init, t, cb_epoch)
                cb_wmax = np.where(init, np.maximum(cb_wmax, w), cb_wmax)
                cb_k = np.where(
                    init, np.cbrt(cb_wmax * (1.0 - _CUBIC_BETA)
                                  / _CUBIC_C), cb_k)
                cb_wtcp = np.where(init, w, cb_wtcp)
            te = t - cb_epoch
            target = _CUBIC_C * (te - cb_k) ** 3 + cb_wmax
            cb_wtcp = np.where(
                ca, cb_wtcp + (3.0 * (1.0 - _CUBIC_BETA)
                               / (1.0 + _CUBIC_BETA)) * acks / w,
                cb_wtcp)
            target = np.maximum(target, cb_wtcp)
            delta = np.where(target > w,
                             (target - w) * np.minimum(acks / w, 1.0),
                             0.01 * acks / w)
            w = np.where(ca, w + delta, w)
        # Vegas (per-RTT rule; rounds timed on the ACK clock).
        g = acked & is_vegas
        if g.any():
            vg_base = np.where(g, np.minimum(vg_base, rtt_sample),
                               vg_base)
            vg_round_min = np.where(g, np.minimum(vg_round_min,
                                                  rtt_sample),
                                    vg_round_min)
            due = g & (t >= vg_round_end) & (t >= recover_until)
            if due.any():
                rtt_r = np.where(np.isfinite(vg_round_min),
                                 vg_round_min, vg_base)
                diff = w * (1.0 - vg_base / np.maximum(rtt_r, 1e-9))
                ss = due & vg_in_ss
                exit_ss = ss & (diff > 1.0)
                w = np.where(exit_ss, w - diff, w)
                vg_in_ss &= ~exit_ss
                dbl = ss & ~exit_ss & vg_grow
                w = np.where(dbl, w * 2.0, w)
                vg_grow = np.where(ss, ~vg_grow, vg_grow)
                ca = due & ~ss
                w = np.where(ca & (diff < 1.0), w + 1.0, w)
                w = np.where(ca & (diff > 3.0), w - 1.0, w)
                w = np.where(due, np.maximum(w, 2.0), w)
                vg_round_end = np.where(due, t + rtt_r, vg_round_end)
                vg_round_min = np.where(due, np.inf, vg_round_min)
        w = np.clip(w, 1.0, _MAX_WINDOW)

        # -- 6. RemyCC: memory signals, batched lookup, action ---------
        m_ack = acked & is_remy
        if m_ack.any():
            x = np.divide(dt, acks, where=m_ack,
                          out=np.zeros_like(acks))
            # ACK interarrival EWMAs, per-ACK folds compounded:
            # n identical folds of gain g move the EWMA by 1-(1-g)^n.
            seeded = m_ack & have_rec
            first = m_ack & ~have_rec
            fold_f = 1.0 - np.power(1.0 - _FAST_GAIN, acks)
            fold_s = 1.0 - np.power(1.0 - _SLOW_GAIN, acks)
            rec_ewma = np.where(seeded,
                                rec_ewma + fold_f * (x - rec_ewma),
                                np.where(first, x, rec_ewma))
            slow_ewma = np.where(seeded,
                                 slow_ewma + fold_s * (x - slow_ewma),
                                 np.where(first, x, slow_ewma))
            have_rec |= m_ack
            # Intersend EWMA from the echoed send timestamps: the ACKed
            # packets were sent ~1 RTT ago at the lagged send rate.
            xs = np.divide(1.0, sent_lag, where=sent_lag > 0.0,
                           out=np.zeros_like(sent_lag))
            m_send = m_ack & (xs > 0.0)
            send_ewma = np.where(
                m_send & (send_ewma > 0.0),
                send_ewma + fold_f * (xs - send_ewma),
                np.where(m_send, xs, send_ewma))
            min_rtt = np.where(m_ack, np.minimum(min_rtt, rtt_sample),
                               min_rtt)
            rtt_ratio = np.where(m_ack, rtt_sample
                                 / np.where(np.isfinite(min_rtt),
                                            min_rtt, 1.0), rtt_ratio)
            for np_tree, flows in np_trees:
                sub = m_ack[:, flows]             # (S, F)
                if not sub.any():
                    continue
                si, fi = np.nonzero(sub)
                fcols = flows[fi]
                sig = np.stack([
                    np.clip(rec_ewma[si, fcols], _SIG_LO[0], _CAP[0]),
                    np.clip(slow_ewma[si, fcols], _SIG_LO[1], _CAP[1]),
                    np.clip(send_ewma[si, fcols], _SIG_LO[2], _CAP[2]),
                    np.clip(rtt_ratio[si, fcols], _SIG_LO[3], _CAP[3]),
                ], axis=1)
                leaf = np_tree.lookup(sig)
                m_l = np_tree.m[leaf]
                b_l = np_tree.b[leaf]
                n_l = acks[si, fcols]
                mm = np.power(m_l, n_l)
                w_sel = w[si, fcols]
                lin = np.abs(m_l - 1.0) < 1e-12
                w_new = np.where(
                    lin, w_sel + b_l * n_l,
                    mm * w_sel + b_l * (1.0 - mm)
                    / np.where(lin, 1.0, 1.0 - m_l))
                w[si, fcols] = np.clip(w_new, 1.0, _REMY_MAX_WINDOW)
                pace_tau[si, fcols] = np_tree.tau[leaf]

        # -- 7. send rates ---------------------------------------------
        pace_cap = np.where(pace_tau > 0.0, 1.0 /
                            np.maximum(pace_tau, 1e-12), np.inf)
        # Window-limited sending, like the packet transport: whenever
        # fewer than ``w`` packets are in flight, the deficit goes out
        # immediately (subject to the pacing cap), so window jumps burst
        # exactly as the event-driven sender does; in steady state the
        # deficit refills at the ACK rate and sending self-clocks.
        deficit = np.maximum(w - inflight, 0.0)
        rate = np.where(on, np.minimum(deficit / dt, pace_cap), 0.0)
        sent_pkts += rate * dt
        inflight += rate * dt
        sent_hist[:, :, pos_now] = rate
        qd_hist[:, :, pos_now] = path_qd

        # -- 8. queues: arrivals, service, overflow, CoDel -------------
        loss_hist[:, :, pos_now] = False
        drop_hist[:, :, pos_now] = 0.0
        if mark_hist is not None:
            mark_hist[:, :, pos_now] = False
        inflow0 = rate * _PKT                     # bytes/s entering hop 0
        for l, (fidx, hidx) in enumerate(members):
            h_prev = np.maximum(hidx - 1, 0)
            pos_prev = (step - lag_hop[fidx, h_prev]) % K
            upstream = dep_hist[:, fidx, h_prev, pos_prev]
            inflow = np.where(hidx == 0, inflow0[:, fidx], upstream)
            q_mem = q[:, fidx, hidx]
            arr = inflow * dt
            if drop_down[l] and caps_now[l] == 0.0:
                # Blackout with a drop policy: arriving fluid is
                # discarded (queued bytes stay for after the outage).
                drop_bytes[:, l] += arr.sum(axis=1)
                loss_hist[:, fidx, pos_now] |= arr > 1e-9
                drop_hist[:, fidx, pos_now] += arr / _PKT
                arr = np.zeros_like(arr)
            avail = q_mem + arr
            tot = avail.sum(axis=1)
            cap_dt = caps_now[l] * dt
            if is_sfq:
                out_mem = _waterfill(avail, cap_dt)
                rem = np.maximum(avail - out_mem, 0.0)
                n_act = np.maximum((q_mem > 0).sum(axis=1), 1)
                sojourn = q_mem * (n_act[:, None] * inv_now[l])
                above = codel_above_q[:, fidx, hidx]
                above = np.where(sojourn > _CODEL_TARGET,
                                 above + dt, 0.0)
                codel_above_q[:, fidx, hidx] = above
                loss_hist[:, fidx, pos_now] |= \
                    (above >= _CODEL_INTERVAL) & (avail > 0.0)
                # Latency: at arrival, a bucket's bytes wait out their
                # own backlog at the fair-share rate.
                n_arr = np.maximum((avail > 0.0).sum(axis=1), 1)
                wait = (q_mem + 0.5 * arr) \
                    * (n_arr[:, None] * inv_now[l])
                wpk = arr / _PKT
            else:
                # Tail drop at arrival, like the packet droptail queue:
                # overflow falls on this step's *arriving* fluid (never
                # on bytes already queued), so the accepted-arrival
                # curves below are append-only.
                out_tot = np.minimum(tot, cap_dt)
                acc = arr
                if math.isfinite(buffers[l]):
                    over = np.maximum(tot - out_tot - buffers[l], 0.0)
                    arr_tot = arr.sum(axis=1)
                    dropr = np.divide(over, arr_tot,
                                      where=arr_tot > 0.0,
                                      out=np.zeros_like(arr_tot))
                    dropped = arr * dropr[:, None]
                    acc = arr - dropped
                    drop_bytes[:, l] += over
                    loss_hist[:, fidx, pos_now] |= dropped > 1e-9
                    drop_hist[:, fidx, pos_now] += dropped / _PKT
                if is_codel:
                    sojourn = qlink[:, l] * inv_now[l]
                    codel_above[:, l] = np.where(
                        sojourn > _CODEL_TARGET,
                        codel_above[:, l] + dt, 0.0)
                    fire = codel_above[:, l] >= _CODEL_INTERVAL
                    loss_hist[:, fidx, pos_now] |= fire[:, None] \
                        & (avail > 0.0)
                # Exact FIFO service: append accepted arrivals to the
                # per-flow curves, then hand each flow the slice of its
                # own curve between the previous and the new aggregate
                # departure levels (linear interpolation inside a step —
                # fluid arrives uniformly within dt).  Departures thus
                # carry the flow mix of the arrivals they matched: a
                # burst queued ahead really does starve the flows
                # behind it, exactly as the event-driven FIFO does.
                cumAf = cum_arr_f[l]
                cumAf[:, :, step + 1] = cumAf[:, :, step] + acc
                cum_arr[:, l, step + 1] = cum_arr[:, l, step] \
                    + acc.sum(axis=1)
                q_hi = cum_dep[:, l, step] + out_tot
                cum_dep[:, l, step + 1] = q_hi
                ti = tau_hi[:, l]
                while True:
                    nxt = np.minimum(ti + 1, step + 1)
                    adv = (ti <= step) \
                        & (cum_arr[s_idx, l, nxt] <= q_hi + 1e-9)
                    if not adv.any():
                        break
                    ti = ti + adv
                tau_hi[:, l] = ti
                tlo = np.minimum(ti, step + 1)
                thi = np.minimum(ti + 1, step + 1)
                lo = cum_arr[s_idx, l, tlo]
                hi = cum_arr[s_idx, l, thi]
                frac = np.divide(q_hi - lo, hi - lo, where=hi > lo,
                                 out=np.zeros(S))
                v_lo = cumAf[s_idx, :, tlo]
                v_hi = cumAf[s_idx, :, thi]
                v = v_lo + frac[:, None] * (v_hi - v_lo)
                out_mem = np.maximum(v - prev_v[l], 0.0)
                prev_v[l] = v
                rem = np.maximum(q_mem + acc - out_mem, 0.0)
                if mark_hist is not None:
                    # Threshold marking (DCTCP's K): fluid arriving
                    # while the standing queue exceeds K is CE-marked
                    # — the Alizadeh model's step indicator.
                    over_k = rem.sum(axis=1) > ecn_thresh_bytes
                    mark_hist[:, fidx, pos_now] |= over_k[:, None]
                # Latency: invert the arrival curve at the step's
                # median departing byte — its wait is the time since
                # that byte arrived.  Weighted by departures, so bytes
                # still queued at run end are never counted, exactly
                # like the packet engine's delivered-packet mean.
                query = cum_dep[:, l, step] + 0.5 * out_tot
                tj = tau_idx[:, l]
                while True:
                    nxt = np.minimum(tj + 1, step + 1)
                    adv = (tj <= step) \
                        & (cum_arr[s_idx, l, nxt] <= query + 1e-9)
                    if not adv.any():
                        break
                    tj = tj + adv
                tau_idx[:, l] = tj
                lo = cum_arr[s_idx, l, np.minimum(tj, step + 1)]
                hi = cum_arr[s_idx, l, np.minimum(tj + 1, step + 1)]
                frac = np.divide(query - lo, hi - lo, where=hi > lo,
                                 out=np.zeros(S))
                wait = np.maximum(
                    (step + 0.5 - tj - frac) * dt, 0.0)[:, None]
                wpk = out_mem / _PKT
            q[:, fidx, hidx] = rem
            dep_hist[:, fidx, hidx, pos_now] = out_mem / dt
            link_out_bytes[:, l] += out_mem.sum(axis=1)
            wait_sum[:, fidx, hidx] += wpk * wait
            wt_pkts[:, fidx, hidx] += wpk

    # ------------------------------------------------------------------
    # Collect per-seed results.
    results: List[RunResult] = []
    util = link_out_bytes / (caps_Bps[None, :] * duration_s)
    qd_hops = np.divide(wait_sum, wt_pkts, where=wt_pkts > 0.0,
                        out=np.zeros_like(wait_sum))
    qd_flow = qd_hops.sum(axis=2)       # unused hops contribute zero
    for si, seed in enumerate(seeds):
        flows: List[FlowStats] = []
        for f, kind in enumerate(config.sender_kinds):
            delivered = int(round(delivered_bytes[si, f]))
            mean_delay = float(base_ow[f] + qd_flow[si, f]) \
                if delivered > 0 else 0.0
            flows.append(FlowStats(
                flow_id=f, kind=kind,
                delivered_bytes=delivered,
                on_time_s=float(on_time[si, f]),
                mean_delay_s=mean_delay,
                base_delay_s=float(base_ow[f]),
                base_rtt_s=float(base_rtt[f]),
                packets_delivered=int(round(delivered / _PKT)),
                packets_sent=int(round(sent_pkts[si, f])),
                retransmissions=0, timeouts=0,
                delta=config.deltas[f]))
        results.append(RunResult(
            flows=flows, seed=seed, duration_s=duration_s,
            bottleneck_drops=int(round(drop_bytes[si].sum() / _PKT)),
            bottleneck_utilization=float(util[si].max()),
            metadata={"backend": "fluid", "dt": dt}))
    return results


def _waterfill(avail: np.ndarray, cap_dt: float) -> np.ndarray:
    """Fair-share (sfq) service: each backlogged bucket gets an equal
    share; unused share is redistributed until the capacity or the
    backlog is exhausted."""
    out = np.zeros_like(avail)
    todo = avail.copy()
    remaining = np.full(avail.shape[0], cap_dt)
    for _ in range(avail.shape[1]):
        active = todo > 0.0
        n_act = active.sum(axis=1)
        live = (remaining > 1e-12) & (n_act > 0)
        if not live.any():
            break
        fair = np.divide(remaining, n_act, where=n_act > 0,
                         out=np.zeros_like(remaining))
        take = np.minimum(todo, fair[:, None]) * active
        out += take
        todo -= take
        remaining = remaining - take.sum(axis=1)
    return out
