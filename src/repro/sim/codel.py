"""The CoDel active queue management algorithm.

CoDel ("controlled delay", Nichols & Jacobson 2012, RFC 8289) bounds the
*standing* queueing delay at a bottleneck by measuring each packet's
sojourn time and entering a drop state when the sojourn time stays above
``target`` for at least one ``interval``.  While dropping, the interval
between drops shrinks with the square root of the drop count (the
control-law schedule), which drives loss-triggered senders such as Cubic
towards the target delay.

This module implements the drop *state machine* separated from packet
storage (:class:`CoDelState`) so the same logic can run both on a plain
FIFO (:class:`CoDelQueue`) and per-bucket inside sfqCoDel.
"""

from __future__ import annotations

import math
from typing import Optional

from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline

__all__ = ["CoDelState", "CoDelQueue",
           "CODEL_TARGET", "CODEL_INTERVAL"]

#: Default target sojourn time, 5 ms (RFC 8289 section 4.2).
CODEL_TARGET = 0.005

#: Default sliding-minimum interval, 100 ms.
CODEL_INTERVAL = 0.100


class CoDelState:
    """The per-queue CoDel drop state machine.

    Usage: the owning queue calls :meth:`should_drop` on every dequeued
    packet.  ``True`` means the packet must be dropped and the next one
    examined; ``False`` means the packet may be transmitted.
    """

    __slots__ = ("target", "interval", "first_above_time", "drop_next",
                 "count", "last_count", "dropping")

    def __init__(self, target: float = CODEL_TARGET,
                 interval: float = CODEL_INTERVAL):
        self.target = target
        self.interval = interval
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.last_count = 0
        self.dropping = False

    def _control_law(self, t: float) -> float:
        """Next drop time: the interval shrinks as 1/sqrt(count)."""
        return t + self.interval / math.sqrt(max(self.count, 1))

    def _ok_to_drop(self, sojourn_time: float, now: float) -> bool:
        """RFC 8289 dodequeue logic: has delay been above target long enough?"""
        if sojourn_time < self.target:
            self.first_above_time = 0.0
            return False
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval
            return False
        return now >= self.first_above_time

    def should_drop(self, packet: Packet, now: float,
                    queue_empty_after: bool) -> bool:
        """Decide the fate of ``packet`` at dequeue time.

        ``queue_empty_after`` is True when this packet is the last one in
        the queue; draining a queue always exits the drop state (a short
        queue cannot have standing delay).
        """
        sojourn = now - packet.enqueued_at
        if queue_empty_after and sojourn < self.target:
            self.first_above_time = 0.0
        ok = self._ok_to_drop(sojourn, now)

        if self.dropping:
            if not ok:
                self.dropping = False
                return False
            if now >= self.drop_next:
                self.count += 1
                self.drop_next = self._control_law(self.drop_next)
                return True
            return False

        if ok and (now - self.drop_next < self.interval
                   or now - self.first_above_time >= self.interval):
            self.dropping = True
            # Restart near the last drop rate if we were dropping recently
            # (RFC 8289 section 5.4: this is the key to good behaviour with
            # bursty senders).
            if now - self.drop_next < self.interval:
                self.count = max(self.count - 2, 1) \
                    if self.count > 2 else 1
            else:
                self.count = 1
            self.last_count = self.count
            self.drop_next = self._control_law(now)
            return True
        return False


class CoDelQueue(QueueDiscipline):
    """A FIFO queue managed by CoDel.

    Arriving packets are tail-dropped only when the (generous) physical
    buffer overflows; the AQM drops happen at dequeue based on sojourn
    time.

    With ``ecn_threshold`` set the queue becomes ECN-enabled (RFC 8289
    section 4.1): a CoDel drop decision on an ECT packet CE-marks and
    *transmits* it instead of dropping (the control-law state machine
    advances identically), and the inner FIFO additionally applies the
    DCTCP-style instantaneous threshold mark at enqueue.  Non-ECT
    packets are dropped exactly as before.
    """

    def __init__(self, capacity_packets: float = math.inf,
                 target: float = CODEL_TARGET,
                 interval: float = CODEL_INTERVAL,
                 ecn_threshold: Optional[float] = None):
        super().__init__()
        self._fifo = DropTailQueue(capacity_packets=capacity_packets)
        self.codel = CoDelState(target=target, interval=interval)
        self.ecn_threshold = ecn_threshold

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def byte_length(self) -> int:
        return self._fifo.byte_length

    def enqueue(self, packet: Packet, now: float) -> bool:
        admitted = self._fifo.enqueue(packet, now)
        if admitted:
            self.stats.enqueued += 1
            self.stats.bytes_enqueued += packet.size_bytes
            threshold = self.ecn_threshold
            if (threshold is not None and packet.ecn_capable
                    and not packet.ecn_ce
                    and len(self._fifo) > threshold):
                packet.ecn_ce = True
                self.stats.marked += 1
        else:
            self.stats.dropped += 1
            self.stats.dropped_at_arrival += 1
            self.stats.bytes_dropped += packet.size_bytes
            # The inner FIFO has no pool wired (only outer queues are
            # attached to a network), so this is the sole release site.
            if self.pool is not None:
                self.pool.release(packet)
        self._notify(now)
        return admitted

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            packet = self._fifo.dequeue(now)
            if packet is None:
                self._notify(now)
                return None
            empty_after = len(self._fifo) == 0
            if self.codel.should_drop(packet, now, empty_after):
                if self.ecn_threshold is not None and packet.ecn_capable:
                    # ECN mode: the drop decision becomes a CE mark and
                    # the packet is transmitted (mark-never-drop).
                    if not packet.ecn_ce:
                        packet.ecn_ce = True
                        self.stats.marked += 1
                else:
                    self.stats.dropped += 1
                    self.stats.bytes_dropped += packet.size_bytes
                    if self.pool is not None:
                        self.pool.release(packet)
                    continue
            self.stats.dequeued += 1
            self.stats.bytes_dequeued += packet.size_bytes
            self._notify(now)
            return packet
