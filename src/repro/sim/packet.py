"""Packet representation.

Packets carry the fields needed by the congestion-control protocols in
this study:

* ``sent_at`` — the sender's transmission timestamp.  The receiver echoes
  it back in the ACK (``echo_sent_at``) so the sender can compute the
  ``send_ewma`` congestion signal (paper section 3.3, signal 3).
* ``first_sent_at`` — the transmission time of the *first* copy of this
  sequence number; retransmissions keep it so that per-packet delay
  measures the full delivery latency experienced by the application.
* ``route`` / ``hop`` — source routing.  The network precomputes the list
  of links for each flow; packets step through it, which keeps routers
  trivially simple and fast.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Packet", "DATA_HEADER_BYTES", "ACK_SIZE_BYTES"]

#: Bytes of header overhead on a data packet (IP + TCP, uncounted as goodput).
DATA_HEADER_BYTES = 40

#: Total size of a pure ACK.
ACK_SIZE_BYTES = 40


class Packet:
    """A data packet or an ACK traveling through the simulated network."""

    __slots__ = (
        "flow_id", "seq", "size_bytes", "is_ack",
        "sent_at", "first_sent_at", "is_retransmission",
        "ack_seq", "echo_sent_at", "echo_first_sent_at", "receiver_time",
        "route", "hop", "enqueued_at", "sfq_deficit",
    )

    def __init__(self, flow_id: int, seq: int, size_bytes: int,
                 sent_at: float, first_sent_at: Optional[float] = None,
                 is_retransmission: bool = False):
        self.flow_id = flow_id
        self.seq = seq
        self.size_bytes = size_bytes
        self.is_ack = False
        self.sent_at = sent_at
        self.first_sent_at = sent_at if first_sent_at is None else first_sent_at
        self.is_retransmission = is_retransmission
        # ACK-only fields.
        self.ack_seq = -1
        self.echo_sent_at = 0.0
        self.echo_first_sent_at = 0.0
        self.receiver_time = 0.0
        # Routing state, filled in by the network when the packet is sent.
        self.route = ()
        self.hop = 0
        # Queue bookkeeping (CoDel sojourn-time measurement).
        self.enqueued_at = 0.0
        self.sfq_deficit = 0

    @classmethod
    def make_ack(cls, data_packet: "Packet", ack_seq: int,
                 now: float) -> "Packet":
        """Build the ACK acknowledging ``data_packet``.

        ``ack_seq`` is cumulative: it acknowledges every sequence number
        strictly below it.  The ACK echoes the data packet's sender
        timestamps and carries the receiver's own clock (``receiver_time``)
        so protocols can observe receiver-side pacing if desired.
        """
        ack = cls(flow_id=data_packet.flow_id, seq=data_packet.seq,
                  size_bytes=ACK_SIZE_BYTES, sent_at=now)
        ack.is_ack = True
        ack.ack_seq = ack_seq
        ack.echo_sent_at = data_packet.sent_at
        ack.echo_first_sent_at = data_packet.first_sent_at
        ack.receiver_time = now
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (f"Packet({kind} flow={self.flow_id} seq={self.seq} "
                f"size={self.size_bytes})")
