"""Packet representation.

Packets carry the fields needed by the congestion-control protocols in
this study:

* ``sent_at`` — the sender's transmission timestamp.  The receiver echoes
  it back in the ACK (``echo_sent_at``) so the sender can compute the
  ``send_ewma`` congestion signal (paper section 3.3, signal 3).
* ``first_sent_at`` — the transmission time of the *first* copy of this
  sequence number; retransmissions keep it so that per-packet delay
  measures the full delivery latency experienced by the application.
* ``route`` / ``hop`` — source routing.  The network precomputes the list
  of links for each flow; packets step through it, which keeps routers
  trivially simple and fast.

Allocation discipline
---------------------
Packets are the highest-churn objects in a saturated run (one per data
packet plus one per ACK), so the hot path recycles them through a
per-network :class:`PacketPool` instead of allocating:

* the sender *acquires* a packet from the pool for each transmission;
* the receiver does not allocate an ACK — it converts the delivered
  data packet into its own acknowledgment in place
  (:meth:`Packet.into_ack`), reversing its direction;
* the sender *releases* the packet back to the pool once the ACK has
  been consumed, and every drop site (queue admission, AQM dequeue
  drops, SFQ overflow eviction) releases packets that die in flight.

:meth:`Packet.reset` re-initializes **every** slot, so a reused packet
is indistinguishable from a freshly constructed one — pinned by the
pool-reuse property test in ``tests/test_packet_pool.py``.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["Packet", "PacketPool", "DATA_HEADER_BYTES", "ACK_SIZE_BYTES"]

#: Bytes of header overhead on a data packet (IP + TCP, uncounted as goodput).
DATA_HEADER_BYTES = 40

#: Total size of a pure ACK.
ACK_SIZE_BYTES = 40


class Packet:
    """A data packet or an ACK traveling through the simulated network."""

    __slots__ = (
        "flow_id", "seq", "size_bytes", "is_ack",
        "sent_at", "first_sent_at", "is_retransmission",
        "ack_seq", "echo_sent_at", "echo_first_sent_at", "receiver_time",
        "ecn_capable", "ecn_ce", "ecn_echo",
        "route", "hop", "enqueued_at", "sfq_deficit",
    )

    def __init__(self, flow_id: int, seq: int, size_bytes: int,
                 sent_at: float, first_sent_at: Optional[float] = None,
                 is_retransmission: bool = False):
        self.reset(flow_id, seq, size_bytes, sent_at, first_sent_at,
                   is_retransmission)

    def reset(self, flow_id: int, seq: int, size_bytes: int,
              sent_at: float, first_sent_at: Optional[float] = None,
              is_retransmission: bool = False) -> None:
        """(Re)initialize every slot — pool reuse must be state-safe."""
        self.flow_id = flow_id
        self.seq = seq
        self.size_bytes = size_bytes
        self.is_ack = False
        self.sent_at = sent_at
        self.first_sent_at = sent_at if first_sent_at is None else first_sent_at
        self.is_retransmission = is_retransmission
        # ACK-only fields.
        self.ack_seq = -1
        self.echo_sent_at = 0.0
        self.echo_first_sent_at = 0.0
        self.receiver_time = 0.0
        # ECN: ``ecn_capable`` (ECT) is stamped by the sender when its
        # controller understands marks; ``ecn_ce`` is set by an
        # ECN-enabled queue instead of dropping; ``ecn_echo`` carries
        # the mark back to the sender on the ACK.
        self.ecn_capable = False
        self.ecn_ce = False
        self.ecn_echo = False
        # Routing state, filled in by the network when the packet is sent.
        self.route = ()
        self.hop = 0
        # Queue bookkeeping (CoDel sojourn-time measurement).
        self.enqueued_at = 0.0
        self.sfq_deficit = 0

    def into_ack(self, ack_seq: int, now: float) -> "Packet":
        """Turn this delivered data packet into its own ACK, in place.

        ``ack_seq`` is cumulative: it acknowledges every sequence number
        strictly below it.  The ACK echoes the data packet's sender
        timestamps and carries the receiver's own clock
        (``receiver_time``) so protocols can observe receiver-side
        pacing if desired.  Converting in place means the receive path
        allocates nothing: the same object that carried the data turns
        around and carries the acknowledgment, and ownership passes
        back to the sender (who releases it to the pool).
        """
        self.is_ack = True
        self.ack_seq = ack_seq
        # Echo before overwriting the sender's timestamps with our own.
        self.echo_sent_at = self.sent_at
        self.echo_first_sent_at = self.first_sent_at
        self.receiver_time = now
        self.sent_at = now
        # Normalize the data-transit leftovers so the ACK is fully
        # determined by (data packet, ack_seq, now) — field for field
        # what make_ack would have built.
        self.first_sent_at = now
        self.is_retransmission = False
        self.size_bytes = ACK_SIZE_BYTES
        # Echo any CE mark picked up on the data path, then normalize
        # the data-direction ECN state (ACKs are never marked).
        self.ecn_echo = self.ecn_ce
        self.ecn_capable = False
        self.ecn_ce = False
        return self

    @classmethod
    def make_ack(cls, data_packet: "Packet", ack_seq: int,
                 now: float) -> "Packet":
        """Build a *fresh* ACK acknowledging ``data_packet``.

        The transport's hot path uses :meth:`into_ack` instead (no
        allocation); this constructor remains for tests and tooling
        that need the data packet left intact.
        """
        ack = cls(flow_id=data_packet.flow_id, seq=data_packet.seq,
                  size_bytes=ACK_SIZE_BYTES, sent_at=now)
        ack.is_ack = True
        ack.ack_seq = ack_seq
        ack.echo_sent_at = data_packet.sent_at
        ack.echo_first_sent_at = data_packet.first_sent_at
        ack.receiver_time = now
        ack.ecn_echo = data_packet.ecn_ce
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (f"Packet({kind} flow={self.flow_id} seq={self.seq} "
                f"size={self.size_bytes})")


class PacketPool:
    """A free list of :class:`Packet` objects, one per network.

    Ownership protocol (see docs/PERFORMANCE.md):

    * :meth:`acquire` hands out a packet with every slot re-initialized;
      the caller owns it until it either reaches the far endpoint or is
      dropped.
    * The receiver converts a delivered data packet into its ACK in
      place (:meth:`Packet.into_ack`) — no release, ownership just
      reverses direction.
    * :meth:`release` returns a dead packet (consumed ACK, or any drop)
      to the free list.  Releasing the same object twice corrupts the
      pool; every packet has exactly one owner at a time, so each death
      site fires at most once per life.

    The counters make allocation behaviour observable:
    ``benchmarks/bench_alloc.py`` gates ``allocated`` per simulated
    packet, and the reuse property test asserts recycled packets are
    indistinguishable from fresh ones.
    """

    __slots__ = ("_free", "allocated", "reused", "released")

    def __init__(self) -> None:
        self._free: List[Packet] = []
        self.allocated = 0    # pool misses: new Packet objects built
        self.reused = 0       # pool hits: recycled objects handed out
        self.released = 0     # packets returned to the free list

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, flow_id: int, seq: int, size_bytes: int,
                sent_at: float, first_sent_at: Optional[float] = None,
                is_retransmission: bool = False) -> Packet:
        """A packet with the given header fields; recycled when possible."""
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            packet.reset(flow_id, seq, size_bytes, sent_at,
                         first_sent_at, is_retransmission)
            return packet
        self.allocated += 1
        return Packet(flow_id, seq, size_bytes, sent_at, first_sent_at,
                      is_retransmission)

    def release(self, packet: Packet) -> None:
        """Return a dead packet to the free list (caller must own it)."""
        self.released += 1
        self._free.append(packet)
