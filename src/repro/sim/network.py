"""Network assembly: links + flows + source routing.

The :class:`Network` owns every link in a simulation and the endpoint
callbacks of every flow.  Packets are *source routed*: when an endpoint
transmits, the network stamps the packet with the precomputed list of
links for that flow and direction, and each link delivery advances the
packet one hop.  This keeps per-hop forwarding O(1) with no routing-table
lookups — important because the pure-Python event loop is the cost
center of this reproduction (see DESIGN.md section 2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .engine import Simulator
from .link import Link
from .packet import Packet, PacketPool

__all__ = ["Network", "FlowPath"]

Endpoint = Callable[[Packet], None]


class FlowPath:
    """The forward (data) and reverse (ACK) routes of one flow."""

    __slots__ = ("flow_id", "data_route", "ack_route",
                 "data_endpoint", "ack_endpoint")

    def __init__(self, flow_id: int,
                 data_route: Tuple[Link, ...],
                 ack_route: Tuple[Link, ...]):
        self.flow_id = flow_id
        self.data_route = data_route
        self.ack_route = ack_route
        self.data_endpoint: Optional[Endpoint] = None   # the receiver
        self.ack_endpoint: Optional[Endpoint] = None    # the sender

    def base_delay(self, data_bytes: int, ack_bytes: int) -> float:
        """Unloaded round-trip time for a ``data_bytes`` packet.

        Propagation plus serialization on every hop, both directions,
        at the links' *nominal* (configured) rates and delays — under
        link dynamics the instantaneous values wander, but the
        scenario's unloaded RTT is defined by the static configuration.
        On static links nominal == current, so this is the exact same
        float as before.
        """
        forward = sum(
            link.nominal_delay_s + link.base_transmission_time(data_bytes)
            for link in self.data_route)
        reverse = sum(
            link.nominal_delay_s + link.base_transmission_time(ack_bytes)
            for link in self.ack_route)
        return forward + reverse

    def one_way_base_delay(self, data_bytes: int) -> float:
        """Unloaded sender-to-receiver latency for a data packet."""
        return sum(
            link.nominal_delay_s + link.base_transmission_time(data_bytes)
            for link in self.data_route)


class Network:
    """Wires links and flow endpoints into a runnable simulation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.links: Dict[str, Link] = {}
        self.flows: Dict[int, FlowPath] = {}
        #: Shared packet free list: senders acquire, receivers flip
        #: delivered data packets into ACKs in place, and every death
        #: site (consumed ACK, queue drop) releases back here.
        self.pool = PacketPool()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(self, link: Link) -> Link:
        """Register ``link`` and take over its delivery callback."""
        if link.name in self.links:
            raise ValueError(f"duplicate link name: {link.name!r}")
        self.links[link.name] = link
        link.deliver = self._on_deliver
        # Wire the pool into every drop site so packets that die in
        # flight are recycled instead of garbage-collected.
        link.pool = self.pool
        link.queue.pool = self.pool
        return link

    def add_flow(self, flow_id: int,
                 data_route: List[Link],
                 ack_route: List[Link]) -> FlowPath:
        """Register a flow with explicit forward and reverse routes."""
        if flow_id in self.flows:
            raise ValueError(f"duplicate flow id: {flow_id}")
        for link in list(data_route) + list(ack_route):
            if link.name not in self.links:
                raise ValueError(
                    f"route for flow {flow_id} uses unregistered "
                    f"link {link.name!r}")
        path = FlowPath(flow_id, tuple(data_route), tuple(ack_route))
        self.flows[flow_id] = path
        return path

    def attach_receiver(self, flow_id: int, endpoint: Endpoint) -> None:
        """Install the callback receiving this flow's data packets."""
        self.flows[flow_id].data_endpoint = endpoint

    def attach_sender(self, flow_id: int, endpoint: Endpoint) -> None:
        """Install the callback receiving this flow's ACKs."""
        self.flows[flow_id].ack_endpoint = endpoint

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send_data(self, packet: Packet) -> bool:
        """Launch a data packet from its sender.  False if dropped at hop 0."""
        path = self.flows[packet.flow_id]
        return self._launch(packet, path.data_route, path.data_endpoint)

    def send_ack(self, packet: Packet) -> bool:
        """Launch an ACK from its receiver back to the sender."""
        path = self.flows[packet.flow_id]
        return self._launch(packet, path.ack_route, path.ack_endpoint)

    def _launch(self, packet: Packet, route: Tuple[Link, ...],
                endpoint: Optional[Endpoint]) -> bool:
        if endpoint is None:
            raise RuntimeError(
                f"flow {packet.flow_id} has no endpoint attached for "
                f"{'ACK' if packet.is_ack else 'data'} packets")
        packet.route = route
        packet.hop = 0
        if not route:
            endpoint(packet)
            return True
        return route[0].send(packet)

    def _on_deliver(self, packet: Packet) -> None:
        hop = packet.hop + 1
        packet.hop = hop
        route = packet.route
        if hop < len(route):
            route[hop].send(packet)
            return
        path = self.flows[packet.flow_id]
        endpoint = path.ack_endpoint if packet.is_ack else path.data_endpoint
        endpoint(packet)
