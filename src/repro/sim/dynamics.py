"""Link dynamics: declarative schedules driving links over simulated time.

Every scenario the repo could express before this module was *static*:
link rates, propagation delays, and ordering were fixed at construction
and held for the whole run.  The paper's central question — how brittle
is a learned Tao outside the conditions it was trained for? — needs
hostile networks: rates that step up and down, links that black out,
RTTs that wander, packets that arrive out of order.

This module is the declarative layer for exactly that:

* :class:`LinkSchedule` — what happens to **one** link over time:
  a piecewise-constant rate trace, outage (blackout) windows, a
  periodic RTT-jitter process, and a random-reordering process.
* :class:`DynamicsSpec` — the per-scenario bundle: one schedule per
  bottleneck link (or a single schedule applied to all of them).  It
  round-trips ``to_dict``/``from_dict`` so it can ride inside
  :class:`~repro.core.scenario.NetworkConfig` and the ``SimTask``
  fingerprint.
* :class:`DynamicsDriver` — the imperative half: given a built
  simulator and its bottleneck links, schedules the ``set_rate`` /
  ``set_delay`` events that realize a spec.  All randomness (jitter,
  reordering) is drawn from per-link ``random.Random`` streams seeded
  from the run seed, so runs stay bitwise deterministic and
  common-random-number candidate comparisons stay valid.

Fluid-backend support: piecewise rate traces and outages map cleanly
onto per-step capacity arrays, but RTT jitter and reordering are
packet-level phenomena with no fluid analogue —
:meth:`DynamicsSpec.packet_only_reason` names the offending feature so
the fluid backend (and ``SimTask`` build validation) can refuse with a
useful message instead of mid-batch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .engine import Simulator
from .link import Link

__all__ = ["LinkSchedule", "DynamicsSpec", "DynamicsDriver",
           "parse_outage_token", "format_outage_token",
           "OUTAGE_POLICIES"]

#: What a down link does with traffic: ``"hold"`` queues packets (up to
#: the queue's capacity) for transmission after the outage; ``"drop"``
#: discards every arrival while the link is down (a true blackout).
OUTAGE_POLICIES = ("hold", "drop")


def _as_pairs(value: Sequence[Sequence[float]],
              what: str) -> Tuple[Tuple[float, float], ...]:
    pairs = []
    for entry in value:
        entry = tuple(entry)
        if len(entry) != 2:
            raise ValueError(f"{what} entries must be (a, b) pairs, "
                             f"got {entry!r}")
        pairs.append((float(entry[0]), float(entry[1])))
    return tuple(pairs)


@dataclass(frozen=True)
class LinkSchedule:
    """Time-varying behaviour of one link.

    Parameters
    ----------
    rate_steps:
        Piecewise-constant rate trace: ``(at_s, rate_mbps)`` pairs,
        sorted by time.  At each ``at_s`` the link's rate becomes
        ``rate_mbps`` (absolute, not a delta).  Before the first step
        the link runs at its configured speed.  A rate of 0 is a
        legal "link down" state.
    outages:
        Blackout windows: ``(start_s, stop_s)`` half-open intervals,
        sorted and disjoint.  Inside a window the rate is forced to 0
        regardless of the rate trace; at ``stop_s`` the trace rate
        current at that time is restored.
    outage_policy:
        ``"hold"`` or ``"drop"`` — see :data:`OUTAGE_POLICIES`.
    jitter_ms:
        Half-width of a uniform RTT-jitter process: every
        ``jitter_period_s`` the link's one-way delay is resampled as
        ``base + U(-jitter_ms, +jitter_ms)`` (clamped at 0).
    jitter_period_s:
        Resampling period of the jitter process (required > 0 when
        ``jitter_ms`` > 0).
    reorder_prob:
        Per-packet probability of extra propagation delay, which lets
        later packets overtake — random reordering.
    reorder_extra_ms:
        Upper bound of the uniform extra delay for reordered packets
        (required > 0 when ``reorder_prob`` > 0).
    """

    rate_steps: Tuple[Tuple[float, float], ...] = ()
    outages: Tuple[Tuple[float, float], ...] = ()
    outage_policy: str = "hold"
    jitter_ms: float = 0.0
    jitter_period_s: float = 0.0
    reorder_prob: float = 0.0
    reorder_extra_ms: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate_steps",
                           _as_pairs(self.rate_steps, "rate_steps"))
        object.__setattr__(self, "outages",
                           _as_pairs(self.outages, "outages"))
        last = -math.inf
        for at, rate in self.rate_steps:
            if at < 0 or not math.isfinite(at):
                raise ValueError(f"rate step time must be >= 0, got {at}")
            if at <= last:
                raise ValueError("rate_steps must be sorted by strictly "
                                 "increasing time")
            if rate < 0 or not math.isfinite(rate):
                raise ValueError(
                    f"rate step rate_mbps must be finite and >= 0, "
                    f"got {rate}")
            last = at
        last = 0.0
        for start, stop in self.outages:
            if start < last:
                raise ValueError("outages must be sorted, disjoint, and "
                                 "start at t >= 0")
            if not stop > start:
                raise ValueError(
                    f"outage window must satisfy stop > start, "
                    f"got ({start}, {stop})")
            if not math.isfinite(stop):
                raise ValueError("outage windows must be finite")
            last = stop
        if self.outage_policy not in OUTAGE_POLICIES:
            raise ValueError(
                f"unknown outage_policy {self.outage_policy!r}; "
                f"expected one of {OUTAGE_POLICIES}")
        if self.jitter_ms < 0 or not math.isfinite(self.jitter_ms):
            raise ValueError("jitter_ms must be finite and >= 0")
        if self.jitter_ms > 0 and not self.jitter_period_s > 0:
            raise ValueError("jitter_ms > 0 requires jitter_period_s > 0")
        if self.jitter_period_s < 0:
            raise ValueError("jitter_period_s must be >= 0")
        if not 0.0 <= self.reorder_prob <= 1.0:
            raise ValueError("reorder_prob must be in [0, 1]")
        if self.reorder_prob > 0 and not self.reorder_extra_ms > 0:
            raise ValueError(
                "reorder_prob > 0 requires reorder_extra_ms > 0")
        if self.reorder_extra_ms < 0:
            raise ValueError("reorder_extra_ms must be >= 0")

    @property
    def is_empty(self) -> bool:
        return (not self.rate_steps and not self.outages
                and self.jitter_ms == 0 and self.reorder_prob == 0)

    @property
    def varies_rate(self) -> bool:
        return bool(self.rate_steps or self.outages)

    def packet_only_reason(self) -> Optional[str]:
        """Why this schedule has no fluid-model analogue (or None)."""
        if self.jitter_ms > 0:
            return "rtt jitter (jitter_ms > 0)"
        if self.reorder_prob > 0:
            return "random reordering (reorder_prob > 0)"
        return None

    # ------------------------------------------------------------------
    def timeline(self, base_rate_bps: float
                 ) -> List[Tuple[float, float]]:
        """Merge the rate trace and outages into one piecewise timeline.

        Returns sorted ``(at_s, rate_bps)`` change points: the trace
        rate outside outage windows, 0 inside them, and the
        trace-current rate restored at each window's end.  Only actual
        changes are emitted (an outage during an already-zero trace
        produces no events).
        """
        points = sorted(
            {at for at, _ in self.rate_steps}
            | {t for window in self.outages for t in window})
        changes: List[Tuple[float, float]] = []
        current = base_rate_bps
        for at in points:
            rate = base_rate_bps
            for step_at, mbps in self.rate_steps:
                if step_at <= at:
                    rate = mbps * 1e6
                else:
                    break
            for start, stop in self.outages:
                if start <= at < stop:
                    rate = 0.0
                    break
            if rate != current:
                changes.append((at, rate))
                current = rate
        return changes

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "rate_steps": [list(pair) for pair in self.rate_steps],
            "outages": [list(pair) for pair in self.outages],
            "outage_policy": self.outage_policy,
            "jitter_ms": self.jitter_ms,
            "jitter_period_s": self.jitter_period_s,
            "reorder_prob": self.reorder_prob,
            "reorder_extra_ms": self.reorder_extra_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkSchedule":
        return cls(
            rate_steps=tuple(tuple(p) for p in data.get("rate_steps", ())),
            outages=tuple(tuple(p) for p in data.get("outages", ())),
            outage_policy=data.get("outage_policy", "hold"),
            jitter_ms=data.get("jitter_ms", 0.0),
            jitter_period_s=data.get("jitter_period_s", 0.0),
            reorder_prob=data.get("reorder_prob", 0.0),
            reorder_extra_ms=data.get("reorder_extra_ms", 0.0),
        )


@dataclass(frozen=True)
class DynamicsSpec:
    """Per-scenario link dynamics: one schedule per bottleneck link.

    A single-entry ``links`` tuple applies to every bottleneck (the
    common case); otherwise its length must match the topology's
    bottleneck count (1 for the dumbbell, 2 for the parking lot) —
    validated by :class:`~repro.core.scenario.NetworkConfig`.
    """

    links: Tuple[LinkSchedule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        if not self.links:
            raise ValueError("DynamicsSpec needs at least one LinkSchedule")
        for schedule in self.links:
            if not isinstance(schedule, LinkSchedule):
                raise ValueError(
                    f"DynamicsSpec.links entries must be LinkSchedule, "
                    f"got {type(schedule).__name__}")

    @property
    def is_empty(self) -> bool:
        return all(schedule.is_empty for schedule in self.links)

    def schedule_for(self, index: int) -> LinkSchedule:
        """The schedule for bottleneck ``index`` (broadcast if single)."""
        if len(self.links) == 1:
            return self.links[0]
        return self.links[index]

    def packet_only_reason(self) -> Optional[str]:
        """Why the fluid backend cannot run this spec (or None)."""
        for schedule in self.links:
            reason = schedule.packet_only_reason()
            if reason:
                return reason
        return None

    # ------------------------------------------------------------------
    # Convenience constructors for the common shapes
    # ------------------------------------------------------------------
    @classmethod
    def outage(cls, windows: Sequence[Sequence[float]],
               policy: str = "hold") -> "DynamicsSpec":
        return cls(links=(LinkSchedule(outages=tuple(windows),
                                       outage_policy=policy),))

    @classmethod
    def jitter(cls, jitter_ms: float,
               period_s: float = 0.05) -> "DynamicsSpec":
        return cls(links=(LinkSchedule(jitter_ms=jitter_ms,
                                       jitter_period_s=period_s),))

    @classmethod
    def rate_trace(cls, steps: Sequence[Sequence[float]]) -> "DynamicsSpec":
        return cls(links=(LinkSchedule(rate_steps=tuple(steps)),))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"links": [schedule.to_dict() for schedule in self.links]}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["DynamicsSpec"]:
        if data is None:
            return None
        return cls(links=tuple(
            LinkSchedule.from_dict(entry) for entry in data["links"]))


# ----------------------------------------------------------------------
# Outage tokens: the CLI/axis encoding of a blackout pattern
# ----------------------------------------------------------------------
def parse_outage_token(token: str) -> Tuple[Tuple[float, float], ...]:
    """Parse ``"0.5-1.0+2.0-2.5"`` into outage windows (``"none"`` -> ()).

    This is the sweep-axis encoding: windows are ``start-stop`` in
    seconds, joined by ``+``.  It is also what the adversarial search
    emits, so searched patterns drop straight into ``--axis outage=``.
    """
    text = str(token).strip()
    if text in ("", "none", "off"):
        return ()
    windows = []
    for part in text.split("+"):
        pieces = part.split("-")
        if len(pieces) != 2:
            raise ValueError(
                f"bad outage window {part!r} in {token!r}; expected "
                f"START-STOP seconds, e.g. '0.5-1.0+2.0-2.5' or 'none'")
        try:
            start, stop = float(pieces[0]), float(pieces[1])
        except ValueError:
            raise ValueError(
                f"bad outage window {part!r} in {token!r}: bounds must "
                f"be numbers") from None
        windows.append((start, stop))
    # LinkSchedule validation enforces sorted/disjoint/positive-width.
    return tuple(windows)


def format_outage_token(
        windows: Sequence[Sequence[float]]) -> str:
    """Inverse of :func:`parse_outage_token`."""
    if not windows:
        return "none"
    return "+".join(f"{start:g}-{stop:g}" for start, stop in windows)


# ----------------------------------------------------------------------
# The imperative half: realize a spec on a built simulation
# ----------------------------------------------------------------------
class DynamicsDriver:
    """Schedules the events that realize a :class:`DynamicsSpec`.

    Construct it after the topology is built but before the run starts;
    :meth:`start` enables the dynamic serialization path on each link
    with a non-trivial schedule and schedules every rate change, outage
    boundary, and the first jitter resample.  Jitter resamples chain
    themselves, so the process runs for the whole simulation.

    All randomness comes from per-link ``random.Random`` streams seeded
    as ``seed * 1_000_003 + 611_953 + index * 7_919`` — disjoint from
    the workload streams (``seed * 1_000_003 + flow * 7_919 + 17``), so
    adding dynamics never perturbs the on/off draws.
    """

    def __init__(self, sim: Simulator, links: Sequence[Link],
                 spec: DynamicsSpec, seed: int = 0) -> None:
        self.sim = sim
        self.links = list(links)
        self.spec = spec
        self.seed = seed
        self._rngs: List[random.Random] = [
            random.Random(seed * 1_000_003 + 611_953 + index * 7_919)
            for index in range(len(self.links))]

    def start(self) -> None:
        sim = self.sim
        for index, link in enumerate(self.links):
            schedule = self.spec.schedule_for(index)
            if schedule.is_empty:
                continue
            rng = self._rngs[index]
            if schedule.varies_rate:
                link.enable_dynamics()
                link.down_policy = schedule.outage_policy
                for at, rate_bps in schedule.timeline(link.rate_bps):
                    sim.schedule_at(at, link.set_rate, rate_bps)
            if schedule.reorder_prob > 0:
                link.enable_dynamics()
                link.set_reordering(schedule.reorder_prob,
                                    schedule.reorder_extra_ms / 1e3, rng)
            if schedule.jitter_ms > 0:
                # Delay changes are read per delivery, so jitter alone
                # does not need the dynamic serialization path.
                sim.schedule_at(
                    schedule.jitter_period_s, self._jitter_tick,
                    link, link.delay_s, schedule.jitter_ms / 1e3,
                    schedule.jitter_period_s, rng)

    def _jitter_tick(self, link: Link, base_delay_s: float,
                     jitter_s: float, period_s: float,
                     rng: random.Random) -> None:
        link.set_delay(max(base_delay_s + rng.uniform(-jitter_s,
                                                      jitter_s), 0.0))
        self.sim.schedule_call(period_s, self._jitter_tick, link,
                               base_delay_s, jitter_s, period_s, rng)
