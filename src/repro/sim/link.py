"""Point-to-point links with finite rate and propagation delay.

A :class:`Link` models the canonical store-and-forward pipe: packets are
held in an attached :class:`~repro.sim.queues.QueueDiscipline`, serialized
one at a time at ``rate_bps``, then delivered ``delay_s`` seconds later.
Links are unidirectional; full-duplex paths are built from two links.

The link does not know the topology.  When a packet finishes propagating
the link hands it to ``deliver`` — a callback installed by
:class:`~repro.sim.network.Network` that advances the packet along its
source route.

The hot path (drop-tail links, no occupancy listener)
-----------------------------------------------------
Kernel profiles put per-crossing overhead — queue-discipline dispatch
and agenda pushes — at the top of a saturated run, so the 90% case is
specialized while keeping the event *trajectory* bitwise identical on
every configuration the reproduction runs (pinned by the golden
digests in ``tests/test_golden_traces.py`` and the pre-port table
parity suite):

* **Monomorphic queue ops**: when the queue is exactly a
  :class:`~repro.sim.queues.DropTailQueue` (checked once at link
  construction) with no occupancy listener, enqueue/dequeue are inlined
  into :meth:`send` / the serialization-done handler — no virtual
  dispatch, no listener plumbing, same counters and same float math.
* **Coalesced instant-link events**: an infinite-rate link serializes
  in zero time, so its serialization-done event is pure bookkeeping —
  *except* as a FIFO yield between chains that share a timestamp (a
  multi-sender burst at time t round-robins through those entries, and
  the trajectory depends on that interleaving; unconditionally
  direct-calling here measurably reorders multiplexed runs).  The
  crossing is therefore coalesced exactly when the yield is provably
  inert: link idle *and* no other agenda entry at the current
  timestamp (a peek at the heap head).  In that case a zero-delay hop
  direct-calls ``deliver`` with **zero** agenda entries and a delayed
  hop pushes only the propagation entry — one heap push per crossing
  instead of two.  Contended sends fall back to the chained relay,
  which replicates the original event structure with the queue ops
  inlined.  ``busy_time`` is never touched on the instant path (it
  only ever accumulated ``0.0``).
* **Finite-rate links keep the two-event structure** (serialization
  done at ``start + tx``, delivery at ``+ delay``): the done event's
  position in the agenda is load-bearing — collapsing it into the
  delivery entry re-breaks same-time ties and shifts trajectories —
  so the win here is the inlined queue, not fewer events.

CoDel, sfqCoDel, and listener-observed queues take the generic path,
which is the original machinery verbatim (AQM dequeue decisions depend
on the clock, so their event structure is semantic, not overhead).
Finite-rate fast links push the *same entries at the same points* as
the generic path, so attaching a trace listener to a bottleneck (the
only links tracing observes) cannot perturb a run.

Known precision limit of the coalesced instant path: entries the
synchronous chain pushes for *future* times get their agenda seqs at
``send()`` rather than after a same-time relay yield, so an unrelated
event that (a) is scheduled later within the same timestamp and
(b) lands at exactly the same future float instant wins a FIFO tie it
would previously have lost.  No experiment configuration produces such
a collision (hop delays vs pacing/RTO/workload floats never coincide
exactly), every pinned digest and parity table is unchanged, and runs
remain fully deterministic either way — but a hand-built scenario
engineered for an exact collision can order those two events
differently than the eager design did.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline

__all__ = ["Link", "LinkStats"]

#: Bound on nested synchronous deliveries (direct-called zero-delay
#: hops re-entering send() down the route — or, on an all-instant
#: network, looping through the endpoints).  Each level costs a handful
#: of Python frames; 64 stays far under the interpreter's recursion
#: limit while never triggering on a network with any finite-rate or
#: delayed hop in the loop.
_MAX_SYNC_DEPTH = 64


class LinkStats:
    """Per-link forwarding counters (utilization reporting)."""

    __slots__ = ("packets_forwarded", "bytes_forwarded", "busy_time")

    def __init__(self) -> None:
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        self.busy_time = 0.0

    def utilization(self, rate_bps: float, elapsed: float) -> float:
        """Fraction of ``elapsed`` the link spent transmitting."""
        if elapsed <= 0 or math.isinf(rate_bps):
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class Link:
    """A unidirectional link: queue -> serializer -> propagation.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving the link.
    rate_bps:
        Transmission rate in bits/second.  ``float('inf')`` models an
        instantaneous (access) link.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        Queue discipline holding packets awaiting transmission.  Defaults
        to an unbounded drop-tail FIFO.
    name:
        Label used in traces and error messages.
    """

    __slots__ = ("sim", "rate_bps", "delay_s", "queue", "name",
                 "deliver", "stats", "pool", "_busy", "_instant", "_fast",
                 "nominal_rate_bps", "nominal_delay_s", "down_policy",
                 "_dynamic", "_down", "_tx_packet", "_tx_bits",
                 "_tx_rate", "_tx_armed_at", "_tx_epoch",
                 "_reorder_prob", "_reorder_extra_s", "_reorder_rng")

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 queue: Optional[QueueDiscipline] = None,
                 name: str = "link"):
        if rate_bps < 0:
            raise ValueError(
                f"rate_bps must be >= 0 (0 = link down), got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name
        #: Set by the Network; called with each packet that crosses the link.
        self.deliver: Callable[[Packet], None] = _unconnected
        #: Set by the Network: the shared packet free list (drop sites
        #: on the fast path release through it).
        self.pool = None
        self.stats = LinkStats()
        self._busy = False
        self._instant = math.isinf(rate_bps)
        #: The configured (static) rate and delay.  ``set_rate`` /
        #: ``set_delay`` never touch these; path base-RTT computations
        #: use them so a scenario's unloaded RTT is well-defined even
        #: under dynamics (and is the exact same float as before on
        #: static links).
        self.nominal_rate_bps = rate_bps
        self.nominal_delay_s = delay_s
        #: What a down (rate 0) link does with arrivals: "hold" queues
        #: them for after the outage, "drop" discards on arrival.
        self.down_policy = "hold"
        self._dynamic = False
        self._down = rate_bps == 0
        if self._down:
            # A link constructed down is dynamic from birth: something
            # must call set_rate() for it to ever carry traffic.
            self._dynamic = True
        self._tx_packet: Optional[Packet] = None
        self._tx_bits = 0.0
        self._tx_rate = 0.0
        self._tx_armed_at = 0.0
        self._tx_epoch = 0
        self._reorder_prob = 0.0
        self._reorder_extra_s = 0.0
        self._reorder_rng = None
        # Monomorphic fast path: the queue's concrete type is decided
        # once, at construction.  The occupancy listener is re-checked
        # per send because tracing attaches one after the topology is
        # built.
        # ECN-enabled drop-tail queues must go through the generic
        # ``enqueue`` so CE marking runs; the inlined fast path would
        # silently bypass it.
        self._fast = (type(self.queue) is DropTailQueue
                      and self.queue.ecn_threshold is None
                      and not self._dynamic)

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    @property
    def down(self) -> bool:
        """True while the link is in the rate-0 "down" state."""
        return self._down

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds to serialize ``size_bytes`` at this link's rate.

        A down link (rate 0) never finishes serializing: ``inf``.
        """
        rate = self.rate_bps
        if rate == 0:
            return math.inf
        if math.isinf(rate):
            return 0.0
        return size_bytes * 8.0 / rate

    def base_transmission_time(self, size_bytes: int) -> float:
        """Seconds to serialize at the *nominal* (configured) rate."""
        rate = self.nominal_rate_bps
        if rate == 0:
            return math.inf
        if math.isinf(rate):
            return 0.0
        return size_bytes * 8.0 / rate

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the link spent transmitting."""
        return self.stats.utilization(self.nominal_rate_bps, elapsed)

    # ------------------------------------------------------------------
    # Dynamics: rate/delay changes over simulated time
    # ------------------------------------------------------------------
    def enable_dynamics(self) -> None:
        """Switch to the re-priceable serialization path.

        Must be called before traffic flows (the fast paths keep no
        re-pricing state for an in-flight packet).  Static links never
        call this, so their event trajectories are untouched.
        """
        if self._busy:
            raise RuntimeError(
                f"{self.name}: enable_dynamics() must run before the "
                f"link carries traffic")
        self._dynamic = True
        self._fast = False

    def set_reordering(self, prob: float, extra_s: float, rng) -> None:
        """Give a fraction ``prob`` of packets extra propagation delay
        drawn from ``U(0, extra_s)``, letting later packets overtake."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"reorder prob must be in [0, 1], got {prob}")
        if prob > 0 and not extra_s > 0:
            raise ValueError("reordering needs extra_s > 0")
        if not self._dynamic:
            self.enable_dynamics()
        self._reorder_prob = prob
        self._reorder_extra_s = extra_s
        self._reorder_rng = rng

    def set_delay(self, delay_s: float) -> None:
        """Change the propagation delay from now on.

        Packets already propagating keep the delay they departed with;
        delay is read per delivery, so this is safe on every path.
        """
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.delay_s = delay_s

    def set_rate(self, rate_bps: float) -> None:
        """Change the transmission rate from now on, re-pricing any
        in-flight serialization.

        The packet currently serializing keeps the bits it has already
        transmitted at the old rate; its remaining bits are re-priced at
        the new rate.  Rate 0 takes the link down: serialization
        suspends mid-packet and arrivals are held or dropped per
        ``down_policy`` until a later ``set_rate`` brings it back up.
        """
        if rate_bps < 0:
            raise ValueError(
                f"rate_bps must be >= 0 (0 = link down), got {rate_bps}")
        if not self._dynamic:
            self.enable_dynamics()
        now = self.sim._now
        old_rate = self._tx_rate
        if self._tx_packet is not None and old_rate > 0:
            # Settle bits served at the old rate since the last arming.
            elapsed = now - self._tx_armed_at
            if math.isinf(old_rate):
                served = self._tx_bits
            else:
                served = elapsed * old_rate
                self.stats.busy_time += elapsed
            self._tx_bits = max(self._tx_bits - served, 0.0)
        self.rate_bps = rate_bps
        self._instant = math.isinf(rate_bps)
        self._down = rate_bps == 0
        if self._down:
            # Suspend: invalidate the outstanding done event and keep
            # the half-served packet parked until the link comes back.
            self._tx_epoch += 1
            self._tx_rate = 0.0
            return
        if self._tx_packet is not None:
            self._arm_tx()
        elif not self._busy:
            self._start_next_dynamic()

    # ------------------------------------------------------------------
    # Send: fast path inline, generic fallback
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.  Returns False if the queue drops it."""
        queue = self.queue
        # sim._now, not sim.now: this runs once per packet per hop, and
        # the property dispatch shows up in kernel profiles.
        sim = self.sim
        now = sim._now
        if self._fast and queue.occupancy_listener is None:
            stats = queue.stats
            size = packet.size_bytes
            if self._instant and not self._busy \
                    and sim._sync_depth < _MAX_SYNC_DEPTH:
                heap = sim._heap
                if not heap or heap[0][0] > now:
                    # Zero serialization time, idle link, and *no other
                    # agenda entry shares this timestamp*: the relay
                    # yield could not interleave with anything, so the
                    # whole crossing runs synchronously.  Any entry
                    # scheduled after this check gets a larger seq and
                    # would have fired after the yield anyway — only
                    # pre-existing same-time entries (checked via the
                    # heap head) force the chained fallback below.
                    if 1 > queue.capacity_packets \
                            or size > queue.capacity_bytes:
                        return self._drop_fast(packet, stats, size)
                    packet.enqueued_at = now
                    stats.enqueued += 1
                    stats.bytes_enqueued += size
                    stats.dequeued += 1
                    stats.bytes_dequeued += size
                    lstats = self.stats
                    lstats.packets_forwarded += 1
                    lstats.bytes_forwarded += size
                    if self.delay_s > 0.0:
                        sim.schedule_call(self.delay_s, self.deliver,
                                          packet)
                    else:
                        # The synchronous chain can re-enter send() on
                        # downstream links (and, on an all-instant
                        # zero-delay network, re-enter the *sender*
                        # through the in-place ACK, transmitting the
                        # next packet a level deeper).  The depth gate
                        # above bounds that: past it, sends take the
                        # chained relay, which iterates through the
                        # agenda instead of the C stack.  Either route
                        # is trajectory-identical when nothing shares
                        # the timestamp, so the cutover is inert.
                        sim._sync_depth += 1
                        try:
                            self.deliver(packet)
                        finally:
                            sim._sync_depth -= 1
                    return True
            # DropTailQueue.enqueue, inlined.
            backing = queue._queue
            if (len(backing) - queue._head + 1 > queue.capacity_packets
                    or queue._bytes + size > queue.capacity_bytes):
                return self._drop_fast(packet, stats, size)
            packet.enqueued_at = now
            backing.append(packet)
            queue._bytes += size
            stats.enqueued += 1
            stats.bytes_enqueued += size
            if not self._busy:
                if self._instant:
                    self._relay_next_fast(sim, queue)
                else:
                    self._serialize_next_fast(sim, queue)
            return True
        if self._down and self.down_policy == "drop":
            # Blackout with a drop policy: the packet never reaches the
            # queue.  Accounted like an arrival drop so queue-resident
            # math (enqueued - dequeued - dropped) stays consistent.
            stats = queue.stats
            stats.dropped += 1
            stats.dropped_at_arrival += 1
            stats.bytes_dropped += packet.size_bytes
            listener = queue.occupancy_listener
            if listener is not None:
                listener(now, len(queue))
            if self.pool is not None:
                self.pool.release(packet)
            return False
        admitted = queue.enqueue(packet, now)
        if admitted and not self._busy:
            self._start_next()
        return admitted

    def _drop_fast(self, packet: Packet, stats, size: int) -> bool:
        stats.dropped += 1
        stats.dropped_at_arrival += 1
        stats.bytes_dropped += size
        if self.pool is not None:
            self.pool.release(packet)
        return False

    # ------------------------------------------------------------------
    # Fast path relay (instant drop-tail links)
    # ------------------------------------------------------------------
    def _relay_next_fast(self, sim: Simulator, queue) -> None:
        # Instant links serialize in zero time, but the same-time relay
        # entry is load-bearing: it FIFO-yields between chains that
        # share a timestamp (multi-packet bursts from several senders
        # round-robin through the agenda exactly as the generic path
        # interleaved them), so the entry stays — only the queue ops
        # and the busy_time += 0.0 are elided.
        backing = queue._queue
        head = queue._head
        if head >= len(backing):
            self._busy = False
            return
        packet = backing[head]
        backing[head] = None
        head += 1
        if head > 64 and head * 2 > len(backing):
            queue._queue = backing[head:]
            head = 0
        queue._head = head
        size = packet.size_bytes
        queue._bytes -= size
        stats = queue.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        self._busy = True
        sim.schedule_call(0.0, self._relay_done_fast, packet)

    def _relay_done_fast(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_forwarded += 1
        stats.bytes_forwarded += packet.size_bytes
        sim = self.sim
        if self.delay_s > 0:
            sim.schedule_call(self.delay_s, self.deliver, packet)
        else:
            self.deliver(packet)
        queue = self.queue
        if queue.occupancy_listener is None:
            self._relay_next_fast(sim, queue)
        else:
            self._start_next()

    # ------------------------------------------------------------------
    # Fast path serializer (finite-rate drop-tail links)
    # ------------------------------------------------------------------
    def _serialize_next_fast(self, sim: Simulator, queue) -> None:
        # DropTailQueue.dequeue, inlined (identical bookkeeping,
        # including the amortized head compaction).
        backing = queue._queue
        head = queue._head
        if head >= len(backing):
            self._busy = False
            return
        packet = backing[head]
        backing[head] = None  # allow the packet to be collected
        head += 1
        if head > 64 and head * 2 > len(backing):
            queue._queue = backing[head:]
            head = 0
        queue._head = head
        size = packet.size_bytes
        queue._bytes -= size
        stats = queue.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        self._busy = True
        # Same float expression as transmission_time, so trajectories
        # are unchanged.
        tx_time = size * 8.0 / self.rate_bps
        self.stats.busy_time += tx_time
        sim.schedule_call(tx_time, self._transmission_done_fast, packet)

    def _transmission_done_fast(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_forwarded += 1
        stats.bytes_forwarded += packet.size_bytes
        sim = self.sim
        if self.delay_s > 0:
            sim.schedule_call(self.delay_s, self.deliver, packet)
        else:
            self.deliver(packet)
        # Chain the next serialization; fall back if a listener was
        # attached mid-transmission.
        queue = self.queue
        if queue.occupancy_listener is None:
            self._serialize_next_fast(sim, queue)
        else:
            self._start_next()

    # ------------------------------------------------------------------
    # Dynamic path: re-priceable serialization for time-varying links
    # ------------------------------------------------------------------
    # The epoch token makes serialization-done events cancellable
    # without handles: set_rate() bumps ``_tx_epoch``, so the done
    # event already in the agenda arrives stale and returns without
    # effect, while the re-armed event (pricing the *remaining* bits at
    # the new rate) carries the fresh epoch.  Static links never enter
    # this path, so their trajectories and fast paths are untouched.
    def _start_next_dynamic(self) -> None:
        sim = self.sim
        if self._down:
            if self._tx_packet is None:
                self._busy = False
            return
        if self._tx_packet is None:
            packet = self.queue.dequeue(sim._now)
            if packet is None:
                self._busy = False
                return
            self._tx_packet = packet
            self._tx_bits = packet.size_bytes * 8.0
        self._busy = True
        self._arm_tx()

    def _arm_tx(self) -> None:
        sim = self.sim
        rate = self.rate_bps
        self._tx_rate = rate
        self._tx_armed_at = sim._now
        tx_time = 0.0 if math.isinf(rate) else self._tx_bits / rate
        self._tx_epoch += 1
        sim.schedule_call(tx_time, self._tx_done_dynamic, self._tx_epoch)

    def _tx_done_dynamic(self, epoch: int) -> None:
        if epoch != self._tx_epoch:
            return  # re-priced or suspended; a fresh event supersedes us
        packet = self._tx_packet
        self._tx_packet = None
        rate = self._tx_rate
        if rate > 0 and not math.isinf(rate):
            self.stats.busy_time += self.sim._now - self._tx_armed_at
        stats = self.stats
        stats.packets_forwarded += 1
        stats.bytes_forwarded += packet.size_bytes
        delay = self.delay_s
        rng = self._reorder_rng
        if rng is not None and rng.random() < self._reorder_prob:
            delay += rng.uniform(0.0, self._reorder_extra_s)
        if delay > 0:
            self.sim.schedule_call(delay, self.deliver, packet)
        else:
            self.deliver(packet)
        self._start_next_dynamic()

    # ------------------------------------------------------------------
    # Generic path: virtual-dispatch queue machinery
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if self._dynamic:
            self._start_next_dynamic()
            return
        sim = self.sim
        packet = self.queue.dequeue(sim._now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        # Serialization is never cancelled: take the handle-free agenda
        # fast path, with the rate math inlined.
        if self._instant:
            tx_time = 0.0
        else:
            tx_time = packet.size_bytes * 8.0 / self.rate_bps
            # Skipped on the instant path: += 0.0 per packet is pure
            # hot-loop waste.
            self.stats.busy_time += tx_time
        sim.schedule_call(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_forwarded += 1
        stats.bytes_forwarded += packet.size_bytes
        if self.delay_s > 0:
            self.sim.schedule_call(self.delay_s, self.deliver, packet)
        else:
            self.deliver(packet)
        self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "inf" if math.isinf(self.rate_bps) \
            else f"{self.rate_bps / 1e6:g}Mbps"
        return f"Link({self.name}, {rate}, {self.delay_s * 1e3:g}ms)"


def _unconnected(packet: Packet) -> None:
    raise RuntimeError(
        "link delivered a packet but no network is attached; "
        "add the link to a Network before sending")
