"""Point-to-point links with finite rate and propagation delay.

A :class:`Link` models the canonical store-and-forward pipe: packets are
held in an attached :class:`~repro.sim.queues.QueueDiscipline`, serialized
one at a time at ``rate_bps``, then delivered ``delay_s`` seconds later.
Links are unidirectional; full-duplex paths are built from two links.

The link does not know the topology.  When a packet finishes propagating
the link hands it to ``deliver`` — a callback installed by
:class:`~repro.sim.network.Network` that advances the packet along its
source route.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline

__all__ = ["Link", "LinkStats"]


class LinkStats:
    """Per-link forwarding counters (utilization reporting)."""

    __slots__ = ("packets_forwarded", "bytes_forwarded", "busy_time")

    def __init__(self) -> None:
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        self.busy_time = 0.0

    def utilization(self, rate_bps: float, elapsed: float) -> float:
        """Fraction of ``elapsed`` the link spent transmitting."""
        if elapsed <= 0 or math.isinf(rate_bps):
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class Link:
    """A unidirectional link: queue -> serializer -> propagation.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving the link.
    rate_bps:
        Transmission rate in bits/second.  ``float('inf')`` models an
        instantaneous (access) link.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        Queue discipline holding packets awaiting transmission.  Defaults
        to an unbounded drop-tail FIFO.
    name:
        Label used in traces and error messages.
    """

    __slots__ = ("sim", "rate_bps", "delay_s", "queue", "name",
                 "deliver", "stats", "_busy", "_instant")

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 queue: Optional[QueueDiscipline] = None,
                 name: str = "link"):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name
        #: Set by the Network; called with each packet that crosses the link.
        self.deliver: Callable[[Packet], None] = _unconnected
        self.stats = LinkStats()
        self._busy = False
        self._instant = math.isinf(rate_bps)

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds to serialize ``size_bytes`` at this link's rate."""
        if math.isinf(self.rate_bps):
            return 0.0
        return size_bytes * 8.0 / self.rate_bps

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.  Returns False if the queue drops it."""
        # sim._now, not sim.now: this runs once per packet per hop, and
        # the property dispatch shows up in kernel profiles.
        admitted = self.queue.enqueue(packet, self.sim._now)
        if admitted and not self._busy:
            self._start_next()
        return admitted

    def _start_next(self) -> None:
        sim = self.sim
        packet = self.queue.dequeue(sim._now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        # Serialization is never cancelled: take the handle-free agenda
        # fast path, with the rate math inlined (same float expression
        # as transmission_time, so trajectories are unchanged).
        tx_time = 0.0 if self._instant \
            else packet.size_bytes * 8.0 / self.rate_bps
        self.stats.busy_time += tx_time
        sim.schedule_call(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_forwarded += 1
        stats.bytes_forwarded += packet.size_bytes
        if self.delay_s > 0:
            self.sim.schedule_call(self.delay_s, self.deliver, packet)
        else:
            self.deliver(packet)
        self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "inf" if math.isinf(self.rate_bps) \
            else f"{self.rate_bps / 1e6:g}Mbps"
        return f"Link({self.name}, {rate}, {self.delay_s * 1e3:g}ms)"


def _unconnected(packet: Packet) -> None:
    raise RuntimeError(
        "link delivered a packet but no network is attached; "
        "add the link to a Network before sending")
