"""sfqCoDel: stochastic fair queueing with per-queue CoDel.

The paper's strongest human-designed baseline is "Cubic-over-sfqCoDel":
TCP Cubic endpoints assisted by the sfqCoDel gateway discipline of
Nichols (pollere.net's ``sfqcodel.cc``), which combines

* **stochastic fair queueing** (McKenney 1990): flows are hashed into a
  fixed number of buckets, and buckets are served by deficit round-robin
  so that each backlogged flow gets an even share of the link, and
* **CoDel** per bucket, so every flow's *own* standing queue is kept near
  the 5 ms target.

Like the fq_codel Linux implementation, buckets holding newly-active
flows are served before old ones (one quantum of priority), which gives
short/new flows low latency even under load.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .codel import CODEL_INTERVAL, CODEL_TARGET, CoDelState
from .packet import Packet
from .queues import QueueDiscipline

__all__ = ["SfqCoDelQueue", "SFQ_DEFAULT_BUCKETS", "SFQ_DEFAULT_QUANTUM"]

#: Default number of hash buckets (matches fq_codel's default of 1024).
SFQ_DEFAULT_BUCKETS = 1024

#: DRR quantum in bytes: one MTU per round.
SFQ_DEFAULT_QUANTUM = 1514


class _Bucket:
    """One SFQ bucket: a FIFO plus its own CoDel state and DRR deficit."""

    __slots__ = ("index", "packets", "head", "bytes", "deficit", "codel",
                 "active")

    def __init__(self, index: int, target: float, interval: float):
        self.index = index
        self.packets: List[Packet] = []
        self.head = 0
        self.bytes = 0
        self.deficit = 0
        self.codel = CoDelState(target=target, interval=interval)
        self.active = False

    def __len__(self) -> int:
        return len(self.packets) - self.head

    def push(self, packet: Packet) -> None:
        self.packets.append(packet)
        self.bytes += packet.size_bytes

    def pop(self) -> Optional[Packet]:
        if self.head >= len(self.packets):
            return None
        packet = self.packets[self.head]
        self.packets[self.head] = None
        self.head += 1
        if self.head > 64 and self.head * 2 > len(self.packets):
            self.packets = self.packets[self.head:]
            self.head = 0
        self.bytes -= packet.size_bytes
        return packet

    def peek_is_empty(self) -> bool:
        return self.head >= len(self.packets)


class SfqCoDelQueue(QueueDiscipline):
    """Stochastic-fair-queueing CoDel (the paper's gateway AQM baseline).

    Parameters
    ----------
    capacity_packets:
        Total buffer across all buckets.  On overflow the packet at the
        head of the *longest* bucket is dropped (fq_codel's policy) so a
        single aggressive flow cannot starve the others of buffer space.
    n_buckets:
        Number of hash buckets.
    quantum:
        DRR quantum in bytes.
    ecn_threshold:
        When set, the queue is ECN-enabled: per-bucket CoDel drop
        decisions CE-mark ECT packets instead of dropping them, and
        the aggregate occupancy applies a DCTCP-style instantaneous
        threshold mark at enqueue.  Overflow eviction still drops —
        ECN never creates buffer space.
    """

    def __init__(self, capacity_packets: float = math.inf,
                 n_buckets: int = SFQ_DEFAULT_BUCKETS,
                 quantum: int = SFQ_DEFAULT_QUANTUM,
                 target: float = CODEL_TARGET,
                 interval: float = CODEL_INTERVAL,
                 ecn_threshold: Optional[float] = None):
        super().__init__()
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.capacity_packets = capacity_packets
        self.n_buckets = n_buckets
        self.quantum = quantum
        self.ecn_threshold = ecn_threshold
        self._target = target
        self._interval = interval
        self._buckets: Dict[int, _Bucket] = {}
        self._new_flows: List[_Bucket] = []
        self._old_flows: List[_Bucket] = []
        self._total_packets = 0
        self._total_bytes = 0

    def __len__(self) -> int:
        return self._total_packets

    @property
    def byte_length(self) -> int:
        return self._total_bytes

    def _bucket_for(self, flow_id: int) -> _Bucket:
        # Deterministic mixing hash so experiments are reproducible across
        # runs and Python processes (hash() is salted for str, not int,
        # but we avoid built-in hash entirely for clarity).
        mixed = (flow_id * 2654435761) & 0xFFFFFFFF
        index = mixed % self.n_buckets
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = _Bucket(index, self._target, self._interval)
            self._buckets[index] = bucket
        return bucket

    def enqueue(self, packet: Packet, now: float) -> bool:
        bucket = self._bucket_for(packet.flow_id)
        packet.enqueued_at = now
        bucket.push(packet)
        self._total_packets += 1
        self._total_bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size_bytes
        threshold = self.ecn_threshold
        if (threshold is not None and packet.ecn_capable
                and not packet.ecn_ce
                and self._total_packets > threshold):
            packet.ecn_ce = True
            self.stats.marked += 1
        if not bucket.active:
            bucket.active = True
            bucket.deficit = self.quantum
            self._new_flows.append(bucket)
        if self._total_packets > self.capacity_packets:
            self._drop_from_longest(now)
        self._notify(now)
        return True

    def _drop_from_longest(self, now: float) -> None:
        """fq_codel overflow policy: drop at the head of the fattest bucket."""
        longest = max(self._buckets.values(), key=lambda b: b.bytes)
        victim = longest.pop()
        if victim is None:  # pragma: no cover - only if counters drift
            return
        self._total_packets -= 1
        self._total_bytes -= victim.size_bytes
        self.stats.dropped += 1
        self.stats.bytes_dropped += victim.size_bytes
        if self.pool is not None:
            self.pool.release(victim)

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            bucket = self._next_bucket()
            if bucket is None:
                self._notify(now)
                return None
            packet = self._codel_dequeue(bucket, now)
            if packet is None:
                # Bucket drained (possibly by CoDel drops): retire it from
                # the schedule.  If it was a "new" flow it moves nowhere —
                # it will re-enter as new on its next packet.
                bucket.active = False
                continue
            bucket.deficit -= packet.size_bytes
            self.stats.dequeued += 1
            self.stats.bytes_dequeued += packet.size_bytes
            self._notify(now)
            return packet

    def _next_bucket(self) -> Optional[_Bucket]:
        """DRR scheduling with new-flow priority (fq_codel style)."""
        while True:
            if self._new_flows:
                queue_list = self._new_flows
            elif self._old_flows:
                queue_list = self._old_flows
            else:
                return None
            bucket = queue_list[0]
            if bucket.deficit <= 0:
                bucket.deficit += self.quantum
                queue_list.pop(0)
                self._old_flows.append(bucket)
                continue
            if bucket.peek_is_empty():
                queue_list.pop(0)
                if queue_list is self._new_flows and not bucket.peek_is_empty():
                    self._old_flows.append(bucket)  # pragma: no cover
                else:
                    bucket.active = False
                continue
            return bucket

    def _codel_dequeue(self, bucket: _Bucket, now: float) -> Optional[Packet]:
        """Run the bucket's CoDel state machine until a packet survives."""
        while True:
            packet = bucket.pop()
            if packet is None:
                return None
            self._total_packets -= 1
            self._total_bytes -= packet.size_bytes
            empty_after = bucket.peek_is_empty()
            if bucket.codel.should_drop(packet, now, empty_after):
                if self.ecn_threshold is not None and packet.ecn_capable:
                    # ECN mode: mark and transmit (mark-never-drop).
                    if not packet.ecn_ce:
                        packet.ecn_ce = True
                        self.stats.marked += 1
                    return packet
                self.stats.dropped += 1
                self.stats.bytes_dropped += packet.size_bytes
                if self.pool is not None:
                    self.pool.release(packet)
                continue
            return packet
