"""Queueing disciplines: the base interface and drop-tail FIFO.

Every bottleneck gateway in the paper's training scenarios uses a FIFO
queue (paper section 3.1).  Buffer sizes appear in three flavours across
the experiments:

* a multiple of the bandwidth-delay product (e.g. "5 BDP", Table 1),
* a byte cap (e.g. 250 kB in Figure 7),
* "no drop" — an infinite buffer (Table 3b, Table 7).

:class:`DropTailQueue` covers all three via packet or byte capacities of
``float('inf')``.  AQM variants (CoDel, sfqCoDel) subclass
:class:`QueueDiscipline` in their own modules.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from .packet import Packet

__all__ = ["QueueStats", "QueueDiscipline", "DropTailQueue"]


class QueueStats:
    """Counters shared by every queue discipline.

    ``dropped`` counts every lost packet; ``dropped_at_arrival`` is the
    subset rejected before admission (tail drops).  The difference is
    packets dropped *after* admission (AQM dequeue drops, SFQ overflow
    evictions), which is what makes :attr:`resident` exact for every
    discipline.  ``marked`` counts ECN CE marks (never double-counted
    per packet); a marked packet is still enqueued/dequeued normally.
    """

    __slots__ = ("enqueued", "dequeued", "dropped", "dropped_at_arrival",
                 "bytes_enqueued", "bytes_dequeued", "bytes_dropped",
                 "marked")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.dropped_at_arrival = 0
        self.bytes_enqueued = 0
        self.bytes_dequeued = 0
        self.bytes_dropped = 0
        self.marked = 0

    @property
    def resident(self) -> int:
        """Packets currently in the queue implied by the counters."""
        dropped_after_admission = self.dropped - self.dropped_at_arrival
        return self.enqueued - self.dequeued - dropped_after_admission

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueueStats(enq={self.enqueued} deq={self.dequeued} "
                f"drop={self.dropped})")


class QueueDiscipline:
    """Interface implemented by all queueing disciplines.

    ``enqueue`` returns ``True`` if the packet was admitted and ``False``
    if it was dropped.  ``dequeue`` returns the next packet to transmit or
    ``None``; AQM disciplines may silently drop packets inside ``dequeue``
    (the counters record this).  ``occupancy_listener``, when set, is
    called as ``listener(now, packets_in_queue)`` after every enqueue,
    dequeue, and drop — the queue-trace experiment (Figure 8) uses it.
    """

    def __init__(self) -> None:
        self.stats = QueueStats()
        self.occupancy_listener: Optional[Callable[[float, int], None]] = None
        #: Set by :meth:`~repro.sim.network.Network.add_link`: dropped
        #: packets are released back to the network's free list instead
        #: of becoming garbage.  ``None`` (standalone queues, unit
        #: tests) keeps drops inert.
        self.pool = None
        #: ECN marking threshold in packets, or ``None`` for a
        #: non-ECN queue.  Subclasses that support marking accept it as
        #: a constructor parameter; the link layer reads it to decide
        #: whether the monomorphic drop-tail fast path (which bypasses
        #: ``enqueue``) is safe.
        self.ecn_threshold: Optional[float] = None

    def enqueue(self, packet: Packet, now: float) -> bool:
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def byte_length(self) -> int:
        raise NotImplementedError

    def _notify(self, now: float) -> None:
        if self.occupancy_listener is not None:
            self.occupancy_listener(now, len(self))


class DropTailQueue(QueueDiscipline):
    """A FIFO queue that drops arriving packets once full.

    Parameters
    ----------
    capacity_packets:
        Maximum number of queued packets.  ``float('inf')`` for the
        paper's "no drop" buffers.
    capacity_bytes:
        Optional byte cap (used by the 250 kB buffer of Figure 7).  The
        queue drops an arriving packet if admitting it would exceed
        *either* limit.
    ecn_threshold:
        DCTCP-style instantaneous marking threshold *K* in packets:
        when admitting a packet leaves more than ``K`` packets queued,
        an ECT packet is CE-marked instead of waiting for a tail drop
        (drops still happen at capacity; marking never drops).
        ``None`` (default) disables ECN entirely and keeps the
        link-layer fast path.
    """

    def __init__(self, capacity_packets: float = math.inf,
                 capacity_bytes: float = math.inf,
                 ecn_threshold: Optional[float] = None):
        super().__init__()
        if capacity_packets < 1 and capacity_packets != 0:
            raise ValueError("capacity_packets must be >= 1 (or 0 to drop all)")
        if ecn_threshold is not None and ecn_threshold < 0:
            raise ValueError("ecn_threshold must be >= 0 packets")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold = ecn_threshold
        self._queue: List[Packet] = []
        self._head = 0            # index of the logical front (amortized pop)
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._queue) - self._head

    @property
    def byte_length(self) -> int:
        return self._bytes

    def enqueue(self, packet: Packet, now: float) -> bool:
        stats = self.stats
        size = packet.size_bytes
        would_overflow = (
            len(self._queue) - self._head + 1 > self.capacity_packets
            or self._bytes + size > self.capacity_bytes
        )
        listener = self.occupancy_listener
        if would_overflow:
            stats.dropped += 1
            stats.dropped_at_arrival += 1
            stats.bytes_dropped += size
            if listener is not None:
                listener(now, len(self))
            if self.pool is not None:
                self.pool.release(packet)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += size
        stats.enqueued += 1
        stats.bytes_enqueued += size
        threshold = self.ecn_threshold
        if (threshold is not None and packet.ecn_capable
                and not packet.ecn_ce
                and len(self._queue) - self._head > threshold):
            packet.ecn_ce = True
            stats.marked += 1
        if listener is not None:
            listener(now, len(self))
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        queue = self._queue
        head = self._head
        if head >= len(queue):
            return None
        packet = queue[head]
        queue[head] = None  # allow the packet to be collected
        head += 1
        if head > 64 and head * 2 > len(queue):
            # Compact the backing list once the dead prefix dominates.
            self._queue = queue[head:]
            head = 0
        self._head = head
        size = packet.size_bytes
        self._bytes -= size
        stats = self.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        listener = self.occupancy_listener
        if listener is not None:
            listener(now, len(self))
        return packet
