"""Discrete-event simulation engine.

This module is the foundation of the packet-level simulator that replaces
ns-2 (testing) and Remy's internal simulator (training) from the paper.
It provides a single-threaded event loop with a binary-heap agenda,
cancellable events, and restartable timers.

Design notes
------------
* Agenda entries are plain ``(time, seq, event, callback, args)`` tuples,
  ordered by ``(time, seq)`` so that events scheduled for the same
  instant fire in FIFO order.  Heap comparisons therefore resolve at the
  C level on the leading float (falling back to the unique integer
  ``seq`` on ties, so the comparison never reaches the event slot) and
  never dispatch into Python — the previous design heap-ordered Event
  objects through ``Event.__lt__``, one interpreted call per
  comparison, which profiled as ~10% of a saturated run.  Determinism
  of the event order is load-bearing: the Remy optimizer compares
  candidate rule tables using common random numbers, which only works
  if a given seed always produces the same trajectory.
* The common case — link serialization, propagation, pacing chains — is
  never cancelled, so :meth:`Simulator.schedule_call` skips allocating a
  cancellable :class:`Event` handle entirely and stores ``None`` in the
  entry's event slot.
* Cancellation is handled lazily: a cancelled event's entry stays in the
  heap and is skipped when popped.  This keeps :meth:`Simulator.schedule`
  and :meth:`Event.cancel` O(log n) and O(1) respectively.
* The agenda is compacted (rebuilt without cancelled entries) whenever
  lazily-cancelled events outnumber live ones.  Retransmission-timer
  -heavy runs restart a timer per ACK, so without compaction dead events
  pile up and every push/pop pays log of the *dead* agenda size.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "Timer"]


class Event:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the callback itself lives in
    the agenda entry, so the handle only carries what cancellation and
    deadline introspection need.
    """

    __slots__ = ("time", "seq", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the loop skips it.  Safe to call twice."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    2.0
    """

    #: Compact when cancelled entries exceed half the agenda, but never
    #: bother below this size — tiny heaps are cheap to walk anyway.
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._now = 0.0
        #: Agenda entries: (time, seq, Event-or-None, callback, args).
        self._heap: list[tuple] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._running = False
        #: Nesting depth of synchronous (direct-call) link deliveries;
        #: bounded by the link layer so all-instant networks iterate
        #: through the agenda instead of overflowing the C stack.
        self._sync_depth = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for kernel benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still in the agenda, including lazily-cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled events still sitting in the agenda."""
        return self._cancelled_pending

    def schedule(self, delay: float,
                 callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        # Body of schedule_at, inlined: this runs once per scheduled
        # event, and the relative form never needs the in-the-past check
        # (now + nonnegative delay >= now).
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, sim=self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event, callback, args))
        if (self._cancelled_pending * 2 > len(heap)
                and len(heap) >= self._COMPACT_MIN_SIZE):
            self._compact()
        return event

    def schedule_at(self, time: float,
                    callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self._now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, sim=self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event, callback, args))
        if (self._cancelled_pending * 2 > len(heap)
                and len(heap) >= self._COMPACT_MIN_SIZE):
            self._compact()
        return event

    def schedule_call(self, delay: float,
                      callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget fast path: like :meth:`schedule` but returns
        no handle, so nothing is allocated besides the agenda entry.

        Use for events that are never cancelled (link serialization and
        propagation, chained workload ticks); ordering relative to
        :meth:`schedule` is identical — both consume the same global
        sequence counter.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, seq, None, callback, args))
        if (self._cancelled_pending * 2 > len(heap)
                and len(heap) >= self._COMPACT_MIN_SIZE):
            self._compact()

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1

    def _compact(self) -> None:
        """Rebuild the agenda without cancelled entries.

        In-place (``heap[:] =``) so a drain loop holding a reference to
        the list keeps seeing the live agenda.  Event order is preserved
        by the (time, seq) ordering, so compaction never changes the
        trajectory — only the constant factors.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if entry[2] is None or not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_pending = 0

    def _drain(self, limit: float) -> None:
        """Pop-and-fire every live event with ``time <= limit``."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            event_time = entry[0]
            if event_time > limit:
                break
            pop(heap)
            event = entry[2]
            if event is not None:
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                # Detach before firing: a cancel() on an event that
                # already left the heap must not drift the
                # cancelled-pending count.
                event._sim = None
            self._now = event_time
            self._events_processed += 1
            entry[3](*entry[4])

    def run(self, until: float) -> None:
        """Run the event loop until simulated time ``until``.

        Events scheduled exactly at ``until`` are executed; afterwards the
        clock is left at ``until`` even if the agenda drained early.
        """
        self._running = True
        try:
            self._drain(until)
        finally:
            self._running = False
        if self._now < until:
            self._now = until

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Run until the agenda is empty or ``max_time`` is reached."""
        self._drain(max_time)


class Timer:
    """A restartable one-shot timer (used for retransmission timeouts).

    >>> sim = Simulator()
    >>> hits = []
    >>> timer = Timer(sim, lambda: hits.append(sim.now))
    >>> timer.restart(1.0)
    >>> timer.restart(2.0)   # supersedes the first deadline
    >>> sim.run(until=3.0)
    >>> hits
    [2.0]

    Restarts are *lazy*: retransmission timers are re-armed on every
    ACK but almost never fire, and the common restart pushes the
    deadline **later**.  Eagerly cancelling and re-scheduling per
    restart cost one :class:`Event` allocation plus a dead agenda
    entry per ACK; instead the armed entry is left in place and only
    the true deadline is updated.  When the stale entry fires early it
    re-arms itself for the remaining time — one agenda entry per
    elapsed timeout interval instead of one per restart.  Restarting
    to an *earlier* deadline (or cancelling) still cancels eagerly, so
    the agenda-compaction bound on dead entries is preserved.

    One known deviation from the eager design: the entry that finally
    fires gets its agenda seq at the last stale-entry pop, not at the
    last ``restart`` — so an unrelated event scheduled in between and
    landing at *exactly* the deadline float wins the FIFO tie where it
    previously lost it.  Still fully deterministic (same seed, same
    trajectory); the golden digests and the pre-port table parity
    suite pass, and any future collision would surface there as a
    digest bump to be taken knowingly.
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._deadline: Optional[float] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or None."""
        return self._deadline

    def restart(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        sim = self._sim
        deadline = sim._now + delay
        self._deadline = deadline
        event = self._event
        if event is not None and not event.cancelled:
            if event.time <= deadline:
                return          # lazy: fire early, re-arm for the rest
            event.cancel()
        self._event = sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        self._deadline = None
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:  # pragma: no cover - cancel() also cancels
            return            # the event, so a stale fire needs a race
        sim = self._sim
        if deadline > sim._now:
            # The deadline moved while this entry was in flight: re-arm
            # at the exact stored deadline (schedule_at, not a relative
            # delay — ``now + (deadline - now)`` can land an ulp off,
            # and the fire time must be the float the restart computed).
            self._event = sim.schedule_at(deadline, self._fire)
            return
        self._deadline = None
        self._callback()
