"""Simulation traces.

:class:`QueueTrace` records the occupancy of a queue over time together
with its cumulative drop count — exactly the data plotted in the paper's
Figure 8 (queue size in packets vs. time, with packet-drop markers).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .queues import QueueDiscipline

__all__ = ["QueueTrace"]


class QueueTrace:
    """Record (time, queue length, cumulative drops) on every queue event.

    Attach at construction time; the trace hooks the queue's
    ``occupancy_listener``, which every discipline fires after each
    enqueue, dequeue, and drop.
    """

    def __init__(self, queue: QueueDiscipline):
        if queue.occupancy_listener is not None:
            raise ValueError("queue already has an occupancy listener")
        self.queue = queue
        self.times: List[float] = []
        self.lengths: List[int] = []
        self.drops: List[int] = []
        queue.occupancy_listener = self._record

    def _record(self, now: float, length: int) -> None:
        self.times.append(now)
        self.lengths.append(length)
        self.drops.append(self.queue.stats.dropped)

    def __len__(self) -> int:
        return len(self.times)

    def drop_times(self) -> List[float]:
        """Times at which packets were dropped (one entry per drop)."""
        out: List[float] = []
        previous = 0
        for time, total in zip(self.times, self.drops):
            for _ in range(total - previous):
                out.append(time)
            previous = total
        return out

    def sample(self, step_s: float,
               until: float) -> Tuple[np.ndarray, np.ndarray]:
        """Resample the trace onto a regular time grid.

        Returns ``(grid_times, queue_lengths)`` where each grid point
        holds the last observed occupancy at or before that time (a
        zero-order hold) — convenient for plotting and for asserting on
        queue behaviour in tests.
        """
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        grid = np.arange(0.0, until + step_s / 2, step_s)
        if not self.times:
            return grid, np.zeros_like(grid)
        times = np.asarray(self.times)
        lengths = np.asarray(self.lengths, dtype=float)
        indices = np.searchsorted(times, grid, side="right") - 1
        sampled = np.where(indices >= 0, lengths[np.clip(indices, 0, None)],
                           0.0)
        return grid, sampled

    def max_length(self) -> int:
        """Peak queue occupancy observed."""
        return max(self.lengths, default=0)

    def mean_length(self, until: float) -> float:
        """Time-average queue occupancy over [0, until]."""
        if not self.times:
            return 0.0
        total_area = 0.0
        last_time = 0.0
        last_length = 0.0
        for time, length in zip(self.times, self.lengths):
            clipped = min(time, until)
            if clipped > last_time:
                total_area += last_length * (clipped - last_time)
                last_time = clipped
            last_length = length
            if time >= until:
                break
        if last_time < until:
            total_area += last_length * (until - last_time)
        return total_area / until if until > 0 else 0.0
