"""Packet-level discrete-event network simulator.

This subpackage is the substrate that replaces ns-2 (the paper's testing
simulator) and Remy's internal simulator (the training simulator).  See
DESIGN.md for the substitution rationale.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.link.Link` — rate + propagation-delay pipes.
* Queue disciplines — :class:`~repro.sim.queues.DropTailQueue`,
  :class:`~repro.sim.codel.CoDelQueue`,
  :class:`~repro.sim.sfq_codel.SfqCoDelQueue`.
* :class:`~repro.sim.network.Network` — wires links and flows together.
* Workloads — :class:`~repro.sim.workload.OnOffWorkload` and friends.
* :class:`~repro.sim.tracing.QueueTrace` — Figure 8 style queue traces.
"""

from .codel import CODEL_INTERVAL, CODEL_TARGET, CoDelQueue, CoDelState
from .dynamics import (DynamicsDriver, DynamicsSpec, LinkSchedule,
                       format_outage_token, parse_outage_token)
from .engine import Event, Simulator, Timer
from .link import Link, LinkStats
from .network import FlowPath, Network
from .packet import ACK_SIZE_BYTES, DATA_HEADER_BYTES, Packet
from .queues import DropTailQueue, QueueDiscipline, QueueStats
from .sfq_codel import SfqCoDelQueue
from .tracing import QueueTrace
from .workload import (AlwaysOnWorkload, OnOffWorkload, ScheduledWorkload,
                       Switchable)

__all__ = [
    "Simulator", "Event", "Timer",
    "Packet", "ACK_SIZE_BYTES", "DATA_HEADER_BYTES",
    "QueueDiscipline", "QueueStats", "DropTailQueue",
    "CoDelQueue", "CoDelState", "CODEL_TARGET", "CODEL_INTERVAL",
    "SfqCoDelQueue",
    "Link", "LinkStats",
    "LinkSchedule", "DynamicsSpec", "DynamicsDriver",
    "parse_outage_token", "format_outage_token",
    "Network", "FlowPath",
    "OnOffWorkload", "ScheduledWorkload", "AlwaysOnWorkload", "Switchable",
    "QueueTrace",
]
