"""cProfile plumbing shared by the CLI scripts.

Both ``scripts/run_experiments.py`` and ``scripts/train_assets.py``
accept ``--profile [PATH]``:

* bare ``--profile`` prints the top cumulative-time functions to
  stderr when the run finishes (quick "where did the time go?");
* ``--profile run.prof`` dumps binary profile data for ``pstats`` or
  snakeviz, and still prints a one-line pointer.

Profiling observes only the submitting process: simulations fanned out
to pool workers (``--jobs N > 1``) appear as time spent waiting in the
executor, so profile hot-path work with ``--jobs 1``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["maybe_profile", "add_profile_argument"]

#: Functions shown by the bare --profile stderr report.
_TOP_FUNCTIONS = 40


def add_profile_argument(parser) -> None:
    """Install the shared ``--profile [PATH]`` option on ``parser``."""
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="profile the run with cProfile; with PATH, dump binary "
             "stats there (pstats/snakeviz format), otherwise print "
             "the top functions to stderr (use --jobs 1 to see "
             "simulation internals rather than pool waiting)")


@contextmanager
def maybe_profile(spec: Optional[str]) -> Iterator[None]:
    """Run the body under cProfile when ``spec`` is set.

    ``spec`` is ``None`` (disabled), ``"-"`` (report to stderr), or a
    path for a binary stats dump.
    """
    if spec is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        if spec == "-":
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(_TOP_FUNCTIONS)
        else:
            profiler.dump_stats(spec)
            print(f"profile written to {spec} "
                  f"(inspect with python -m pstats, or snakeviz)",
                  file=sys.stderr)
