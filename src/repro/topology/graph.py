"""Topology descriptions and their compilation into simulations.

A :class:`Topology` is a declarative picture of a network: a directed
multigraph of :class:`LinkSpec` edges plus a list of :class:`FlowSpec`
endpoints.  :meth:`Topology.build` compiles it into a live
:class:`~repro.sim.network.Network` — instantiating one
:class:`~repro.sim.link.Link` per edge and computing each flow's forward
and reverse source routes (shortest path by propagation delay, via
networkx).

Factories for the paper's two topologies live in
:mod:`repro.topology.dumbbell` and :mod:`repro.topology.parking_lot`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.network import FlowPath, Network
from ..sim.queues import DropTailQueue, QueueDiscipline

__all__ = ["LinkSpec", "FlowSpec", "Topology", "BuiltTopology"]

QueueFactory = Callable[[], QueueDiscipline]


def _default_queue_factory() -> QueueDiscipline:
    return DropTailQueue()


@dataclass
class LinkSpec:
    """Parameters of one directed link in a topology."""

    rate_bps: float
    delay_s: float
    queue_factory: QueueFactory = field(default=_default_queue_factory)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


@dataclass(frozen=True)
class FlowSpec:
    """One sender-receiver pair and where they attach."""

    flow_id: int
    src: str
    dst: str


class BuiltTopology:
    """The result of compiling a :class:`Topology` against a simulator."""

    def __init__(self, network: Network,
                 links: Dict[Tuple[str, str], Link],
                 paths: Dict[int, FlowPath]):
        self.network = network
        self.links = links
        self.paths = paths

    def link(self, src: str, dst: str) -> Link:
        """Look up the live link for the directed edge ``src -> dst``."""
        return self.links[(src, dst)]


class Topology:
    """A declarative network description.

    Example — a two-node link with a flow across it:

    >>> topo = Topology()
    >>> topo.add_link("a", "b", LinkSpec(rate_bps=1e6, delay_s=0.01))
    >>> topo.add_link("b", "a", LinkSpec(rate_bps=1e6, delay_s=0.01))
    >>> _ = topo.add_flow("a", "b")
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._flows: List[FlowSpec] = []
        self._next_flow_id = 0

    @property
    def flows(self) -> Tuple[FlowSpec, ...]:
        return tuple(self._flows)

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def add_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Add a directed link.  Adding the same edge twice is an error."""
        if self._graph.has_edge(src, dst):
            raise ValueError(f"edge {src}->{dst} already present")
        self._graph.add_edge(src, dst, spec=spec)

    def add_duplex_link(self, a: str, b: str, spec: LinkSpec,
                        reverse_spec: Optional[LinkSpec] = None) -> None:
        """Add both directions; the reverse defaults to a mirror of ``spec``."""
        self.add_link(a, b, spec)
        self.add_link(b, a, reverse_spec if reverse_spec is not None
                      else LinkSpec(spec.rate_bps, spec.delay_s,
                                    spec.queue_factory))

    def add_flow(self, src: str, dst: str,
                 flow_id: Optional[int] = None) -> FlowSpec:
        """Declare a flow from ``src`` to ``dst`` (ids auto-assigned)."""
        if flow_id is None:
            flow_id = self._next_flow_id
        if any(f.flow_id == flow_id for f in self._flows):
            raise ValueError(f"duplicate flow id {flow_id}")
        self._next_flow_id = max(self._next_flow_id, flow_id + 1)
        flow = FlowSpec(flow_id, src, dst)
        self._flows.append(flow)
        return flow

    def _route_nodes(self, src: str, dst: str) -> List[str]:
        """Shortest path by propagation delay (ties broken by hop count)."""
        def weight(u: str, v: str, data: dict) -> float:
            spec: LinkSpec = data["spec"]
            # A small constant per hop breaks zero-delay ties determinately.
            return spec.delay_s + 1e-9
        try:
            return nx.shortest_path(self._graph, src, dst, weight=weight)
        except nx.NetworkXNoPath as exc:
            raise ValueError(f"no path from {src!r} to {dst!r}") from exc

    def build(self, sim: Simulator) -> BuiltTopology:
        """Instantiate links, wire flows, and return the live network."""
        network = Network(sim)
        links: Dict[Tuple[str, str], Link] = {}
        for src, dst, data in self._graph.edges(data=True):
            spec: LinkSpec = data["spec"]
            link = Link(sim, spec.rate_bps, spec.delay_s,
                        queue=spec.queue_factory(),
                        name=f"{src}->{dst}")
            network.add_link(link)
            links[(src, dst)] = link

        paths: Dict[int, FlowPath] = {}
        for flow in self._flows:
            forward_nodes = self._route_nodes(flow.src, flow.dst)
            reverse_nodes = self._route_nodes(flow.dst, flow.src)
            data_route = [links[(u, v)] for u, v in
                          zip(forward_nodes, forward_nodes[1:])]
            ack_route = [links[(u, v)] for u, v in
                         zip(reverse_nodes, reverse_nodes[1:])]
            paths[flow.flow_id] = network.add_flow(
                flow.flow_id, data_route, ack_route)
        return BuiltTopology(network, links, paths)

    def min_rtt(self, flow: FlowSpec, data_bytes: int = 1500,
                ack_bytes: int = 40) -> float:
        """Unloaded RTT of a flow, without building the simulation."""
        forward = self._route_nodes(flow.src, flow.dst)
        reverse = self._route_nodes(flow.dst, flow.src)
        total = 0.0
        for nodes, size in ((forward, data_bytes), (reverse, ack_bytes)):
            for u, v in zip(nodes, nodes[1:]):
                spec: LinkSpec = self._graph.edges[u, v]["spec"]
                tx = 0.0 if math.isinf(spec.rate_bps) \
                    else size * 8.0 / spec.rate_bps
                total += spec.delay_s + tx
        return total
