"""The dumbbell topology: n senders sharing a single bottleneck.

Every training scenario in the paper except the parking lot (Figure 5)
is a dumbbell (section 3.1): senders attach to gateway ``A``, receivers
to gateway ``B``, and the single ``A -> B`` link is the bottleneck whose
buffer size and queue discipline the experiments vary.

Modeling choices (documented per DESIGN.md section 2):

* Access links are infinitely fast with zero delay — the senders
  effectively sit at the bottleneck queue, as in the paper's Remy
  simulator.  All propagation delay lives on the bottleneck hop, split
  evenly between the two directions so the unloaded RTT is ``rtt_s``.
* The reverse (ACK) path has the same propagation delay but infinite
  rate: ACKs never queue, matching the paper's setup where only the data
  direction is ever congested.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.queues import DropTailQueue
from .graph import LinkSpec, QueueFactory, Topology

__all__ = ["dumbbell", "bdp_packets"]


def bdp_packets(rate_bps: float, rtt_s: float,
                packet_bytes: int = 1500) -> float:
    """Bandwidth-delay product expressed in packets."""
    return rate_bps * rtt_s / (8.0 * packet_bytes)


def dumbbell(n_senders: int,
             bottleneck_rate_bps: float,
             rtt_s: float,
             queue_factory: Optional[QueueFactory] = None) -> Topology:
    """Build an ``n_senders``-flow dumbbell.

    Parameters
    ----------
    n_senders:
        Number of sender/receiver pairs (flows 0 .. n-1).
    bottleneck_rate_bps:
        Rate of the shared ``A -> B`` link.
    rtt_s:
        Unloaded round-trip propagation delay.
    queue_factory:
        Builds the bottleneck queue discipline (default: unbounded
        drop-tail).  Called exactly once.
    """
    if n_senders < 1:
        raise ValueError("need at least one sender")
    if rtt_s < 0:
        raise ValueError("rtt_s must be non-negative")
    topo = Topology()
    one_way = rtt_s / 2.0
    factory = queue_factory if queue_factory is not None else DropTailQueue

    topo.add_link("A", "B", LinkSpec(bottleneck_rate_bps, one_way,
                                     queue_factory=factory))
    topo.add_link("B", "A", LinkSpec(math.inf, one_way))
    for i in range(n_senders):
        sender, receiver = f"s{i}", f"r{i}"
        topo.add_duplex_link(sender, "A", LinkSpec(math.inf, 0.0))
        topo.add_duplex_link("B", receiver, LinkSpec(math.inf, 0.0))
        topo.add_flow(sender, receiver, flow_id=i)
    return topo
