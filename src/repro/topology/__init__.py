"""Topology factories for the paper's network models."""

from .dumbbell import bdp_packets, dumbbell
from .graph import BuiltTopology, FlowSpec, LinkSpec, Topology
from .parking_lot import FLOW_BOTH, FLOW_LINK1, FLOW_LINK2, parking_lot

__all__ = [
    "Topology", "LinkSpec", "FlowSpec", "BuiltTopology",
    "dumbbell", "bdp_packets",
    "parking_lot", "FLOW_BOTH", "FLOW_LINK1", "FLOW_LINK2",
]
