"""The two-bottleneck "parking lot" topology of Figure 5.

Three flows over a chain ``A -> B -> C``:

* Flow 1 crosses both links (``A -> C``) and meets both bottlenecks.
* Flow 2 contends with Flow 1 at node A's queue (``A -> B`` only).
* Flow 3 contends with Flow 1 at node B's queue (``B -> C`` only).

The paper gives each hop 75 ms of propagation delay and sweeps both link
speeds between 10 and 100 Mbps (section 4.4).  Flow ids are fixed:
``FLOW_BOTH = 0`` (the two-hop flow), ``FLOW_LINK1 = 1``,
``FLOW_LINK2 = 2`` — experiments index results by these constants.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.queues import DropTailQueue
from .graph import LinkSpec, QueueFactory, Topology

__all__ = ["parking_lot", "FLOW_BOTH", "FLOW_LINK1", "FLOW_LINK2"]

FLOW_BOTH = 0
FLOW_LINK1 = 1
FLOW_LINK2 = 2


def parking_lot(link1_rate_bps: float,
                link2_rate_bps: float,
                per_hop_delay_s: float = 0.075,
                queue_factory1: Optional[QueueFactory] = None,
                queue_factory2: Optional[QueueFactory] = None) -> Topology:
    """Build the Figure 5 parking lot.

    Parameters
    ----------
    link1_rate_bps, link2_rate_bps:
        Rates of the ``A -> B`` and ``B -> C`` bottlenecks.
    per_hop_delay_s:
        One-way propagation delay per hop (75 ms in the paper, so the
        two-hop flow sees a 300 ms unloaded RTT and the one-hop flows
        150 ms each).
    queue_factory1, queue_factory2:
        Queue disciplines for the two bottleneck queues.
    """
    topo = Topology()
    factory1 = queue_factory1 if queue_factory1 is not None else DropTailQueue
    factory2 = queue_factory2 if queue_factory2 is not None else DropTailQueue

    topo.add_link("A", "B", LinkSpec(link1_rate_bps, per_hop_delay_s,
                                     queue_factory=factory1))
    topo.add_link("B", "C", LinkSpec(link2_rate_bps, per_hop_delay_s,
                                     queue_factory=factory2))
    topo.add_link("B", "A", LinkSpec(math.inf, per_hop_delay_s))
    topo.add_link("C", "B", LinkSpec(math.inf, per_hop_delay_s))

    # Flow 1: crosses both bottlenecks.
    topo.add_duplex_link("src1", "A", LinkSpec(math.inf, 0.0))
    topo.add_duplex_link("C", "dst1", LinkSpec(math.inf, 0.0))
    topo.add_flow("src1", "dst1", flow_id=FLOW_BOTH)

    # Flow 2: link 1 only.
    topo.add_duplex_link("src2", "A", LinkSpec(math.inf, 0.0))
    topo.add_duplex_link("B", "dst2", LinkSpec(math.inf, 0.0))
    topo.add_flow("src2", "dst2", flow_id=FLOW_LINK1)

    # Flow 3: link 2 only.
    topo.add_duplex_link("src3", "B", LinkSpec(math.inf, 0.0))
    topo.add_duplex_link("C", "dst3", LinkSpec(math.inf, 0.0))
    topo.add_flow("src3", "dst3", flow_id=FLOW_LINK2)
    return topo
