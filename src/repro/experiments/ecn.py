"""Experiment E10 — ECN marking thresholds vs the modern scheme family.

Beyond the paper: the calibration dumbbell (32 Mbps, 150 ms RTT, two
on/off senders, 5 BDP of drop-tail buffer) with an ECN-capable
bottleneck, swept over the marking threshold *K* in packets.  Schemes:
the calibration Tao, DCTCP (the one ECN-reactive scheme — its cut
depth tracks the marked fraction, so small *K* buys low delay at some
throughput cost), PCC's utility-gradient rate control, and TCP Cubic.
Cubic, PCC and the Tao ignore CE marks, so their rows double as the
control group: the marking threshold must not perturb a non-ECN
scheme (the queue still tail-drops at capacity regardless of *K*).

The table reports the paper's normalized objective next to raw
throughput and queueing delay per ``(scheme, K)`` cell, with the
omniscient dumbbell bound as the reference rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Sequence

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.results import RunResult
from ..core.scenario import NetworkConfig
from .api import (Axis, Cell, Experiment, ExperimentSpec, register,
                  run_experiment)
from .calibration import CALIBRATION_CONFIG
from .common import mean_normalized_score, scored_flows

__all__ = ["ECN_THRESHOLDS", "SPEC", "run"]

#: Marking thresholds in packets.  The calibration BDP is 400 packets;
#: the grid spans deep-mark (K well under the DCTCP guideline of
#: ~0.17 BDP) to mark-never (K at the full 5-BDP buffer, where the
#: queue overflows before it ever marks).
ECN_THRESHOLDS = (25.0, 50.0, 100.0, 200.0, 400.0)

#: Scheme name -> homogeneous sender kinds on the dumbbell.
_SCHEMES = {
    "tao": ("learner", "learner"),
    "dctcp": ("dctcp", "dctcp"),
    "pcc": ("pcc", "pcc"),
    "cubic": ("cubic", "cubic"),
}


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    kinds = _SCHEMES[scheme]
    config = replace(CALIBRATION_CONFIG, sender_kinds=kinds,
                     deltas=tuple(1.0 for _ in kinds),
                     ecn_threshold=float(point["ecn_threshold"]))
    trees = {"learner": "tao_calibration"} if scheme == "tao" else None
    return Cell(config, trees)


def _metrics(scheme: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> Dict[str, object]:
    row: Dict[str, object] = {
        "mean_objective": mean_normalized_score(runs, config)}
    tpts: List[float] = []
    delays: List[float] = []
    for result in runs:
        for flow in scored_flows(result):
            if flow.packets_delivered == 0:
                continue
            tpts.append(flow.throughput_bps)
            delays.append(flow.queueing_delay_s)
    if tpts:
        row["tpt_mbps"] = sum(tpts) / len(tpts) / 1e6
        row["qdelay_ms"] = sum(delays) / len(delays) * 1e3
    return row


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    config = CALIBRATION_CONFIG
    speed_bps = config.link_speed_bps(0)
    n = config.num_senders
    expected = dumbbell_expected_throughput(speed_bps, n, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return {
        "mean_objective": normalized_objective(
            expected, min_delay, speed_bps / n, min_delay),
        "tpt_mbps": expected / 1e6,
        "qdelay_ms": 0.0,
    }


SPEC = ExperimentSpec(
    name="ecn",
    title="E10 — ECN thresholds: Tao vs DCTCP vs PCC vs Cubic",
    schemes=tuple(_SCHEMES),
    axes=(Axis.of("ecn_threshold", ECN_THRESHOLDS),),
    build=_build,
    metrics=_metrics,
    reference=_reference,
    assets=("tao_calibration",),
)


def run(scale=None, trees=None, base_seed: int = 1, executor=None,
        backend: str = "packet"):
    """Run the ECN sweep; returns the generic :class:`SweepResult`.

    Note ``backend="fluid"`` refuses the grid as a whole: PCC is
    packet-only (:func:`repro.sim.fluid.fluid_refusal` names it).  Drop
    the scheme from a copy of :data:`SPEC` to fluid-run the rest.
    """
    from .common import DEFAULT
    scale = scale or DEFAULT
    return run_experiment(SPEC, scale=scale, trees=trees,
                          base_seed=base_seed, executor=executor,
                          backend=backend)


def _render(scale, trees, executor) -> str:
    return run(scale=scale, trees=trees,
               executor=executor).format_table()


register(Experiment(eid="E10", name="ecn", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
