"""Experiment E4 — knowledge of propagation delay (Table 4, Figure 4).

Four Tao protocols trained for RTT ranges {exactly 150 ms, 145-155 ms,
140-160 ms, 50-250 ms} on a 33 Mbps dumbbell are tested across RTTs of
1-300 ms.

The paper's finding: training for exactly one RTT produces a protocol
that collapses below ~50 ms, but even a *little* training diversity
(145-155 ms) yields performance across 1-300 ms commensurate with the
much broader 50-250 ms protocol — so prior knowledge of propagation
delay is not particularly valuable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from .common import DEFAULT, Scale, mean_normalized_score, run_seed_batch

__all__ = ["TAO_RANGES", "RttPoint", "RttResult", "run", "format_table",
           "sweep_rtts"]

#: Design ranges (Table 4a), in milliseconds.
TAO_RANGES: Dict[str, Tuple[float, float]] = {
    "tao_rtt_150": (150.0, 150.0),
    "tao_rtt_145_155": (145.0, 155.0),
    "tao_rtt_140_160": (140.0, 160.0),
    "tao_rtt_50_250": (50.0, 250.0),
}

_BASELINES = ("cubic", "cubic_sfqcodel")
_LINK_MBPS = 33.0
_SENDERS = 2


@dataclass
class RttPoint:
    scheme: str
    rtt_ms: float
    normalized_objective: float
    in_training_range: bool


@dataclass
class RttResult:
    points: List[RttPoint] = field(default_factory=list)

    def series(self, scheme: str) -> List[RttPoint]:
        return sorted((p for p in self.points if p.scheme == scheme),
                      key=lambda p: p.rtt_ms)


def sweep_rtts(points: int) -> List[float]:
    """RTTs covering the 1-300 ms testing range.

    Linear spacing like the paper's Table 4b ("1, 2, 3 ... 300 ms"),
    always including 150 ms so the exactly-150 Tao has an in-range
    point, and always including the 1 ms short-RTT extreme where
    Figure 4's cliffs live.
    """
    if points < 2:
        raise ValueError("need at least two sweep points")
    lo, hi = 1.0, 300.0
    sweep = [lo + (hi - lo) * k / (points - 1) for k in range(points)]
    if not any(abs(value - 150.0) < 1e-9 for value in sweep):
        sweep.append(150.0)
    return sorted(sweep)


def _config_for(rtt_ms: float, kind: str, queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(_LINK_MBPS,), rtt_ms=rtt_ms,
        sender_kinds=(kind,) * _SENDERS, deltas=(1.0,) * _SENDERS,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0, queue=queue)


def _omniscient_point(rtt_ms: float) -> float:
    config = _config_for(rtt_ms, "learner", "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), _SENDERS, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> RttResult:
    """Sweep every scheme across the 1-300 ms testing scenarios.

    The (scheme × RTT × seed) grid goes out as one batch through
    ``executor``.
    """
    if trees is None:
        trees = {}
    loaded = {name: trees.get(name) or load_tree(name)
              for name in TAO_RANGES}
    cells = []   # (scheme, rtt_ms, config, trees, in_training_range)
    for rtt_ms in sweep_rtts(scale.sweep_points):
        for name, (lo, hi) in TAO_RANGES.items():
            config = _config_for(rtt_ms, "learner", "droptail")
            cells.append((name, rtt_ms, config,
                          {"learner": loaded[name]},
                          lo <= rtt_ms <= hi))
        for baseline in _BASELINES:
            queue = "sfq_codel" if baseline == "cubic_sfqcodel" \
                else "droptail"
            config = _config_for(rtt_ms, "cubic", queue)
            cells.append((baseline, rtt_ms, config, None, True))
    batches = run_seed_batch(
        [(config, tree_map) for _, _, config, tree_map, _ in cells],
        scale=scale, base_seed=base_seed, executor=executor)
    result = RttResult()
    for (scheme, rtt_ms, config, _, in_range), runs in zip(cells,
                                                           batches):
        result.points.append(RttPoint(
            scheme=scheme, rtt_ms=rtt_ms,
            normalized_objective=mean_normalized_score(runs, config),
            in_training_range=in_range))
    for rtt_ms in sweep_rtts(scale.sweep_points):
        result.points.append(RttPoint(
            scheme="omniscient", rtt_ms=rtt_ms,
            normalized_objective=_omniscient_point(rtt_ms),
            in_training_range=True))
    return result


def format_table(result: RttResult) -> str:
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    lines = ["Propagation delay (Table 4 / Figure 4)",
             f"{'RTT ms':>8} " + " ".join(f"{s:>16}" for s in schemes)]
    rtts = sorted({p.rtt_ms for p in result.points})
    table = {(p.scheme, p.rtt_ms): p for p in result.points}
    for rtt_ms in rtts:
        cells = []
        for scheme in schemes:
            point = table[(scheme, rtt_ms)]
            marker = "" if point.in_training_range else "*"
            cells.append(
                f"{point.normalized_objective:>15.2f}{marker or ' '}")
        lines.append(f"{rtt_ms:>8.1f} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)
