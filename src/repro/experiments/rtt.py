"""Experiment E4 — knowledge of propagation delay (Table 4, Figure 4).

Four Tao protocols trained for RTT ranges {exactly 150 ms, 145-155 ms,
140-160 ms, 50-250 ms} on a 33 Mbps dumbbell are tested across RTTs of
1-300 ms.

The paper's finding: training for exactly one RTT produces a protocol
that collapses below ~50 ms, but even a *little* training diversity
(145-155 ms) yields performance across 1-300 ms commensurate with the
much broader 50-250 ms protocol — so prior knowledge of propagation
delay is not particularly valuable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from .api import (Axis, Cell, Experiment, ExperimentSpec,
                  baseline_queue, objective_metrics, register,
                  run_experiment)
from .common import DEFAULT, Scale

__all__ = ["TAO_RANGES", "SPEC", "RttPoint", "RttResult", "run",
           "format_table", "sweep_rtts"]

#: Design ranges (Table 4a), in milliseconds.
TAO_RANGES: Dict[str, Tuple[float, float]] = {
    "tao_rtt_150": (150.0, 150.0),
    "tao_rtt_145_155": (145.0, 155.0),
    "tao_rtt_140_160": (140.0, 160.0),
    "tao_rtt_50_250": (50.0, 250.0),
}

_BASELINES = ("cubic", "cubic_sfqcodel")
_LINK_MBPS = 33.0
_SENDERS = 2


@dataclass
class RttPoint:
    scheme: str
    rtt_ms: float
    normalized_objective: float
    in_training_range: bool


@dataclass
class RttResult:
    points: List[RttPoint] = field(default_factory=list)

    def series(self, scheme: str) -> List[RttPoint]:
        return sorted((p for p in self.points if p.scheme == scheme),
                      key=lambda p: p.rtt_ms)


def sweep_rtts(points: int) -> List[float]:
    """RTTs covering the 1-300 ms testing range.

    Linear spacing like the paper's Table 4b ("1, 2, 3 ... 300 ms"),
    always including 150 ms so the exactly-150 Tao has an in-range
    point, and always including the 1 ms short-RTT extreme where
    Figure 4's cliffs live.
    """
    return list(_rtt_axis(points).values)


def _rtt_axis(points: int) -> Axis:
    return Axis.linear("rtt_ms", 1.0, 300.0, points,
                       in_range=_in_range).ensure(150.0)


def _config_for(rtt_ms: float, kind: str, queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(_LINK_MBPS,), rtt_ms=rtt_ms,
        sender_kinds=(kind,) * _SENDERS, deltas=(1.0,) * _SENDERS,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0, queue=queue)


def _omniscient_point(rtt_ms: float) -> float:
    config = _config_for(rtt_ms, "learner", "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), _SENDERS, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def _in_range(scheme: str, rtt_ms: object) -> bool:
    bounds = TAO_RANGES.get(scheme)
    return bounds is None or bounds[0] <= rtt_ms <= bounds[1]


def _axes(scale: Scale) -> Tuple[Axis, ...]:
    return (_rtt_axis(scale.sweep_points),)


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    rtt_ms = point["rtt_ms"]
    if scheme in TAO_RANGES:
        return Cell(_config_for(rtt_ms, "learner", "droptail"),
                    {"learner": scheme})
    return Cell(_config_for(rtt_ms, "cubic", baseline_queue(scheme)),
                None)


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    return {"normalized_objective": _omniscient_point(point["rtt_ms"])}


SPEC = ExperimentSpec(
    name="rtt",
    title="E4 Figure 4 / Table 4 — propagation delay",
    schemes=tuple(TAO_RANGES) + _BASELINES,
    axes=_axes,
    build=_build,
    metrics=objective_metrics,
    reference=_reference,
    assets=tuple(TAO_RANGES),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> RttResult:
    """Sweep every scheme across the 1-300 ms testing scenarios.

    The (scheme × RTT × seed) grid goes out as one batch through
    ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    return RttResult(points=[
        RttPoint(scheme=row["scheme"], rtt_ms=row["rtt_ms"],
                 normalized_objective=row["normalized_objective"],
                 in_training_range=row["in_training_range"])
        for row in sweep.rows])


def format_table(result: RttResult) -> str:
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    lines = ["Propagation delay (Table 4 / Figure 4)",
             f"{'RTT ms':>8} " + " ".join(f"{s:>16}" for s in schemes)]
    rtts = sorted({p.rtt_ms for p in result.points})
    table = {(p.scheme, p.rtt_ms): p for p in result.points}
    for rtt_ms in rtts:
        cells = []
        for scheme in schemes:
            point = table[(scheme, rtt_ms)]
            marker = "" if point.in_training_range else "*"
            cells.append(
                f"{point.normalized_objective:>15.2f}{marker or ' '}")
        lines.append(f"{rtt_ms:>8.1f} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E4", name="rtt", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
