"""Experiment E9 — the value of congestion signals (section 3.4).

The paper "knocks out" each of RemyCC's four congestion signals in turn
and retrains a protocol without it; the performance drop measures that
signal's value.  The finding: every signal contributes, no three-signal
subset matches all four, and ``rec_ewma`` (short-term ACK interarrival)
is the most valuable.

The knockout rule tables are trained by ``scripts/train_assets.py``
(mask-restricted whisker trees: a knocked-out signal can never be split
on, so the protocol cannot condition behaviour on it).  This module
evaluates them all on the calibration scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.objective import Objective
from ..core.results import RunResult
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.memory import SIGNAL_NAMES
from ..remy.tree import WhiskerTree
from .api import (Cell, Experiment, ExperimentSpec, register,
                  run_experiment)
from .calibration import CALIBRATION_CONFIG
from .common import DEFAULT, Scale, scored_flows

__all__ = ["SPEC", "SignalKnockoutResult", "run", "format_table"]

#: Variant -> the trained asset it evaluates.
_VARIANT_ASSETS: Dict[str, str] = {
    "all_signals": "tao_calibration",
    **{f"knockout_{signal}": f"tao_knockout_{signal}"
       for signal in SIGNAL_NAMES},
}


@dataclass
class SignalKnockoutResult:
    """Objective per variant; drops are vs. the full four-signal Tao."""

    objective_by_variant: Dict[str, float] = field(default_factory=dict)

    @property
    def full_objective(self) -> float:
        return self.objective_by_variant["all_signals"]

    def drop(self, signal: str) -> float:
        """Objective lost by removing ``signal`` (log2 units)."""
        return (self.full_objective
                - self.objective_by_variant[f"knockout_{signal}"])

    def ranking(self) -> List[str]:
        """Signals ordered from most to least valuable."""
        return sorted(SIGNAL_NAMES, key=self.drop, reverse=True)


def _score_runs(runs) -> float:
    objective = Objective(delta=1.0)
    scores = []
    for run_result in runs:
        total = 0.0
        for flow in scored_flows(run_result):
            delay = flow.mean_delay_s if flow.packets_delivered \
                else flow.base_delay_s
            total += objective.score(flow.throughput_bps, delay)
        scores.append(total)
    return sum(scores) / len(scores)


def _build(variant: str, point: Mapping[str, object]) -> Cell:
    return Cell(CALIBRATION_CONFIG,
                {"learner": _VARIANT_ASSETS[variant]})


def _metrics(variant: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> Dict[str, object]:
    return {"objective": _score_runs(runs)}


SPEC = ExperimentSpec(
    name="signals",
    title="E9 Section 3.4 — signal knockouts",
    schemes=tuple(_VARIANT_ASSETS),
    axes=(),
    build=_build,
    metrics=_metrics,
    assets=tuple(_VARIANT_ASSETS.values()),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> SignalKnockoutResult:
    """Evaluate the full Tao and each knockout on the calibration net.

    All five (variant × seed) grids go out as one batch through
    ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    result = SignalKnockoutResult()
    for row in sweep.rows:
        result.objective_by_variant[row["scheme"]] = row["objective"]
    return result


def format_table(result: SignalKnockoutResult) -> str:
    lines = ["Value of congestion signals (section 3.4)",
             f"{'variant':<28} {'objective':>10} {'drop':>8}"]
    lines.append(f"{'all_signals':<28} "
                 f"{result.full_objective:>10.2f} {'-':>8}")
    for signal in SIGNAL_NAMES:
        variant = f"knockout_{signal}"
        lines.append(
            f"{variant:<28} "
            f"{result.objective_by_variant[variant]:>10.2f} "
            f"{result.drop(signal):>8.2f}")
    ranking = ", ".join(result.ranking())
    lines.append(f"most-to-least valuable: {ranking}")
    lines.append("(paper: rec_ewma most valuable; all four contribute)")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E9", name="signals", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
