"""Shared experiment machinery: configs -> simulations -> results.

This module is the bridge between the declarative layer
(:class:`~repro.core.scenario.NetworkConfig`) and the packet simulator:
it builds the topology, instantiates one congestion controller, sender,
receiver, and workload per flow, runs the event loop, and collects
:class:`~repro.core.results.FlowStats`.

It also defines :class:`Scale` — the knob set that lets every experiment
run either as a quick benchmark (seconds) or a full reproduction
(minutes): simulated duration adapts to the link speed so the
pure-Python event loop processes a bounded number of packets per run.
"""

from __future__ import annotations

import math
import random
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.objective import normalized_objective
from ..core.results import FlowStats, RunResult
from ..core.scale import DEFAULT, FULL, QUICK, Scale
from ..core.scenario import NetworkConfig
from ..exec import Executor, SimTask, run_batch
from ..protocols.base import CongestionController
from ..protocols.registry import make_controller
from ..protocols.remycc import RemyCCController
from ..protocols.transport import DATA_PACKET_BYTES, FlowReceiver, FlowSender
from ..remy.compiled import UsageStats
from ..remy.tree import WhiskerTree
from ..sim.codel import CoDelQueue
from ..sim.dynamics import DynamicsDriver
from ..sim.engine import Simulator
from ..sim.queues import DropTailQueue, QueueDiscipline
from ..sim.sfq_codel import SfqCoDelQueue
from ..sim.tracing import QueueTrace
from ..sim.workload import (AlwaysOnWorkload, OnOffWorkload,
                            ScheduledWorkload)
from ..topology.dumbbell import dumbbell
from ..topology.graph import BuiltTopology
from ..topology.parking_lot import parking_lot

__all__ = ["Scale", "SimulationHandle", "build_simulation", "run_config",
           "run_seeds", "run_seeds_parallel", "run_seed_batch",
           "scored_flows", "mean_normalized_score",
           "QUICK", "DEFAULT", "FULL"]


class SimulationHandle:
    """A built-but-not-yet-run simulation plus everything in it."""

    def __init__(self, sim: Simulator, built: BuiltTopology,
                 config: NetworkConfig,
                 controllers: List[CongestionController],
                 senders: List[FlowSender],
                 receivers: List[FlowReceiver],
                 workloads: List[object],
                 traces: Dict[str, QueueTrace],
                 seed: int,
                 usage_accumulators: Optional[
                     List[Tuple[WhiskerTree, UsageStats]]] = None):
        self.sim = sim
        self.built = built
        self.config = config
        self.controllers = controllers
        self.senders = senders
        self.receivers = receivers
        self.workloads = workloads
        self.traces = traces
        self.seed = seed
        #: (tree, shared flat stats) per distinct rule table, merged
        #: back into the tree's whiskers after every run() — the
        #: compiled fast path for record_usage.
        self._usage_accumulators = usage_accumulators or []

    def bottleneck_links(self):
        """The capacitated links of the configured topology."""
        if self.config.topology == "dumbbell":
            return [self.built.link("A", "B")]
        return [self.built.link("A", "B"), self.built.link("B", "C")]

    def run(self, duration_s: float) -> RunResult:
        """Run to ``duration_s`` and collect per-flow statistics."""
        self.sim.run(until=duration_s)
        for tree, stats in self._usage_accumulators:
            stats.merge_into(tree)
        flows: List[FlowStats] = []
        for i, kind in enumerate(self.config.sender_kinds):
            sender = self.senders[i]
            receiver = self.receivers[i]
            workload = self.workloads[i]
            path = self.built.network.flows[i]
            flows.append(FlowStats(
                flow_id=i,
                kind=kind,
                delivered_bytes=receiver.stats.delivered_bytes,
                on_time_s=workload.on_time(duration_s),
                mean_delay_s=receiver.stats.mean_delay,
                base_delay_s=path.one_way_base_delay(DATA_PACKET_BYTES),
                base_rtt_s=sender.base_rtt,
                packets_delivered=receiver.stats.unique_delivered,
                packets_sent=sender.stats.packets_sent,
                retransmissions=sender.stats.retransmissions,
                timeouts=sender.stats.timeouts,
                delta=self.config.deltas[i],
            ))
        bottlenecks = self.bottleneck_links()
        drops = sum(link.queue.stats.dropped for link in bottlenecks)
        utilization = max(link.utilization(duration_s)
                          for link in bottlenecks)
        return RunResult(flows=flows, seed=self.seed,
                         duration_s=duration_s,
                         bottleneck_drops=drops,
                         bottleneck_utilization=utilization)


def _queue_factory(config: NetworkConfig, link_index: int):
    capacity = config.buffer_packets(link_index)
    ecn = config.ecn_threshold
    if config.queue == "droptail":
        return lambda: DropTailQueue(capacity_packets=capacity,
                                     ecn_threshold=ecn)
    if config.queue == "codel":
        return lambda: CoDelQueue(capacity_packets=capacity,
                                  ecn_threshold=ecn)
    if config.queue == "sfq_codel":
        return lambda: SfqCoDelQueue(capacity_packets=capacity,
                                     ecn_threshold=ecn)
    raise ValueError(f"unknown queue {config.queue!r}")


def _controller_for(kind: str, trees: Dict[str, WhiskerTree],
                    record_usage: bool,
                    accumulators: Dict[int, Tuple[WhiskerTree, UsageStats]]
                    ) -> CongestionController:
    if kind in trees:
        tree = trees[kind]
        stats = None
        if record_usage:
            # One shared flat accumulator per tree *instance*: senders
            # driving the same table interleave their hits in event
            # order, exactly as they did when they shared the whisker
            # objects directly.
            entry = accumulators.get(id(tree))
            if entry is None:
                entry = (tree, UsageStats(len(tree)))
                accumulators[id(tree)] = entry
            stats = entry[1]
        return RemyCCController(tree, record_usage=record_usage,
                                usage_stats=stats)
    return make_controller(kind)


def build_simulation(
        config: NetworkConfig,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        seed: int = 0,
        record_usage: bool = False,
        trace_queues: bool = False,
        workload_intervals: Optional[
            Dict[int, Sequence[Tuple[float, float]]]] = None,
) -> SimulationHandle:
    """Assemble a runnable simulation for one scenario.

    Parameters
    ----------
    trees:
        Maps sender kinds (e.g. ``"learner"``, ``"peer"``) to whisker
        trees; kinds not present fall back to the scheme registry.
    workload_intervals:
        Per-flow deterministic on-intervals, overriding the exponential
        on/off model (used by the Figure 8 queue-trace experiment).
    """
    trees = trees or {}
    sim = Simulator()
    if config.topology == "dumbbell":
        topo = dumbbell(config.num_senders, config.link_speed_bps(0),
                        config.rtt_ms / 1e3,
                        queue_factory=_queue_factory(config, 0))
    else:
        topo = parking_lot(config.link_speed_bps(0),
                           config.link_speed_bps(1),
                           per_hop_delay_s=config.rtt_ms / 2e3,
                           queue_factory1=_queue_factory(config, 0),
                           queue_factory2=_queue_factory(config, 1))
    built = topo.build(sim)

    if config.dynamics is not None and not config.dynamics.is_empty:
        # Dynamics apply to the bottleneck links (the ones the config's
        # link_speeds_mbps describe); access links stay static.  The
        # driver must start before senders are built only in the sense
        # that it runs pre-traffic — it merely schedules events, and
        # the per-link RNG streams are disjoint from the workload
        # streams, so static scenarios are untouched.
        if config.topology == "dumbbell":
            dyn_links = [built.link("A", "B")]
        else:
            dyn_links = [built.link("A", "B"), built.link("B", "C")]
        DynamicsDriver(sim, dyn_links, config.dynamics, seed=seed).start()

    controllers: List[CongestionController] = []
    senders: List[FlowSender] = []
    receivers: List[FlowReceiver] = []
    workloads: List[object] = []
    accumulators: Dict[int, Tuple[WhiskerTree, UsageStats]] = {}
    for i, kind in enumerate(config.sender_kinds):
        controller = _controller_for(kind, trees, record_usage,
                                     accumulators)
        sender = FlowSender(sim, built.network, i, controller)
        receiver = FlowReceiver(sim, built.network, i)
        if workload_intervals is not None and i in workload_intervals:
            workload = ScheduledWorkload(sim, sender,
                                         workload_intervals[i])
        elif config.always_on:
            # The both-zero on/off degenerate: permanent backlog, no
            # RNG draws at all.
            workload = AlwaysOnWorkload(sim, sender)
        else:
            flow_rng = random.Random(seed * 1_000_003 + i * 7_919 + 17)
            workload = OnOffWorkload(sim, sender, config.mean_on_s,
                                     config.mean_off_s, rng=flow_rng)
        workload.start()
        controllers.append(controller)
        senders.append(sender)
        receivers.append(receiver)
        workloads.append(workload)

    traces: Dict[str, QueueTrace] = {}
    if trace_queues:
        if config.topology == "dumbbell":
            bottlenecks = [built.link("A", "B")]
        else:
            bottlenecks = [built.link("A", "B"), built.link("B", "C")]
        for link in bottlenecks:
            traces[link.name] = QueueTrace(link.queue)

    return SimulationHandle(sim, built, config, controllers, senders,
                            receivers, workloads, traces, seed,
                            usage_accumulators=list(accumulators.values()))


def run_config(config: NetworkConfig,
               trees: Optional[Dict[str, WhiskerTree]] = None,
               seed: int = 0,
               scale: Scale = DEFAULT,
               record_usage: bool = False) -> RunResult:
    """Build and run one scenario at the given scale."""
    handle = build_simulation(config, trees=trees, seed=seed,
                              record_usage=record_usage)
    return handle.run(scale.duration_for(config))


def run_seeds(config: NetworkConfig,
              trees: Optional[Dict[str, WhiskerTree]] = None,
              scale: Scale = DEFAULT,
              base_seed: int = 1,
              executor: Optional[Executor] = None,
              store=None,
              jobs: Optional[int] = None,
              backend: str = "packet") -> List[RunResult]:
    """Run ``scale.n_seeds`` independent replications.

    The single seed-fanout path: ``executor`` fans the replications out
    through :mod:`repro.exec` (``jobs=N`` is the shorthand for a
    throwaway ``N``-worker pool when you don't hold an executor);
    serial, pooled, and store-backed runs produce identical results —
    the executors' determinism contract.  ``store`` persists results to
    a disk-backed :class:`~repro.exec.ResultStore` (path or instance).
    ``backend="fluid"`` routes every replication through the vectorized
    fluid model (:mod:`repro.sim.fluid`) instead of the packet engine.
    """
    return run_seed_batch([(config, trees)], scale=scale,
                          base_seed=base_seed, executor=executor,
                          store=store, jobs=jobs, backend=backend)[0]


def run_seeds_parallel(config: NetworkConfig,
                       trees: Optional[Dict[str, WhiskerTree]] = None,
                       scale: Scale = DEFAULT,
                       base_seed: int = 1,
                       jobs: Optional[int] = None) -> List[RunResult]:
    """Deprecated alias for :func:`run_seeds` with ``jobs=``."""
    warnings.warn("run_seeds_parallel is deprecated; use "
                  "run_seeds(..., jobs=N)", DeprecationWarning,
                  stacklevel=2)
    return run_seeds(config, trees=trees, scale=scale,
                     base_seed=base_seed, jobs=jobs)


def _seed_tasks(config: NetworkConfig,
                trees: Optional[Dict[str, WhiskerTree]],
                scale: Scale, base_seed: int,
                backend: str = "packet") -> List[SimTask]:
    duration = scale.duration_for(config)
    return [SimTask.build(config, trees=trees, seed=base_seed + k,
                          duration_s=duration, backend=backend)
            for k in range(scale.n_seeds)]


def run_seed_batch(specs: Sequence[Tuple[NetworkConfig,
                                         Optional[Dict[str, WhiskerTree]]]],
                   scale: Scale = DEFAULT,
                   base_seed: int = 1,
                   executor: Optional[Executor] = None,
                   store=None,
                   jobs: Optional[int] = None,
                   backend: str = "packet") -> List[List[RunResult]]:
    """Run a whole (config × seed) grid as one flat task batch.

    ``specs`` is a sequence of ``(config, trees)`` pairs — one per sweep
    point; each is replicated over ``scale.n_seeds`` seeds.  Returns one
    ``List[RunResult]`` per spec, aligned with the input, exactly as if
    :func:`run_seeds` had been called per spec — but submitted as a
    single batch so a pooled executor sees the full grid at once.
    ``jobs`` spins up a throwaway pool when no ``executor`` is passed.

    ``store`` (a :class:`~repro.exec.ResultStore` or directory path)
    makes the grid resumable: results land on disk as they complete,
    and a rerun — after a crash, or from another process — simulates
    only the fingerprints the store doesn't already hold.  Every
    experiment module inherits this, since their sweeps all flow
    through here.

    ``backend`` selects the simulation engine for every task in the
    grid ("packet" or "fluid"); fluid tasks fingerprint differently, so
    a shared store never mixes the two.
    """
    tasks: List[SimTask] = []
    for config, trees in specs:
        tasks.extend(_seed_tasks(config, trees, scale, base_seed,
                                 backend=backend))
    outputs = run_batch(tasks, executor=executor, store=store, jobs=jobs)
    failed = [(task.fingerprint(), out.failure)
              for task, out in zip(tasks, outputs)
              if out.failure is not None]
    if failed:
        # Quarantine-mode executors finish the rest of the grid (and
        # persist it) before we get here; the table must still not be
        # built over holes — fail loudly naming every poison task.
        from ..exec import TaskFailedError
        raise TaskFailedError(failed)
    grouped: List[List[RunResult]] = []
    for i in range(len(specs)):
        chunk = outputs[i * scale.n_seeds:(i + 1) * scale.n_seeds]
        grouped.append([out.run for out in chunk])
    return grouped


def scored_flows(result: RunResult) -> List[FlowStats]:
    """The flows that count toward the objective.

    When rule-table ("learner"/"peer") senders are present only they are
    scored — cross-traffic is environment, as in Remy's training.  In
    homogeneous runs of named schemes, every flow is scored.
    """
    learners = [f for f in result.flows if f.kind in ("learner", "peer")]
    return learners if learners else list(result.flows)


def mean_normalized_score(results: Sequence[RunResult],
                          config: NetworkConfig,
                          delta: float = 1.0) -> float:
    """Mean normalized objective across scored flows and seeds.

    Normalization follows the paper's Figures 2-4: fair share is the
    bottleneck rate over the number of senders; the delay floor is each
    flow's unloaded one-way latency.
    """
    fair = config.fair_share_bps()
    scores: List[float] = []
    for result in results:
        for flow in scored_flows(result):
            if flow.on_time_s <= 0:
                continue
            delay = flow.mean_delay_s if flow.packets_delivered else \
                flow.base_delay_s
            scores.append(normalized_objective(
                flow.throughput_bps, delay, fair, flow.base_delay_s,
                delta=delta))
    if not scores:
        return -math.inf
    return sum(scores) / len(scores)
