"""Experiment E8 — the price of sender diversity (Table 7, Figure 9).

Two objectives share one 10 Mbps / 100 ms bottleneck with an infinite
buffer: a throughput-sensitive sender (delta = 0.1) and a
delay-sensitive sender (delta = 10).  Each exists in two variants:
"naive" (trained only against its own kind) and "co-optimized"
(trained jointly, each against the other as fixed cross-traffic).

Figure 9's findings: co-optimization lets the two objectives coexist —
the delay-sensitive sender keeps low delay even in the mixed network —
but costs the throughput-sensitive sender some throughput ("the price
of playing nice"), both alone and mixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.results import (EllipsePoint, RunResult,
                            summarize_ellipse)
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from .api import (Cell, Experiment, ExperimentSpec, ellipse_from_row,
                  ellipse_row, register, run_experiment)
from .common import DEFAULT, Scale

__all__ = ["SPEC", "DiversityResult", "run", "format_table", "SETTINGS"]

_TPT_DELTA = 0.1
_DEL_DELTA = 10.0

#: Setting name -> ((kinds), {kind: asset}, {kind: delta}).
SETTINGS: Dict[str, Tuple[Tuple[str, ...], Dict[str, str],
                          Dict[str, float]]] = {
    "tpt_naive_alone": (
        ("learner", "learner"),
        {"learner": "tao_delta_tpt_naive"},
        {"learner": _TPT_DELTA}),
    "del_naive_alone": (
        ("learner", "learner"),
        {"learner": "tao_delta_del_naive"},
        {"learner": _DEL_DELTA}),
    "tpt_coopt_alone": (
        ("learner", "learner"),
        {"learner": "tao_delta_tpt_coopt"},
        {"learner": _TPT_DELTA}),
    "del_coopt_alone": (
        ("learner", "learner"),
        {"learner": "tao_delta_del_coopt"},
        {"learner": _DEL_DELTA}),
    "naive_mixed": (
        ("learner", "peer"),
        {"learner": "tao_delta_tpt_naive",
         "peer": "tao_delta_del_naive"},
        {"learner": _TPT_DELTA, "peer": _DEL_DELTA}),
    "coopt_mixed": (
        ("learner", "peer"),
        {"learner": "tao_delta_tpt_coopt",
         "peer": "tao_delta_del_coopt"},
        {"learner": _TPT_DELTA, "peer": _DEL_DELTA}),
}


def _config_for(kinds: Tuple[str, ...],
                deltas: Dict[str, float]) -> NetworkConfig:
    """Table 7b: 10 Mbps, 100 ms, 1 s on/off, no-drop buffer."""
    return NetworkConfig(
        link_speeds_mbps=(10.0,), rtt_ms=100.0, sender_kinds=kinds,
        deltas=tuple(deltas[k] for k in kinds),
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=None,
        queue="droptail")


@dataclass
class DiversityResult:
    """Per (setting, sender kind) throughput/delay summaries."""

    points: Dict[Tuple[str, str], EllipsePoint] = field(
        default_factory=dict)

    def throughput_mbps(self, setting: str, kind: str) -> float:
        return self.points[(setting, kind)].median_throughput_bps / 1e6

    def qdelay_ms(self, setting: str, kind: str) -> float:
        return self.points[(setting, kind)].median_delay_s * 1e3


def _build(setting: str, point: Mapping[str, object]) -> Cell:
    kinds, assets, deltas = SETTINGS[setting]
    return Cell(_config_for(kinds, deltas), dict(assets))


def _metrics(setting: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> List[Dict[str, object]]:
    kinds, _, _ = SETTINGS[setting]
    rows: List[Dict[str, object]] = []
    for kind in dict.fromkeys(kinds):
        tpts, delays = [], []
        for run_result in runs:
            for flow in run_result.flows_of_kind(kind):
                if flow.packets_delivered == 0:
                    continue
                tpts.append(flow.throughput_bps)
                delays.append(flow.queueing_delay_s)
        if tpts:
            rows.append({"kind": kind,
                         **ellipse_row(summarize_ellipse(tpts,
                                                         delays))})
    return rows


SPEC = ExperimentSpec(
    name="diversity",
    title="E8 Figure 9 / Table 7 — sender diversity",
    schemes=tuple(SETTINGS),
    axes=(),
    build=_build,
    metrics=_metrics,
    assets=("tao_delta_tpt_naive", "tao_delta_del_naive",
            "tao_delta_tpt_coopt", "tao_delta_del_coopt"),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> DiversityResult:
    """Run every Figure 9 setting.

    The (setting × seed) grid goes out as one batch through
    ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    result = DiversityResult()
    for row in sweep.rows:
        result.points[(row["scheme"], row["kind"])] = \
            ellipse_from_row(row)
    return result


def format_table(result: DiversityResult) -> str:
    lines = ["Sender diversity (Table 7 / Figure 9)",
             f"{'setting':<18} {'sender':<24} {'tpt (Mbps)':>11} "
             f"{'qdelay (ms)':>12}"]
    labels = {
        ("tpt_naive_alone", "learner"): "Tpt. sender [naive]",
        ("del_naive_alone", "learner"): "Del. sender [naive]",
        ("tpt_coopt_alone", "learner"): "Tpt. sender [co-opt]",
        ("del_coopt_alone", "learner"): "Del. sender [co-opt]",
        ("naive_mixed", "learner"): "Tpt. sender [naive]",
        ("naive_mixed", "peer"): "Del. sender [naive]",
        ("coopt_mixed", "learner"): "Tpt. sender [co-opt]",
        ("coopt_mixed", "peer"): "Del. sender [co-opt]",
    }
    for (setting, kind), point in result.points.items():
        label = labels.get((setting, kind), kind)
        lines.append(
            f"{setting:<18} {label:<24} "
            f"{point.median_throughput_bps / 1e6:>11.2f} "
            f"{point.median_delay_s * 1e3:>12.1f}")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E8", name="diversity", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
