"""Experiment E3 — knowledge of the degree of multiplexing (Table 3,
Figure 3).

Five Tao protocols trained for 1-2, 1-10, 1-20, 1-50, and 1-100 senders
on a 15 Mbps dumbbell are tested with 1-100 senders, under two buffer
regimes: 5 BDP of drop-tail buffer, and an infinite ("no drop") buffer.

The paper's finding — unlike link speed, multiplexing knowledge
*matters*: a wide-range Tao tracks the omniscient bound across the
sweep but sacrifices throughput at low multiplexing, while a narrow
(1-2) Tao collapses at high sender counts, through delay explosion on
the no-drop buffer or loss storms on the finite one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from .common import DEFAULT, Scale, mean_normalized_score, run_seed_batch

__all__ = ["TAO_RANGES", "BUFFER_CASES", "MuxPoint", "MultiplexingResult",
           "run", "format_table", "sweep_senders"]

#: Design ranges (Table 3a): name -> max trained sender count.
TAO_RANGES: Dict[str, int] = {
    "tao_mux_1_2": 2,
    "tao_mux_1_10": 10,
    "tao_mux_1_20": 20,
    "tao_mux_1_50": 50,
    "tao_mux_1_100": 100,
}

#: Buffer regimes of Table 3b / Figure 3: 5 BDP and "no packet drops".
BUFFER_CASES: Tuple[Tuple[str, Optional[float]], ...] = (
    ("5bdp", 5.0), ("nodrop", None))

_BASELINES = ("cubic", "cubic_sfqcodel")
_LINK_MBPS = 15.0
_RTT_MS = 150.0


@dataclass
class MuxPoint:
    scheme: str
    n_senders: int
    buffer_case: str
    normalized_objective: float
    in_training_range: bool


@dataclass
class MultiplexingResult:
    points: List[MuxPoint] = field(default_factory=list)

    def series(self, scheme: str, buffer_case: str) -> List[MuxPoint]:
        return sorted((p for p in self.points
                       if p.scheme == scheme
                       and p.buffer_case == buffer_case),
                      key=lambda p: p.n_senders)


def sweep_senders(points: int) -> List[int]:
    """Sender counts covering 1-100, denser at the low end."""
    if points < 2:
        raise ValueError("need at least two sweep points")
    raw = [round(100 ** (k / (points - 1))) for k in range(points)]
    out: List[int] = []
    for value in raw:
        if value not in out:
            out.append(value)
    return out


def _config_for(n: int, kinds_base: str, buffer_bdp: Optional[float],
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(_LINK_MBPS,), rtt_ms=_RTT_MS,
        sender_kinds=(kinds_base,) * n,
        deltas=(1.0,) * n,
        mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=buffer_bdp, queue=queue)


def _omniscient_point(n: int) -> float:
    config = _config_for(n, "learner", None, "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), n, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> MultiplexingResult:
    """Sweep sender counts for every scheme and buffer case.

    The (buffer case × scheme × sender count × seed) grid goes out as
    one batch through ``executor``.
    """
    if trees is None:
        trees = {}
    loaded = {name: trees.get(name) or load_tree(name)
              for name in TAO_RANGES}
    cells = []   # (scheme, n, case_name, config, trees, in_range)
    for case_name, buffer_bdp in BUFFER_CASES:
        for n in sweep_senders(scale.sweep_points):
            for name, top in TAO_RANGES.items():
                config = _config_for(n, "learner", buffer_bdp,
                                     "droptail")
                cells.append((name, n, case_name, config,
                              {"learner": loaded[name]}, n <= top))
            for baseline in _BASELINES:
                queue = "sfq_codel" if baseline == "cubic_sfqcodel" \
                    else "droptail"
                config = _config_for(n, "cubic", buffer_bdp, queue)
                cells.append((baseline, n, case_name, config, None,
                              True))
    batches = run_seed_batch(
        [(config, tree_map)
         for _, _, _, config, tree_map, _ in cells],
        scale=scale, base_seed=base_seed, executor=executor)
    result = MultiplexingResult()
    for (scheme, n, case_name, config, _, in_range), runs \
            in zip(cells, batches):
        result.points.append(MuxPoint(
            scheme=scheme, n_senders=n, buffer_case=case_name,
            normalized_objective=mean_normalized_score(runs, config),
            in_training_range=in_range))
    for case_name, _ in BUFFER_CASES:
        for n in sweep_senders(scale.sweep_points):
            result.points.append(MuxPoint(
                scheme="omniscient", n_senders=n, buffer_case=case_name,
                normalized_objective=_omniscient_point(n),
                in_training_range=True))
    return result


def format_table(result: MultiplexingResult) -> str:
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    lines = ["Degree of multiplexing (Table 3 / Figure 3)"]
    for case_name, _ in BUFFER_CASES:
        lines.append(f"--- buffer: {case_name} ---")
        lines.append(f"{'senders':>8} "
                     + " ".join(f"{s:>15}" for s in schemes))
        counts = sorted({p.n_senders for p in result.points
                         if p.buffer_case == case_name})
        table = {(p.scheme, p.n_senders): p for p in result.points
                 if p.buffer_case == case_name}
        for n in counts:
            cells = []
            for scheme in schemes:
                point = table[(scheme, n)]
                marker = "" if point.in_training_range else "*"
                cells.append(
                    f"{point.normalized_objective:>14.2f}{marker or ' '}")
            lines.append(f"{n:>8d} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)
