"""Experiment E3 — knowledge of the degree of multiplexing (Table 3,
Figure 3).

Five Tao protocols trained for 1-2, 1-10, 1-20, 1-50, and 1-100 senders
on a 15 Mbps dumbbell are tested with 1-100 senders, under two buffer
regimes: 5 BDP of drop-tail buffer, and an infinite ("no drop") buffer.

The paper's finding — unlike link speed, multiplexing knowledge
*matters*: a wide-range Tao tracks the omniscient bound across the
sweep but sacrifices throughput at low multiplexing, while a narrow
(1-2) Tao collapses at high sender counts, through delay explosion on
the no-drop buffer or loss storms on the finite one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from .api import (Axis, Cell, Experiment, ExperimentSpec,
                  baseline_queue, objective_metrics, register,
                  run_experiment)
from .common import DEFAULT, Scale

__all__ = ["TAO_RANGES", "BUFFER_CASES", "SPEC", "MuxPoint",
           "MultiplexingResult", "run", "format_table", "sweep_senders"]

#: Design ranges (Table 3a): name -> max trained sender count.
TAO_RANGES: Dict[str, int] = {
    "tao_mux_1_2": 2,
    "tao_mux_1_10": 10,
    "tao_mux_1_20": 20,
    "tao_mux_1_50": 50,
    "tao_mux_1_100": 100,
}

#: Buffer regimes of Table 3b / Figure 3: 5 BDP and "no packet drops".
BUFFER_CASES: Tuple[Tuple[str, Optional[float]], ...] = (
    ("5bdp", 5.0), ("nodrop", None))

_BASELINES = ("cubic", "cubic_sfqcodel")
_LINK_MBPS = 15.0
_RTT_MS = 150.0


@dataclass
class MuxPoint:
    scheme: str
    n_senders: int
    buffer_case: str
    normalized_objective: float
    in_training_range: bool


@dataclass
class MultiplexingResult:
    points: List[MuxPoint] = field(default_factory=list)

    def series(self, scheme: str, buffer_case: str) -> List[MuxPoint]:
        return sorted((p for p in self.points
                       if p.scheme == scheme
                       and p.buffer_case == buffer_case),
                      key=lambda p: p.n_senders)


def sweep_senders(points: int) -> List[int]:
    """Sender counts covering 1-100, denser at the low end."""
    return list(_senders_axis(points).values)


def _in_range(scheme: str, n: object) -> bool:
    top = TAO_RANGES.get(scheme)
    return top is None or n <= top


def _senders_axis(points: int) -> Axis:
    return Axis.log("n_senders", 1, 100, points, integer=True,
                    in_range=_in_range)


def _config_for(n: int, kinds_base: str, buffer_bdp: Optional[float],
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(_LINK_MBPS,), rtt_ms=_RTT_MS,
        sender_kinds=(kinds_base,) * n,
        deltas=(1.0,) * n,
        mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=buffer_bdp, queue=queue)


def _omniscient_point(n: int) -> float:
    config = _config_for(n, "learner", None, "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), n, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def _axes(scale: Scale) -> Tuple[Axis, ...]:
    return (Axis.of("buffer_case",
                    tuple(name for name, _ in BUFFER_CASES)),
            _senders_axis(scale.sweep_points))


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    n = point["n_senders"]
    buffer_bdp = dict(BUFFER_CASES)[point["buffer_case"]]
    if scheme in TAO_RANGES:
        return Cell(_config_for(n, "learner", buffer_bdp, "droptail"),
                    {"learner": scheme})
    return Cell(_config_for(n, "cubic", buffer_bdp,
                            baseline_queue(scheme)), None)


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    return {"normalized_objective":
            _omniscient_point(point["n_senders"])}


SPEC = ExperimentSpec(
    name="multiplexing",
    title="E3 Figure 3 / Table 3 — multiplexing",
    schemes=tuple(TAO_RANGES) + _BASELINES,
    axes=_axes,
    build=_build,
    metrics=objective_metrics,
    reference=_reference,
    assets=tuple(TAO_RANGES),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> MultiplexingResult:
    """Sweep sender counts for every scheme and buffer case.

    The (buffer case × scheme × sender count × seed) grid goes out as
    one batch through ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    return MultiplexingResult(points=[
        MuxPoint(scheme=row["scheme"], n_senders=row["n_senders"],
                 buffer_case=row["buffer_case"],
                 normalized_objective=row["normalized_objective"],
                 in_training_range=row["in_training_range"])
        for row in sweep.rows])


def format_table(result: MultiplexingResult) -> str:
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    lines = ["Degree of multiplexing (Table 3 / Figure 3)"]
    for case_name, _ in BUFFER_CASES:
        lines.append(f"--- buffer: {case_name} ---")
        lines.append(f"{'senders':>8} "
                     + " ".join(f"{s:>15}" for s in schemes))
        counts = sorted({p.n_senders for p in result.points
                         if p.buffer_case == case_name})
        table = {(p.scheme, p.n_senders): p for p in result.points
                 if p.buffer_case == case_name}
        for n in counts:
            cells = []
            for scheme in schemes:
                point = table[(scheme, n)]
                marker = "" if point.in_training_range else "*"
                cells.append(
                    f"{point.normalized_objective:>14.2f}{marker or ' '}")
            lines.append(f"{n:>8d} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E3", name="multiplexing", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
