"""Experiment E1 — the calibration experiment (Table 1, Figure 1).

Network: 32 Mbps dumbbell, 150 ms RTT, 2 senders with 1 s mean on/off,
5 BDP of drop-tail buffer.  Schemes: the Tao trained for exactly this
scenario, TCP Cubic, Cubic-over-sfqCoDel, and the omniscient bound.

The paper's headline: the Tao protocol lands within 5% of omniscient
throughput and 10% on delay, and beats both human-designed baselines on
throughput *and* delay simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.omniscient import omniscient_dumbbell
from ..core.results import EllipsePoint, RunResult, summarize_ellipse
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from .api import (Cell, Experiment, ExperimentSpec, ellipse_from_row,
                  ellipse_row, register, run_experiment)
from .common import DEFAULT, Scale

__all__ = ["CALIBRATION_CONFIG", "SPEC", "CalibrationResult", "run",
           "format_table"]

#: Table 1's network parameters.
CALIBRATION_CONFIG = NetworkConfig(
    link_speeds_mbps=(32.0,), rtt_ms=150.0,
    sender_kinds=("learner", "learner"),
    mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)

#: Scheme name -> (sender kinds, queue discipline).
_SCHEMES = {
    "tao": (("learner", "learner"), "droptail"),
    "cubic": (("cubic", "cubic"), "droptail"),
    "cubic_sfqcodel": (("cubic", "cubic"), "sfq_codel"),
}


@dataclass
class CalibrationResult:
    """Throughput/queueing-delay summaries per scheme (Figure 1)."""

    points: Dict[str, EllipsePoint] = field(default_factory=dict)
    omniscient_throughput_bps: float = 0.0
    omniscient_delay_s: float = 0.0

    def throughput_vs_omniscient(self, scheme: str) -> float:
        """Scheme median throughput as a fraction of omniscient."""
        return (self.points[scheme].median_throughput_bps
                / self.omniscient_throughput_bps)


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    kinds, queue = _SCHEMES[scheme]
    config = replace(CALIBRATION_CONFIG, sender_kinds=kinds,
                     deltas=tuple(1.0 for _ in kinds), queue=queue)
    return Cell(config, {"learner": "tao_calibration"})


def _metrics(scheme: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> Dict[str, object]:
    throughputs: List[float] = []
    delays: List[float] = []
    for run_result in runs:
        for flow in run_result.flows:
            if flow.packets_delivered == 0:
                continue
            throughputs.append(flow.throughput_bps)
            delays.append(flow.queueing_delay_s)
    return ellipse_row(summarize_ellipse(throughputs, delays))


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    omni = omniscient_dumbbell(CALIBRATION_CONFIG)[0]
    # Zero queueing by construction.
    return {"median_throughput_bps": omni.throughput_bps,
            "median_delay_s": 0.0}


SPEC = ExperimentSpec(
    name="calibration",
    title="E1 Figure 1 / Table 1 — calibration",
    schemes=tuple(_SCHEMES),
    axes=(),
    build=_build,
    metrics=_metrics,
    reference=_reference,
    assets=("tao_calibration",),
)


def run(scale: Scale = DEFAULT,
        tree: Optional[WhiskerTree] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> CalibrationResult:
    """Run the calibration experiment at the given scale.

    ``tree`` overrides the shipped ``tao_calibration`` rule table;
    ``executor`` fans the (scheme × seed) grid out through
    :mod:`repro.exec`.
    """
    overrides = {"tao_calibration": tree} if tree is not None else None
    sweep = run_experiment(SPEC, scale=scale, trees=overrides,
                           base_seed=base_seed, executor=executor)
    result = CalibrationResult()
    for row in sweep.rows:
        if row["scheme"] == SPEC.reference_scheme:
            result.omniscient_throughput_bps = \
                row["median_throughput_bps"]
            result.omniscient_delay_s = row["median_delay_s"]
        else:
            result.points[row["scheme"]] = ellipse_from_row(row)
    return result


def format_table(result: CalibrationResult) -> str:
    """Figure 1 as text: median throughput and queueing delay."""
    lines = [
        "Calibration experiment (Table 1 / Figure 1)",
        f"{'scheme':<16} {'tpt (Mbps)':>12} {'qdelay (ms)':>12} "
        f"{'vs omniscient':>14}",
    ]
    for scheme, point in result.points.items():
        ratio = result.throughput_vs_omniscient(scheme)
        lines.append(
            f"{scheme:<16} {point.median_throughput_bps / 1e6:>12.2f} "
            f"{point.median_delay_s * 1e3:>12.1f} {ratio:>13.0%}")
    lines.append(
        f"{'omniscient':<16} "
        f"{result.omniscient_throughput_bps / 1e6:>12.2f} "
        f"{0.0:>12.1f} {'100%':>14}")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    tree = (trees or {}).get("tao_calibration")
    return format_table(run(scale=scale, tree=tree, executor=executor))


register(Experiment(eid="E1", name="calibration", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
