"""Experiment E1 — the calibration experiment (Table 1, Figure 1).

Network: 32 Mbps dumbbell, 150 ms RTT, 2 senders with 1 s mean on/off,
5 BDP of drop-tail buffer.  Schemes: the Tao trained for exactly this
scenario, TCP Cubic, Cubic-over-sfqCoDel, and the omniscient bound.

The paper's headline: the Tao protocol lands within 5% of omniscient
throughput and 10% on delay, and beats both human-designed baselines on
throughput *and* delay simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..core.omniscient import omniscient_dumbbell
from ..core.results import EllipsePoint, summarize_ellipse
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from .common import DEFAULT, Scale, run_seed_batch

__all__ = ["CALIBRATION_CONFIG", "CalibrationResult", "run",
           "format_table"]

#: Table 1's network parameters.
CALIBRATION_CONFIG = NetworkConfig(
    link_speeds_mbps=(32.0,), rtt_ms=150.0,
    sender_kinds=("learner", "learner"),
    mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)

#: Scheme name -> (sender kinds, queue discipline).
_SCHEMES = {
    "tao": (("learner", "learner"), "droptail"),
    "cubic": (("cubic", "cubic"), "droptail"),
    "cubic_sfqcodel": (("cubic", "cubic"), "sfq_codel"),
}


@dataclass
class CalibrationResult:
    """Throughput/queueing-delay summaries per scheme (Figure 1)."""

    points: Dict[str, EllipsePoint] = field(default_factory=dict)
    omniscient_throughput_bps: float = 0.0
    omniscient_delay_s: float = 0.0

    def throughput_vs_omniscient(self, scheme: str) -> float:
        """Scheme median throughput as a fraction of omniscient."""
        return (self.points[scheme].median_throughput_bps
                / self.omniscient_throughput_bps)


def run(scale: Scale = DEFAULT,
        tree: Optional[WhiskerTree] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> CalibrationResult:
    """Run the calibration experiment at the given scale.

    ``tree`` overrides the shipped ``tao_calibration`` rule table;
    ``executor`` fans the (scheme × seed) grid out through
    :mod:`repro.exec`.
    """
    if tree is None:
        tree = load_tree("tao_calibration")
    result = CalibrationResult()
    specs = []
    for scheme, (kinds, queue) in _SCHEMES.items():
        config = replace(CALIBRATION_CONFIG, sender_kinds=kinds,
                         deltas=tuple(1.0 for _ in kinds), queue=queue)
        specs.append((config, {"learner": tree}))
    batches = run_seed_batch(specs, scale=scale, base_seed=base_seed,
                             executor=executor)
    for scheme, runs in zip(_SCHEMES, batches):
        throughputs: List[float] = []
        delays: List[float] = []
        for run_result in runs:
            for flow in run_result.flows:
                if flow.packets_delivered == 0:
                    continue
                throughputs.append(flow.throughput_bps)
                delays.append(flow.queueing_delay_s)
        result.points[scheme] = summarize_ellipse(throughputs, delays)
    omni = omniscient_dumbbell(CALIBRATION_CONFIG)[0]
    result.omniscient_throughput_bps = omni.throughput_bps
    result.omniscient_delay_s = 0.0   # zero queueing by construction
    return result


def format_table(result: CalibrationResult) -> str:
    """Figure 1 as text: median throughput and queueing delay."""
    lines = [
        "Calibration experiment (Table 1 / Figure 1)",
        f"{'scheme':<16} {'tpt (Mbps)':>12} {'qdelay (ms)':>12} "
        f"{'vs omniscient':>14}",
    ]
    for scheme, point in result.points.items():
        ratio = result.throughput_vs_omniscient(scheme)
        lines.append(
            f"{scheme:<16} {point.median_throughput_bps / 1e6:>12.2f} "
            f"{point.median_delay_s * 1e3:>12.1f} {ratio:>13.0%}")
    lines.append(
        f"{'omniscient':<16} "
        f"{result.omniscient_throughput_bps / 1e6:>12.2f} "
        f"{0.0:>12.1f} {'100%':>14}")
    return "\n".join(lines)
