"""Adversarially searched hostile-network axes.

A grid sweep samples the scenario space where the experimenter thinks
trouble lives; an adversary *searches* for it.  CCLab-style, this module
optimizes a cross-traffic/outage on-off pattern against a victim scheme:
the simulated duration is cut into equal windows, a candidate pattern
blacks out a fixed number of them, and a seeded hill-climb moves the
blackout windows to minimize the victim's mean normalized objective.

The search result is an ordinary :class:`~repro.experiments.api.Axis`
over outage tokens (``"none"`` plus the worst pattern found), so the
final comparison — every scheme, static vs adversarial — runs through
the standard sweep engine and renders with the standard table/CSV
renderers.  Tokens are the ``parse_outage_token`` encoding, so a found
pattern can be replayed later with ``--axis 'outage=...'`` verbatim.

Determinism: candidate proposals come from one ``random.Random(seed)``;
evaluations are ordinary fingerprinted SimTasks.  Re-running the same
search against the same store replays every evaluation as a cache hit
and reproduces the same trajectory, which is what lets the CI resume
job kill half the store mid-search and diff the final report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.scale import DEFAULT, Scale
from ..exec import Executor
from ..remy.tree import WhiskerTree
from ..sim.dynamics import format_outage_token
from .api import AdhocBase, Axis, adhoc_spec, run_experiment

__all__ = ["AdversarialAxis", "AdversarialResult"]

LogFn = Callable[[str], None]


@dataclass(frozen=True)
class AdversarialResult:
    """What the search found, plus the axis to sweep with."""

    axis: Axis                      # "none" + the worst pattern found
    victim: str
    best_token: str
    best_score: float               # victim objective under best_token
    static_score: float             # victim objective with no outages
    #: Every (token, score) evaluated, in evaluation order.
    history: Tuple[Tuple[str, float], ...] = ()

    def summary(self) -> str:
        lines = [
            f"adversarial search vs {self.victim!r}: "
            f"{len(self.history)} pattern(s) evaluated",
            f"  static   objective {self.static_score:+.4f}  (outage=none)",
            f"  worst    objective {self.best_score:+.4f}  "
            f"(outage={self.best_token})",
            f"  degradation {self.static_score - self.best_score:.4f}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class AdversarialAxis:
    """An axis whose points come from a search loop, not a grid.

    ``resolve`` runs a seeded hill-climb over outage patterns (``active``
    blacked-out windows among ``windows`` equal slices of the run) and
    returns an :class:`AdversarialResult` whose ``axis`` compares
    ``"none"`` against the worst pattern found.  The victim's objective
    is evaluated through the ordinary sweep engine, so ``--jobs``,
    ``--store`` and ``--resume`` apply to every candidate evaluation.
    """

    name: str = "outage"
    victim: Optional[str] = None    # default: the sweep's first scheme
    windows: int = 8
    active: int = 2
    iters: int = 12
    seed: int = 0
    policy: str = "hold"

    def __post_init__(self) -> None:
        if self.windows < 2:
            raise ValueError("adversary needs windows >= 2")
        if not 1 <= self.active < self.windows:
            raise ValueError(
                f"adversary active windows must be in [1, windows-1], "
                f"got {self.active} of {self.windows}")
        if self.iters < 0:
            raise ValueError("iters must be >= 0")

    # ------------------------------------------------------------------
    def _token(self, pattern: frozenset, width: float) -> str:
        """Encode active window indices as an outage token, merging
        adjacent windows into single blackout intervals."""
        windows: List[Tuple[float, float]] = []
        for index in sorted(pattern):
            start = round(index * width, 6)
            stop = round((index + 1) * width, 6)
            if windows and windows[-1][1] == start:
                windows[-1] = (windows[-1][0], stop)
            else:
                windows.append((start, stop))
        return format_outage_token(windows)

    def resolve(self, scheme: str,
                base: Optional[AdhocBase] = None,
                scale: Scale = DEFAULT,
                trees: Optional[Mapping[str, WhiskerTree]] = None,
                executor: Optional[Executor] = None,
                store=None,
                jobs: Optional[int] = None,
                base_seed: int = 1,
                backend: str = "packet",
                log: Optional[LogFn] = None) -> AdversarialResult:
        """Search for the worst outage pattern against ``scheme``."""
        base = base or AdhocBase()
        if base.outage != "none":
            raise ValueError(
                "adversarial search needs a static base (outage='none')")
        base = AdhocBase(**{**{f: getattr(base, f)
                               for f in base.__dataclass_fields__},
                            "outage_policy": self.policy})
        say = log or (lambda message: None)

        # The victim's scenario (and with it the simulated duration
        # every window pattern is laid over).
        probe = adhoc_spec([Axis.of(self.name, ("none",))], [scheme],
                           base=base, bound=False)
        config = probe.build(scheme, {self.name: "none"}).config
        duration = scale.duration_for(config)
        width = duration / self.windows

        scores: Dict[str, float] = {}
        history: List[Tuple[str, float]] = []

        def evaluate(tokens: List[str]) -> None:
            fresh = [t for t in dict.fromkeys(tokens) if t not in scores]
            if not fresh:
                return
            spec = adhoc_spec([Axis.of(self.name, tuple(fresh))],
                              [scheme], name="adversary", base=base,
                              bound=False)
            result = run_experiment(spec, scale=scale, trees=trees,
                                    base_seed=base_seed,
                                    executor=executor, store=store,
                                    jobs=jobs, backend=backend)
            for token in fresh:
                row = next(result.select(scheme, **{self.name: token}))
                scores[token] = float(row["mean_objective"])
                history.append((token, scores[token]))

        rng = random.Random(self.seed)
        # Start from evenly spread blackouts (the "grid sweep would
        # have tried this" pattern), then move windows greedily.
        stride = self.windows / self.active
        pattern = frozenset(
            min(int(k * stride), self.windows - 1)
            for k in range(self.active))
        token = self._token(pattern, width)
        evaluate(["none", token])
        static_score = scores["none"]
        best_pattern, best_token = pattern, token
        best_score = scores[token]
        say(f"adversary: static {static_score:+.4f}, "
            f"seed pattern {token} -> {best_score:+.4f}")

        for iteration in range(self.iters):
            # Mutate: move one blackout window to a random free slot.
            current = sorted(best_pattern)
            victim_idx = rng.choice(current)
            free = [k for k in range(self.windows)
                    if k not in best_pattern]
            if not free:
                break
            candidate = frozenset(
                (best_pattern - {victim_idx}) | {rng.choice(free)})
            cand_token = self._token(candidate, width)
            evaluate([cand_token])
            cand_score = scores[cand_token]
            accepted = cand_score < best_score
            say(f"adversary[{iteration + 1}/{self.iters}]: "
                f"{cand_token} -> {cand_score:+.4f}"
                f"{' *' if accepted else ''}")
            if accepted:
                best_pattern, best_token = candidate, cand_token
                best_score = cand_score

        return AdversarialResult(
            axis=Axis.of(self.name, ("none", best_token)),
            victim=scheme,
            best_token=best_token,
            best_score=best_score,
            static_score=static_score,
            history=tuple(history))
