"""Experiment E6/E7 — knowledge about incumbent endpoints (Table 6,
Figures 7 and 8).

Two Taos trained on a 10 Mbps / 100 ms dumbbell with a 250 kB buffer:
``tao_tcp_naive`` expects only its own kind; ``tao_tcp_aware`` saw AIMD
(NewReno-like) cross-traffic in half its training scenarios.  Testing
(Table 6b) runs each against its own kind ("homogeneous") and against
TCP NewReno ("mixed"), plus a NewReno-only cell for reference.

Figure 7's findings: in homogeneous settings TCP-awareness *costs*
(standing queues double the delay); against real TCP the naive Tao is
squeezed out while the aware one claims its fair share and lowers
everyone's delay.

Figure 8 inspects the time domain: cross-traffic switches on at exactly
t=5 s and off at t=10 s while the bottleneck queue is traced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.results import EllipsePoint, RunResult, summarize_ellipse
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from .api import (Cell, Experiment, ExperimentSpec, ellipse_from_row,
                  ellipse_row, register, run_experiment)
from .common import DEFAULT, Scale, build_simulation

__all__ = ["CELLS", "SPEC", "AwarenessCell", "AwarenessResult", "run",
           "QueueTraceResult", "run_queue_trace", "format_table"]

#: 250 kB buffer = 200 ms of queueing at 10 Mbps (Figure 7's caption).
_BUFFER_BYTES = 250_000.0

#: The Table 6b testing cells: name -> (sender kinds, which tree).
CELLS: Dict[str, Tuple[Tuple[str, ...], Optional[str]]] = {
    "naive_homogeneous": (("learner", "learner"), "tao_tcp_naive"),
    "aware_homogeneous": (("learner", "learner"), "tao_tcp_aware"),
    "naive_vs_newreno": (("learner", "newreno"), "tao_tcp_naive"),
    "aware_vs_newreno": (("learner", "newreno"), "tao_tcp_aware"),
    "newreno_only": (("newreno", "newreno"), None),
}


def _test_config(kinds: Tuple[str, ...]) -> NetworkConfig:
    """Table 6b: 10 Mbps, 100 ms, 5 s ON / 10 ms OFF, 250 kB buffer."""
    return NetworkConfig(
        link_speeds_mbps=(10.0,), rtt_ms=100.0, sender_kinds=kinds,
        deltas=tuple(1.0 for _ in kinds),
        mean_on_s=5.0, mean_off_s=0.01, buffer_bytes=_BUFFER_BYTES,
        buffer_bdp=None, queue="droptail")


@dataclass
class AwarenessCell:
    """Per-kind summaries for one testing cell."""

    name: str
    by_kind: Dict[str, EllipsePoint] = field(default_factory=dict)


@dataclass
class AwarenessResult:
    cells: Dict[str, AwarenessCell] = field(default_factory=dict)

    def tao_point(self, cell: str) -> EllipsePoint:
        return self.cells[cell].by_kind["learner"]

    def newreno_point(self, cell: str) -> EllipsePoint:
        return self.cells[cell].by_kind["newreno"]


def _build(cell_name: str, point: Mapping[str, object]) -> Cell:
    kinds, tree_name = CELLS[cell_name]
    trees = {"learner": tree_name} if tree_name else None
    return Cell(_test_config(kinds), trees)


def _metrics(cell_name: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> List[Dict[str, object]]:
    kinds, _ = CELLS[cell_name]
    rows: List[Dict[str, object]] = []
    for kind in dict.fromkeys(kinds):
        tpts = []
        delays = []
        for run_result in runs:
            for flow in run_result.flows_of_kind(kind):
                if flow.packets_delivered == 0:
                    continue
                tpts.append(flow.throughput_bps)
                delays.append(flow.queueing_delay_s)
        if tpts:
            rows.append({"kind": kind,
                         **ellipse_row(summarize_ellipse(tpts, delays))})
    return rows


SPEC = ExperimentSpec(
    name="tcp_awareness",
    title="E6 Figure 7 / Table 6 — TCP-awareness",
    schemes=tuple(CELLS),
    axes=(),
    build=_build,
    metrics=_metrics,
    assets=("tao_tcp_naive", "tao_tcp_aware"),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> AwarenessResult:
    """Run every Table 6b cell.

    The (cell × seed) grid goes out as one batch through ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    result = AwarenessResult()
    for cell_name in CELLS:
        cell = AwarenessCell(name=cell_name)
        for row in sweep.select(scheme=cell_name):
            cell.by_kind[row["kind"]] = ellipse_from_row(row)
        result.cells[cell_name] = cell
    return result


# ----------------------------------------------------------------------
# Figure 8: the queue trace with scheduled cross-traffic.
# ----------------------------------------------------------------------
@dataclass
class QueueTraceResult:
    """Bottleneck queue occupancy under scheduled TCP cross-traffic."""

    scheme: str                      # "tao_tcp_aware" or "tao_tcp_naive"
    times: np.ndarray
    queue_packets: np.ndarray
    drop_times: List[float]
    tcp_interval: Tuple[float, float]

    def mean_queue(self, start: float, stop: float) -> float:
        mask = (self.times >= start) & (self.times < stop)
        if not np.any(mask):
            return 0.0
        return float(np.mean(self.queue_packets[mask]))


def run_queue_trace(scheme: str = "tao_tcp_aware",
                    tree: Optional[WhiskerTree] = None,
                    duration_s: float = 15.0,
                    tcp_on_at: float = 5.0,
                    tcp_off_at: float = 10.0,
                    seed: int = 1) -> QueueTraceResult:
    """Figure 8: trace the bottleneck queue while a NewReno flow turns
    on at exactly ``tcp_on_at`` and off at ``tcp_off_at``."""
    if tree is None:
        tree = load_tree(scheme)
    config = _test_config(("learner", "newreno"))
    handle = build_simulation(
        config, trees={"learner": tree}, seed=seed, trace_queues=True,
        workload_intervals={
            0: [(0.0, duration_s)],                  # Tao always on
            1: [(tcp_on_at, tcp_off_at)],            # contrived TCP
        })
    handle.run(duration_s)
    trace = handle.traces["A->B"]
    times, lengths = trace.sample(step_s=0.05, until=duration_s)
    return QueueTraceResult(
        scheme=scheme, times=times, queue_packets=lengths,
        drop_times=trace.drop_times(),
        tcp_interval=(tcp_on_at, tcp_off_at))


def format_table(result: AwarenessResult) -> str:
    lines = ["TCP-awareness (Table 6 / Figure 7)",
             f"{'cell':<22} {'kind':<10} {'tpt (Mbps)':>11} "
             f"{'qdelay (ms)':>12}"]
    for cell_name, cell in result.cells.items():
        for kind, point in sorted(cell.by_kind.items()):
            lines.append(
                f"{cell_name:<22} {kind:<10} "
                f"{point.median_throughput_bps / 1e6:>11.2f} "
                f"{point.median_delay_s * 1e3:>12.1f}")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E6", name="tcp_awareness", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))


def _render_queue_trace(scale, trees, executor) -> str:
    lines = ["Figure 8 — queue traces (TCP on during [5 s, 10 s)):"]
    for scheme in ("tao_tcp_aware", "tao_tcp_naive"):
        trace = run_queue_trace(scheme, tree=(trees or {}).get(scheme),
                                seed=1)
        lines.append(
            f"{scheme:<15} queue alone={trace.mean_queue(1, 5):7.1f} "
            f"pkts  with TCP={trace.mean_queue(6, 10):7.1f} pkts  "
            f"drops={len(trace.drop_times)}")
    return "\n".join(lines)


register(Experiment(eid="E7", name="queue_trace",
                    title="E7 Figure 8 — queue traces",
                    render=_render_queue_trace,
                    assets=("tao_tcp_aware", "tao_tcp_naive")))
