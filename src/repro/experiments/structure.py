"""Experiment E5 — structural knowledge (Table 5, Figures 5-6).

The true network is the two-bottleneck parking lot of Figure 5 (both
links swept over 10-100 Mbps, 75 ms per hop).  Two Taos compete:

* ``tao_structure_one`` — trained on a *simplified* model: a single
  150 ms-delay bottleneck shared by two senders, and
* ``tao_structure_two`` — trained with full knowledge of the
  two-bottleneck structure.

Both are tested on the real parking lot, alongside Cubic,
Cubic-over-sfqCoDel, and the proportionally fair omniscient bound.  The
paper's finding: the simplified-model Tao underperforms the full-model
one by only ~17% on the crossing flow's throughput while still beating
Cubic by ~7x — topology simplification is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.omniscient import omniscient_parking_lot
from ..core.results import RunResult
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from ..topology.parking_lot import FLOW_BOTH
from .api import (Axis, Cell, Experiment, ExperimentSpec,
                  baseline_queue, register, run_experiment)
from .common import DEFAULT, Scale

__all__ = ["SPEC", "StructurePoint", "StructureResult", "run",
           "format_table", "sweep_speed_pairs"]

_SCHEMES = ("tao_one_bottleneck", "tao_two_bottleneck", "cubic",
            "cubic_sfqcodel")

#: Scheme name -> shipped asset name.
_TREE_ASSETS = {"tao_one_bottleneck": "tao_structure_one",
                "tao_two_bottleneck": "tao_structure_two"}


@dataclass
class StructurePoint:
    """Flow 1 (crossing flow) throughput at one link-speed pair."""

    scheme: str
    slower_mbps: float
    faster_mbps: float
    flow1_throughput_bps: float


@dataclass
class StructureResult:
    points: List[StructurePoint] = field(default_factory=list)
    omniscient: List[StructurePoint] = field(default_factory=list)

    def mean_throughput(self, scheme: str) -> float:
        values = [p.flow1_throughput_bps for p in self.points
                  if p.scheme == scheme]
        return float(np.mean(values)) if values else 0.0

    def simplification_penalty(self) -> float:
        """Fractional throughput lost by the one-bottleneck model
        (the paper reports ~17%)."""
        full = self.mean_throughput("tao_two_bottleneck")
        simplified = self.mean_throughput("tao_one_bottleneck")
        if full <= 0:
            return 0.0
        return 1.0 - simplified / full


def sweep_speed_pairs(points: int) -> List[Tuple[float, float]]:
    """(link1, link2) pairs covering Figure 6's sweep.

    For each slower-link speed we test the two boundary cases the
    figure draws: faster link equal to the slower one, and faster link
    pinned at 100 Mbps.
    """
    if points < 2:
        raise ValueError("need at least two sweep points")
    speeds = [10.0 * (10.0 ** (k / (points - 1))) for k in range(points)]
    pairs: List[Tuple[float, float]] = []
    for speed in speeds:
        pairs.append((speed, speed))
        if speed < 100.0:
            pairs.append((speed, 100.0))
    return pairs


def _config_for(speeds: Tuple[float, float], kind: str,
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        topology="parking_lot", link_speeds_mbps=speeds, rtt_ms=150.0,
        sender_kinds=(kind,) * 3, deltas=(1.0,) * 3,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0, queue=queue)


def _axes(scale: Scale) -> Tuple[Axis, ...]:
    return (Axis.of("speeds",
                    tuple(sweep_speed_pairs(scale.sweep_points))),)


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    speeds = point["speeds"]
    if scheme in _TREE_ASSETS:
        return Cell(_config_for(speeds, "learner", "droptail"),
                    {"learner": _TREE_ASSETS[scheme]})
    return Cell(_config_for(speeds, "cubic", baseline_queue(scheme)),
                None)


def _metrics(scheme: str, point: Mapping[str, object],
             config: NetworkConfig,
             runs: Sequence[RunResult]) -> Dict[str, object]:
    flow1 = [r.flows[FLOW_BOTH].throughput_bps for r in runs]
    return {"flow1_throughput_bps": float(np.median(flow1))}


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    speeds = point["speeds"]
    omni = omniscient_parking_lot(
        (speeds[0] * 1e6, speeds[1] * 1e6), p_on=0.5)
    return {"flow1_throughput_bps": omni[FLOW_BOTH].throughput_bps}


SPEC = ExperimentSpec(
    name="structure",
    title="E5 Figure 6 / Table 5 — structural knowledge",
    schemes=_SCHEMES,
    axes=_axes,
    build=_build,
    metrics=_metrics,
    reference=_reference,
    assets=tuple(_TREE_ASSETS.values()),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> StructureResult:
    """Sweep both parking-lot links for every scheme.

    The (scheme × speed pair × seed) grid goes out as one batch
    through ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    result = StructureResult()
    for row in sweep.rows:
        speeds = row["speeds"]
        point = StructurePoint(
            scheme=row["scheme"], slower_mbps=min(speeds),
            faster_mbps=max(speeds),
            flow1_throughput_bps=row["flow1_throughput_bps"])
        if row["scheme"] == SPEC.reference_scheme:
            result.omniscient.append(point)
        else:
            result.points.append(point)
    return result


def format_table(result: StructureResult) -> str:
    lines = ["Structural knowledge (Table 5 / Figure 6): "
             "crossing-flow throughput (Mbps)"]
    header = (f"{'slower':>7} {'faster':>7} "
              + " ".join(f"{s:>20}" for s in _SCHEMES)
              + f" {'omniscient':>12}")
    lines.append(header)
    keys = sorted({(p.slower_mbps, p.faster_mbps)
                   for p in result.points})
    by_key = {}
    for p in result.points:
        by_key[(p.slower_mbps, p.faster_mbps, p.scheme)] = p
    omni_by_key = {(p.slower_mbps, p.faster_mbps): p
                   for p in result.omniscient}
    for slower, faster in keys:
        cells = [f"{by_key[(slower, faster, s)].flow1_throughput_bps / 1e6:>20.2f}"
                 for s in _SCHEMES]
        omni = omni_by_key[(slower, faster)].flow1_throughput_bps / 1e6
        lines.append(f"{slower:>7.1f} {faster:>7.1f} "
                     + " ".join(cells) + f" {omni:>12.2f}")
    penalty = result.simplification_penalty()
    lines.append(f"one-bottleneck simplification penalty: {penalty:.0%} "
                 "(paper: ~17%)")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E5", name="structure", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
