"""Experiment E5 — structural knowledge (Table 5, Figures 5-6).

The true network is the two-bottleneck parking lot of Figure 5 (both
links swept over 10-100 Mbps, 75 ms per hop).  Two Taos compete:

* ``tao_structure_one`` — trained on a *simplified* model: a single
  150 ms-delay bottleneck shared by two senders, and
* ``tao_structure_two`` — trained with full knowledge of the
  two-bottleneck structure.

Both are tested on the real parking lot, alongside Cubic,
Cubic-over-sfqCoDel, and the proportionally fair omniscient bound.  The
paper's finding: the simplified-model Tao underperforms the full-model
one by only ~17% on the crossing flow's throughput while still beating
Cubic by ~7x — topology simplification is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.omniscient import omniscient_parking_lot
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from ..topology.parking_lot import FLOW_BOTH
from .common import DEFAULT, Scale, run_seed_batch

__all__ = ["StructurePoint", "StructureResult", "run", "format_table",
           "sweep_speed_pairs"]

_SCHEMES = ("tao_one_bottleneck", "tao_two_bottleneck", "cubic",
            "cubic_sfqcodel")


@dataclass
class StructurePoint:
    """Flow 1 (crossing flow) throughput at one link-speed pair."""

    scheme: str
    slower_mbps: float
    faster_mbps: float
    flow1_throughput_bps: float


@dataclass
class StructureResult:
    points: List[StructurePoint] = field(default_factory=list)
    omniscient: List[StructurePoint] = field(default_factory=list)

    def mean_throughput(self, scheme: str) -> float:
        values = [p.flow1_throughput_bps for p in self.points
                  if p.scheme == scheme]
        return float(np.mean(values)) if values else 0.0

    def simplification_penalty(self) -> float:
        """Fractional throughput lost by the one-bottleneck model
        (the paper reports ~17%)."""
        full = self.mean_throughput("tao_two_bottleneck")
        simplified = self.mean_throughput("tao_one_bottleneck")
        if full <= 0:
            return 0.0
        return 1.0 - simplified / full


def sweep_speed_pairs(points: int) -> List[Tuple[float, float]]:
    """(link1, link2) pairs covering Figure 6's sweep.

    For each slower-link speed we test the two boundary cases the
    figure draws: faster link equal to the slower one, and faster link
    pinned at 100 Mbps.
    """
    if points < 2:
        raise ValueError("need at least two sweep points")
    speeds = [10.0 * (10.0 ** (k / (points - 1))) for k in range(points)]
    pairs: List[Tuple[float, float]] = []
    for speed in speeds:
        pairs.append((speed, speed))
        if speed < 100.0:
            pairs.append((speed, 100.0))
    return pairs


def _config_for(speeds: Tuple[float, float], kind: str,
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        topology="parking_lot", link_speeds_mbps=speeds, rtt_ms=150.0,
        sender_kinds=(kind,) * 3, deltas=(1.0,) * 3,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0, queue=queue)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> StructureResult:
    """Sweep both parking-lot links for every scheme.

    The (scheme × speed pair × seed) grid goes out as one batch
    through ``executor``.
    """
    if trees is None:
        trees = {}
    tree_one = trees.get("tao_structure_one") \
        or load_tree("tao_structure_one")
    tree_two = trees.get("tao_structure_two") \
        or load_tree("tao_structure_two")
    cells = []   # (scheme, slower, faster, config, trees)
    for speeds in sweep_speed_pairs(scale.sweep_points):
        slower, faster = min(speeds), max(speeds)
        for scheme in _SCHEMES:
            if scheme == "tao_one_bottleneck":
                config = _config_for(speeds, "learner", "droptail")
                tree_map = {"learner": tree_one}
            elif scheme == "tao_two_bottleneck":
                config = _config_for(speeds, "learner", "droptail")
                tree_map = {"learner": tree_two}
            else:
                queue = "sfq_codel" if scheme == "cubic_sfqcodel" \
                    else "droptail"
                config = _config_for(speeds, "cubic", queue)
                tree_map = None
            cells.append((scheme, slower, faster, config, tree_map))
    batches = run_seed_batch(
        [(config, tree_map) for _, _, _, config, tree_map in cells],
        scale=scale, base_seed=base_seed, executor=executor)
    result = StructureResult()
    for (scheme, slower, faster, config, _), runs in zip(cells,
                                                         batches):
        flow1 = [r.flows[FLOW_BOTH].throughput_bps for r in runs]
        result.points.append(StructurePoint(
            scheme=scheme, slower_mbps=slower, faster_mbps=faster,
            flow1_throughput_bps=float(np.median(flow1))))
    for speeds in sweep_speed_pairs(scale.sweep_points):
        slower, faster = min(speeds), max(speeds)
        omni = omniscient_parking_lot(
            (speeds[0] * 1e6, speeds[1] * 1e6), p_on=0.5)
        result.omniscient.append(StructurePoint(
            scheme="omniscient", slower_mbps=slower, faster_mbps=faster,
            flow1_throughput_bps=omni[FLOW_BOTH].throughput_bps))
    return result


def format_table(result: StructureResult) -> str:
    lines = ["Structural knowledge (Table 5 / Figure 6): "
             "crossing-flow throughput (Mbps)"]
    header = (f"{'slower':>7} {'faster':>7} "
              + " ".join(f"{s:>20}" for s in _SCHEMES)
              + f" {'omniscient':>12}")
    lines.append(header)
    keys = sorted({(p.slower_mbps, p.faster_mbps)
                   for p in result.points})
    by_key = {}
    for p in result.points:
        by_key[(p.slower_mbps, p.faster_mbps, p.scheme)] = p
    omni_by_key = {(p.slower_mbps, p.faster_mbps): p
                   for p in result.omniscient}
    for slower, faster in keys:
        cells = [f"{by_key[(slower, faster, s)].flow1_throughput_bps / 1e6:>20.2f}"
                 for s in _SCHEMES]
        omni = omni_by_key[(slower, faster)].flow1_throughput_bps / 1e6
        lines.append(f"{slower:>7.1f} {faster:>7.1f} "
                     + " ".join(cells) + f" {omni:>12.2f}")
    penalty = result.simplification_penalty()
    lines.append(f"one-bottleneck simplification penalty: {penalty:.0%} "
                 "(paper: ~17%)")
    return "\n".join(lines)
