"""Declarative sweep API: one experiment spec, one engine.

The paper's core method is a *sweep*: vary one scenario axis (link
speed, RTT, degree of multiplexing, sender mix) and compare Taos against
baselines and the omniscient bound.  This module is the single substrate
every such sweep runs on:

* :class:`Axis` — one named sweep parameter: a value list (with
  log/linear/integer spacing constructors and a CLI parser), plus an
  optional per-scheme in-training-range predicate.
* :class:`ExperimentSpec` — a declarative experiment: schemes, axes,
  a ``build`` hook turning one ``(scheme, grid point)`` into a
  :class:`Cell` (a :class:`~repro.core.scenario.NetworkConfig` plus the
  rule-table assets each sender kind runs), a per-cell ``metrics`` hook,
  and an optional analytic ``reference`` bound.
* :func:`run_experiment` — the one generic engine: expands
  ``spec × Scale`` into a single flat ``(config, trees, seed)`` batch
  through :func:`~repro.experiments.common.run_seed_batch` (so ``--jobs``
  fan-out and ``--store``/``--resume`` come for free) and returns a
  uniform long-form :class:`SweepResult` with shared ``format_table``,
  ``to_csv``, and ``to_json``.
* the experiment **registry** — every reproduced figure/table registers
  an :class:`Experiment` here; ``scripts/run_experiments.py --list`` and
  ``--only`` iterate it generically.
* :func:`adhoc_spec` — compose grids the paper never ran
  (``scripts/sweep.py --axis rtt_ms=log:1:300:7 --axis
  queue=droptail,codel --schemes cubic,tao_rtt_50_250``).

The eight experiment modules define specs on these types and keep thin
back-compat ``run()``/``format_table()`` wrappers whose output is
byte-identical to the pre-spec code (pinned by
``tests/test_table_parity.py``).  See ``docs/EXPERIMENTS.md``.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field, fields
from itertools import product
from typing import (Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.results import EllipsePoint, RunResult
from ..core.scale import DEFAULT, Scale
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..protocols.registry import available_schemes
from ..remy.action import Action
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from ..sim.dynamics import (DynamicsSpec, LinkSchedule,
                            parse_outage_token)
from .common import mean_normalized_score, run_seed_batch, scored_flows

__all__ = [
    "Axis", "Cell", "CellPlan", "ExperimentSpec", "SweepResult",
    "expand", "run_experiment",
    "Experiment", "register", "get_experiment", "experiments",
    "AdhocBase", "adhoc_spec",
    "ellipse_row", "ellipse_from_row",
    "objective_metrics", "baseline_queue", "FAKE_TREE",
]

#: The stand-in rule table ``--fake-taos`` (both CLIs) and the parity /
#: golden test suites substitute for untrained assets — a sane
#: rate-matching action.  One definition: the parity contract assumes
#: every consumer simulates the *same* tree.
FAKE_TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))

#: ``(scheme, axis value) -> bool`` — is this value inside the scheme's
#: training range?  Schemes without a range return True.
InRangeFn = Callable[[str, object], bool]


# ----------------------------------------------------------------------
# Axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Axis:
    """One named sweep parameter and its value grid.

    ``in_range`` (optional) classifies each value per scheme; the engine
    ANDs the flags of every axis into the row's ``in_training_range``
    column (the ``*`` markers of the paper's tables).
    """

    name: str
    values: Tuple[object, ...]
    in_range: Optional[InRangeFn] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis needs a name")
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")

    # -- constructors --------------------------------------------------
    @classmethod
    def of(cls, name: str, values: Sequence[object],
           in_range: Optional[InRangeFn] = None) -> "Axis":
        """An axis over explicit values (kept in the given order)."""
        return cls(name, tuple(values), in_range)

    @classmethod
    def linear(cls, name: str, lo: float, hi: float, n: int, *,
               integer: bool = False,
               in_range: Optional[InRangeFn] = None) -> "Axis":
        """``n`` linearly spaced values over ``[lo, hi]``, inclusive."""
        cls._check_spacing(name, lo, hi, n)
        raw = [lo + (hi - lo) * k / (n - 1) for k in range(n)]
        return cls(name, cls._spaced(raw, integer), in_range)

    @classmethod
    def log(cls, name: str, lo: float, hi: float, n: int, *,
            integer: bool = False,
            in_range: Optional[InRangeFn] = None) -> "Axis":
        """``n`` log-spaced values over ``[lo, hi]``, inclusive.

        ``integer=True`` rounds and deduplicates (preserving ascending
        order) — the multiplexing experiment's denser-at-the-low-end
        sender counts.
        """
        cls._check_spacing(name, lo, hi, n)
        if lo <= 0:
            raise ValueError(f"axis {name!r}: log spacing needs lo > 0")
        raw = [lo * (hi / lo) ** (k / (n - 1)) for k in range(n)]
        return cls(name, cls._spaced(raw, integer), in_range)

    @staticmethod
    def _check_spacing(name: str, lo: float, hi: float, n: int) -> None:
        if n < 2:
            raise ValueError("need at least two sweep points")
        if not lo <= hi:
            raise ValueError(f"axis {name!r}: need lo <= hi, "
                             f"got {lo} > {hi}")

    @staticmethod
    def _spaced(raw: Sequence[float], integer: bool) -> Tuple[object, ...]:
        if not integer:
            return tuple(raw)
        out: List[int] = []
        for value in raw:
            rounded = round(value)
            if rounded not in out:
                out.append(rounded)
        return tuple(out)

    # -- CLI form ------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Axis":
        """Parse the CLI form ``name=SPEC``.

        ``SPEC`` is either a spacing rule —

        * ``log:LO:HI:N`` / ``logint:LO:HI:N`` (log-spaced, optionally
          rounded to deduplicated integers),
        * ``lin:LO:HI:N`` / ``linint:LO:HI:N`` (``linear``/``int``
          accepted as aliases) —

        or a comma-separated value list (``droptail,codel`` or
        ``50,150,250``; numeric tokens become numbers).
        """
        name, eq, spec = text.partition("=")
        name, spec = name.strip(), spec.strip()
        if not eq or not name or not spec:
            raise ValueError(f"axis {text!r}: expected NAME=SPEC")
        head, *rest = spec.split(":")
        spacings = {"log": (cls.log, False), "logint": (cls.log, True),
                    "lin": (cls.linear, False), "linear": (cls.linear, False),
                    "int": (cls.linear, True), "linint": (cls.linear, True)}
        if head in spacings:
            if len(rest) != 3:
                raise ValueError(
                    f"axis {text!r}: expected {head}:LO:HI:N")
            maker, integer = spacings[head]
            try:
                lo, hi = float(rest[0]), float(rest[1])
                n = int(rest[2])
            except ValueError:
                raise ValueError(
                    f"axis {text!r}: LO/HI must be numbers, N an int"
                ) from None
            try:
                return maker(name, lo, hi, n, integer=integer)
            except ValueError as error:
                # Eager validation with the *offending spec string* in
                # the message: a malformed spec (log:1:300:0, hi < lo,
                # ...) must fail at parse time, naming itself, not
                # surface as a bare ValueError mid-sweep.
                raise ValueError(f"axis {text!r}: {error}") from None
        values = [cls._coerce_token(token.strip())
                  for token in spec.split(",") if token.strip()]
        if not values:
            raise ValueError(f"axis {text!r}: empty value list")
        return cls.of(name, values)

    @staticmethod
    def _coerce_token(token: str) -> object:
        for kind in (int, float):
            try:
                return kind(token)
            except ValueError:
                continue
        return token

    # -- helpers -------------------------------------------------------
    def ensure(self, *extra: object) -> "Axis":
        """A copy guaranteed to contain ``extra``, sorted ascending.

        For numeric axes that must hit a landmark value — e.g. the RTT
        sweep always includes 150 ms so the exactly-150 Tao has an
        in-range point.
        """
        values = list(self.values)
        for value in extra:
            if value not in values:
                values.append(value)
        return Axis(self.name, tuple(sorted(values)), self.in_range)

    def flag(self, scheme: str, value: object) -> bool:
        """``in_training_range`` of ``value`` for ``scheme``."""
        if self.in_range is None:
            return True
        return bool(self.in_range(scheme, value))


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
@dataclass
class Cell:
    """One concrete simulation: a network plus the rule-table *assets*
    each sender kind runs (``None`` — registry schemes only).

    Trees are referenced by asset name, not object, so specs stay
    declarative; the engine resolves names through the caller's
    overrides or :func:`~repro.remy.assets.load_tree` (overrides are how
    ``--fake-taos`` and tests substitute hand-built tables)."""

    config: NetworkConfig
    trees: Optional[Mapping[str, str]] = None   # sender kind -> asset


@dataclass
class CellPlan:
    """One expanded ``(scheme, grid point)`` cell of a sweep."""

    scheme: str
    point: Dict[str, object]
    cell: Cell
    in_range: bool


#: ``(scheme, point) -> Cell`` (or None to skip that combination).
BuildFn = Callable[[str, Mapping[str, object]], Optional[Cell]]
#: ``(scheme, point, config, runs) -> metric row(s)``.
MetricsFn = Callable[
    [str, Mapping[str, object], NetworkConfig, Sequence[RunResult]],
    Union[Mapping[str, object], Sequence[Mapping[str, object]]]]
#: ``point -> reference row(s)`` — the analytic (omniscient) bound.
ReferenceFn = Callable[
    [Mapping[str, object]],
    Union[Mapping[str, object], Sequence[Mapping[str, object]]]]
#: Static axes, or a hook deriving them from the run's Scale.
AxesLike = Union[Sequence[Axis], Callable[[Scale], Sequence[Axis]]]


@dataclass
class ExperimentSpec:
    """A declarative experiment: what to sweep, build, and measure.

    The engine guarantees a deterministic cell order — grid points in
    axis-major order (first axis outermost), schemes innermost, then one
    reference row block per point — which is what makes the ported
    experiment tables byte-identical to their hand-rolled ancestors.
    """

    name: str
    schemes: Tuple[str, ...]
    axes: AxesLike
    build: BuildFn
    metrics: MetricsFn
    title: str = ""
    reference: Optional[ReferenceFn] = None
    reference_scheme: str = "omniscient"
    #: Every trained asset the spec's cells may reference (what
    #: ``--fake-taos`` substitutes).
    assets: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError(f"spec {self.name!r} needs schemes")

    def axes_for(self, scale: Scale) -> Tuple[Axis, ...]:
        axes = self.axes(scale) if callable(self.axes) else self.axes
        return tuple(axes)


def expand(spec: ExperimentSpec, scale: Scale = DEFAULT
           ) -> Tuple[List[Dict[str, object]], List[CellPlan]]:
    """``spec × scale`` -> (grid points, runnable cell plans).

    Points iterate in axis-major order; within a point, schemes in spec
    order; ``build`` returning ``None`` skips a combination.
    """
    axes = spec.axes_for(scale)
    names = [axis.name for axis in axes]
    points = [dict(zip(names, combo))
              for combo in product(*(axis.values for axis in axes))]
    plans: List[CellPlan] = []
    for point in points:
        for scheme in spec.schemes:
            cell = spec.build(scheme, point)
            if cell is None:
                continue
            in_range = all(axis.flag(scheme, point[axis.name])
                           for axis in axes)
            plans.append(CellPlan(scheme, dict(point), cell, in_range))
    return points, plans


def _resolve_trees(plans: Sequence[CellPlan],
                   overrides: Optional[Mapping[str, WhiskerTree]]
                   ) -> List[Optional[Dict[str, WhiskerTree]]]:
    """Asset names -> tree objects, loading each shipped asset once."""
    overrides = overrides or {}
    loaded: Dict[str, WhiskerTree] = {}
    maps: List[Optional[Dict[str, WhiskerTree]]] = []
    for plan in plans:
        if plan.cell.trees is None:
            maps.append(None)
            continue
        tree_map: Dict[str, WhiskerTree] = {}
        for kind, asset in plan.cell.trees.items():
            if asset not in loaded:
                loaded[asset] = overrides.get(asset) or load_tree(asset)
            tree_map[kind] = loaded[asset]
        maps.append(tree_map)
    return maps


def _as_rows(value: Union[Mapping[str, object],
                          Sequence[Mapping[str, object]]]
             ) -> List[Mapping[str, object]]:
    if isinstance(value, Mapping):
        return [value]
    return list(value)


def run_experiment(spec: ExperimentSpec,
                   scale: Scale = DEFAULT,
                   trees: Optional[Mapping[str, WhiskerTree]] = None,
                   base_seed: int = 1,
                   executor: Optional[Executor] = None,
                   store=None,
                   jobs: Optional[int] = None,
                   backend: str = "packet") -> "SweepResult":
    """The one generic sweep engine.

    Expands the spec, resolves its assets (``trees`` overrides beat
    shipped assets, and a missing asset raises ``FileNotFoundError``
    *before* any simulation runs), submits the whole
    ``(cell × scale.n_seeds)`` grid as one flat batch through
    :func:`~repro.experiments.common.run_seed_batch` — inheriting
    executor fan-out and store-backed resume — and folds each cell's
    replications into long-form :class:`SweepResult` rows.

    ``backend="fluid"`` runs every cell on the vectorized fluid model
    instead of the packet engine: orders of magnitude faster on large
    grids, at the fidelity documented in ``docs/PERFORMANCE.md``.
    """
    points, plans = expand(spec, scale)
    tree_maps = _resolve_trees(plans, trees)
    batches = run_seed_batch(
        [(plan.cell.config, tree_map)
         for plan, tree_map in zip(plans, tree_maps)],
        scale=scale, base_seed=base_seed, executor=executor,
        store=store, jobs=jobs, backend=backend)
    rows: List[Dict[str, object]] = []
    for plan, runs in zip(plans, batches):
        for metric_row in _as_rows(
                spec.metrics(plan.scheme, plan.point,
                             plan.cell.config, runs)):
            row: Dict[str, object] = {"scheme": plan.scheme}
            row.update(plan.point)
            row.update(metric_row)
            row["in_training_range"] = plan.in_range
            rows.append(row)
    if spec.reference is not None:
        for point in points:
            for metric_row in _as_rows(spec.reference(point)):
                row = {"scheme": spec.reference_scheme}
                row.update(point)
                row.update(metric_row)
                row["in_training_range"] = True
                rows.append(row)
    axis_names = tuple(axis.name for axis in spec.axes_for(scale))
    return SweepResult(name=spec.name, axis_names=axis_names, rows=rows)


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """A sweep in long form: one dict per (scheme, point, metric row).

    Every row carries ``scheme``, the axis coordinates, whatever the
    spec's metrics emitted (plus optional labels like ``kind``), and
    ``in_training_range``.  The three shared renderers —
    :meth:`format_table`, :meth:`to_csv`, :meth:`to_json` — work for
    every spec, registered or ad-hoc.
    """

    name: str
    axis_names: Tuple[str, ...] = ()
    rows: List[Dict[str, object]] = field(default_factory=list)

    # -- access --------------------------------------------------------
    def schemes(self) -> List[str]:
        """Scheme names in first-appearance order."""
        return list(dict.fromkeys(row["scheme"] for row in self.rows))

    def select(self, scheme: Optional[str] = None,
               **coords: object) -> Iterator[Dict[str, object]]:
        """Rows matching a scheme and/or exact axis coordinates."""
        for row in self.rows:
            if scheme is not None and row["scheme"] != scheme:
                continue
            if all(row.get(key) == value
                   for key, value in coords.items()):
                yield row

    def columns(self) -> List[str]:
        """Stable column order: scheme, axes, metrics/labels, range."""
        out = ["scheme", *self.axis_names]
        for row in self.rows:
            for key in row:
                if key not in out and key != "in_training_range":
                    out.append(key)
        out.append("in_training_range")
        return out

    # -- renderers -----------------------------------------------------
    @staticmethod
    def _fmt(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.4g}"
        if isinstance(value, tuple):
            return "x".join(SweepResult._fmt(v) for v in value)
        return str(value)

    def format_table(self) -> str:
        """One aligned text table over :meth:`columns`.

        ``in_training_range`` renders as the paper-style trailing ``*``
        marker column (only shown when some row is out of range).
        """
        columns = self.columns()[:-1]
        flagged = any(not row["in_training_range"] for row in self.rows)
        header = columns + (["range"] if flagged else [])
        grid = [header]
        for row in self.rows:
            cells = [self._fmt(row.get(column)) for column in columns]
            if flagged:
                cells.append("" if row["in_training_range"] else "*")
            grid.append(cells)
        widths = [max(len(line[i]) for line in grid)
                  for i in range(len(header))]
        lines = [f"sweep {self.name!r}: {len(self.rows)} rows"]
        for line in grid:
            lines.append("  ".join(
                cell.rjust(width)
                for cell, width in zip(line, widths)).rstrip())
        if flagged:
            lines.append("(* = outside that scheme's training range)")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Long-form CSV with the :meth:`columns` header."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        columns = self.columns()
        writer.writerow(columns)
        for row in self.rows:
            writer.writerow([row.get(column, "") for column in columns])
        return buffer.getvalue()

    def to_json(self, indent: Optional[int] = None) -> str:
        """``{"experiment", "axes", "rows"}`` as canonical JSON."""
        payload = {"experiment": self.name,
                   "axes": list(self.axis_names),
                   "rows": self.rows}
        return json.dumps(payload, indent=indent, default=_jsonable)


def _jsonable(value: object) -> object:
    try:
        return float(value)   # numpy scalars and friends
    except (TypeError, ValueError):
        return str(value)


# ----------------------------------------------------------------------
# Shared spec building blocks
# ----------------------------------------------------------------------
def objective_metrics(scheme: str, point: Mapping[str, object],
                      config: NetworkConfig,
                      runs: Sequence[RunResult]) -> Dict[str, object]:
    """The Figures 2-4 metric: mean normalized objective per cell."""
    return {"normalized_objective": mean_normalized_score(runs, config)}


def baseline_queue(scheme: str) -> str:
    """Queue discipline a human-baseline scheme column implies."""
    return "sfq_codel" if scheme == "cubic_sfqcodel" else "droptail"


# ----------------------------------------------------------------------
# EllipsePoint <-> row plumbing (Figures 1/7/9-style summaries)
# ----------------------------------------------------------------------
_ELLIPSE_FIELDS = tuple(f.name for f in fields(EllipsePoint))


def ellipse_row(point: EllipsePoint) -> Dict[str, object]:
    """Flatten an :class:`EllipsePoint` into sweep-row columns."""
    return {name: getattr(point, name) for name in _ELLIPSE_FIELDS}


def ellipse_from_row(row: Mapping[str, object]) -> EllipsePoint:
    """Rebuild the :class:`EllipsePoint` a row was flattened from."""
    return EllipsePoint(**{name: row[name] for name in _ELLIPSE_FIELDS})


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: ``(scale, asset overrides, executor) -> legacy table text``.
RenderFn = Callable[
    [Scale, Optional[Mapping[str, WhiskerTree]], Optional[Executor]], str]


@dataclass
class Experiment:
    """One registered reproduction: a spec plus its legacy renderer.

    ``render`` produces the module's classic table text (byte-identical
    to the pre-spec code); ``spec`` is the declarative form the generic
    engine and ad-hoc tooling consume.  ``spec`` is ``None`` for the one
    non-sweep entry (the Figure 8 queue trace)."""

    eid: str            # paper ordinal, "E1".."E9"
    name: str           # module-ish key, e.g. "link_speed"
    title: str          # the CLI/report section heading
    render: RenderFn
    spec: Optional[ExperimentSpec] = None
    assets: Tuple[str, ...] = ()


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add (or replace) a registry entry; eids must stay unique."""
    for other in _REGISTRY.values():
        if other.name != experiment.name and other.eid == experiment.eid:
            raise ValueError(
                f"eid {experiment.eid!r} already taken by {other.name!r}")
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(key: str) -> Experiment:
    """Look an entry up by name (``"rtt"``) or eid (``"E4"``)."""
    needle = key.strip().lower()
    for entry in _REGISTRY.values():
        if needle in (entry.eid.lower(), entry.name.lower()):
            return entry
    raise KeyError(f"no experiment {key!r}; "
                   f"known: {[e.eid for e in experiments()]}")


def experiments() -> List[Experiment]:
    """Every registered experiment, in paper (eid) order."""
    def order(entry: Experiment):
        digits = entry.eid[1:]
        # Numeric eids sort naturally (E10 after E9, not after E1);
        # anything else sorts after the numbered entries.
        numeric = (0, int(digits)) if digits.isdigit() else (1, 0)
        return (numeric, entry.eid, entry.name)

    return sorted(_REGISTRY.values(), key=order)


# ----------------------------------------------------------------------
# Ad-hoc sweeps: grids the paper never ran
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdhocBase:
    """Defaults for every scenario knob an ad-hoc sweep doesn't vary
    (the calibration network's dumbbell)."""

    link_mbps: float = 32.0
    rtt_ms: float = 150.0
    n_senders: int = 2
    queue: str = "droptail"
    buffer_bdp: Optional[float] = 5.0
    buffer_bytes: Optional[float] = None
    mean_on_s: float = 1.0
    mean_off_s: float = 1.0
    delta: float = 1.0
    # Link dynamics (see repro.sim.dynamics).  ``outage`` is the token
    # form: "none" or "+"-joined START-STOP windows in seconds
    # ("0.5-1.0+2.0-2.5") — the same encoding the adversarial search
    # emits, so searched patterns sweep like any other axis value.
    outage: str = "none"
    outage_policy: str = "hold"
    jitter_ms: float = 0.0
    jitter_period_s: float = 0.05
    # ECN marking threshold in packets ("none" disables; see
    # docs/EXPERIMENTS.md "ECN and the modern scheme family").
    ecn_threshold: Optional[float] = None


#: Axis-name aliases -> AdhocBase field.
_ADHOC_KEYS: Dict[str, str] = {
    "link_mbps": "link_mbps", "speed_mbps": "link_mbps",
    "link_speed_mbps": "link_mbps",
    "rtt_ms": "rtt_ms",
    "senders": "n_senders", "n_senders": "n_senders",
    "num_senders": "n_senders",
    "queue": "queue",
    "buffer_bdp": "buffer_bdp", "buffer_bytes": "buffer_bytes",
    "mean_on_s": "mean_on_s", "mean_off_s": "mean_off_s",
    "delta": "delta",
    "outage": "outage", "outage_policy": "outage_policy",
    "jitter_ms": "jitter_ms", "jitter_period_s": "jitter_period_s",
    "ecn_threshold": "ecn_threshold", "ecn": "ecn_threshold",
}

_ADHOC_NONE = ("none", "inf", "nodrop")


def _adhoc_setting(key: str, value: object) -> object:
    target = _ADHOC_KEYS[key]
    if target in ("buffer_bdp", "buffer_bytes", "ecn_threshold"):
        if value is None or (isinstance(value, str)
                             and value.lower() in _ADHOC_NONE):
            return None
        return float(value)
    if target == "n_senders":
        return int(value)
    if target in ("queue", "outage_policy"):
        return str(value)
    if target == "outage":
        token = str(value)
        parse_outage_token(token)       # eager validation at parse time
        return token
    return float(value)


def _adhoc_dynamics(settings: Mapping[str, object]
                    ) -> Optional[DynamicsSpec]:
    """The DynamicsSpec for a settings dict, or None when all-static."""
    windows = parse_outage_token(str(settings["outage"]))
    jitter_ms = float(settings["jitter_ms"])
    if not windows and jitter_ms == 0:
        return None
    schedule = LinkSchedule(
        outages=windows,
        outage_policy=str(settings["outage_policy"]),
        jitter_ms=jitter_ms,
        jitter_period_s=(float(settings["jitter_period_s"])
                         if jitter_ms > 0 else 0.0))
    return DynamicsSpec(links=(schedule,))


def adhoc_spec(axes: Sequence[Axis],
               schemes: Sequence[str],
               name: str = "sweep",
               base: Optional[AdhocBase] = None,
               bound: bool = True) -> ExperimentSpec:
    """A spec for an arbitrary dumbbell grid.

    ``axes`` sweep any :data:`AdhocBase` knob (aliases: ``link_mbps`` /
    ``speed_mbps``, ``senders`` / ``n_senders``, ...); everything not
    swept comes from ``base``.  ``schemes`` mixes registered protocol
    names (``cubic``, ``newreno``, ...) with trained Tao asset names
    (run as homogeneous ``"learner"`` senders).  ``bound=True`` adds the
    analytic omniscient reference row per grid point.

    The result plugs into :func:`run_experiment` exactly like a
    registered spec — jobs fan-out, store resume, and the shared
    renderers included.
    """
    base = base or AdhocBase()
    axes = tuple(axes)
    for axis in axes:
        if axis.name not in _ADHOC_KEYS:
            raise ValueError(
                f"unknown sweep axis {axis.name!r}; "
                f"known: {sorted(_ADHOC_KEYS)}")
        for value in axis.values:
            # Eager validation at spec time: a malformed value (a bad
            # outage token, a non-numeric rtt) must fail here, naming
            # itself, not as a traceback mid-grid.
            try:
                _adhoc_setting(axis.name, value)
            except ValueError as error:
                raise ValueError(
                    f"axis {axis.name!r} value {value!r}: "
                    f"{error}") from None
    schemes = tuple(schemes)
    if not schemes:
        raise ValueError("need at least one scheme")
    named = set(available_schemes())

    def settings_for(point: Mapping[str, object]) -> Dict[str, object]:
        settings = {f.name: getattr(base, f.name)
                    for f in fields(AdhocBase)}
        for key, value in point.items():
            settings[_ADHOC_KEYS[key]] = _adhoc_setting(key, value)
        return settings

    def build(scheme: str, point: Mapping[str, object]) -> Cell:
        settings = settings_for(point)
        n = int(settings["n_senders"])
        if scheme in named:
            kinds: Tuple[str, ...] = (scheme,) * n
            trees = None
        else:
            kinds = ("learner",) * n
            trees = {"learner": scheme}
        config = NetworkConfig(
            link_speeds_mbps=(float(settings["link_mbps"]),),
            rtt_ms=float(settings["rtt_ms"]),
            sender_kinds=kinds,
            deltas=(float(settings["delta"]),) * n,
            mean_on_s=float(settings["mean_on_s"]),
            mean_off_s=float(settings["mean_off_s"]),
            buffer_bdp=settings["buffer_bdp"],
            buffer_bytes=settings["buffer_bytes"],
            queue=str(settings["queue"]),
            dynamics=_adhoc_dynamics(settings),
            ecn_threshold=settings["ecn_threshold"])
        return Cell(config, trees)

    def metrics(scheme: str, point: Mapping[str, object],
                config: NetworkConfig,
                runs: Sequence[RunResult]) -> Dict[str, object]:
        row: Dict[str, object] = {
            "mean_objective": mean_normalized_score(runs, config)}
        tpts: List[float] = []
        delays: List[float] = []
        utils: List[float] = []
        for result in runs:
            utils.append(result.bottleneck_utilization)
            for flow in scored_flows(result):
                if flow.packets_delivered == 0:
                    continue
                tpts.append(flow.throughput_bps)
                delays.append(flow.queueing_delay_s)
        if tpts:
            row["tpt_mbps"] = sum(tpts) / len(tpts) / 1e6
            row["qdelay_ms"] = sum(delays) / len(delays) * 1e3
        row["utilization"] = sum(utils) / len(utils)
        return row

    reference: Optional[ReferenceFn] = None
    if bound:
        def reference(point: Mapping[str, object]) -> Dict[str, object]:
            settings = settings_for(point)
            n = int(settings["n_senders"])
            speed_bps = float(settings["link_mbps"]) * 1e6
            on_off_total = (settings["mean_on_s"]
                            + settings["mean_off_s"])
            # Same guard as NetworkConfig.p_on: the both-zero
            # degenerate means always-on, not ZeroDivisionError.
            p_on = (settings["mean_on_s"] / on_off_total
                    if on_off_total > 0 else 1.0)
            expected = dumbbell_expected_throughput(speed_bps, n, p_on)
            min_delay = float(settings["rtt_ms"]) / 2e3
            return {
                "mean_objective": normalized_objective(
                    expected, min_delay, speed_bps / n, min_delay),
                "tpt_mbps": expected / 1e6,
                "qdelay_ms": 0.0,
            }

    return ExperimentSpec(
        name=name, schemes=schemes, axes=axes, build=build,
        metrics=metrics, reference=reference,
        title=f"ad-hoc sweep {name!r}")
