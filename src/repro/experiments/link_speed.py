"""Experiment E2 — knowledge of link speed (Table 2, Figure 2).

Four Tao protocols trained for nested link-speed operating ranges
(2x, 10x, 100x, 1000x around the geometric mean of 32 Mbps) are swept
over 1-1000 Mbps against Cubic, Cubic-over-sfqCoDel, and the omniscient
bound.  The paper's finding: a *weak* tradeoff — narrow-range Taos win
modestly inside their range but fall off a cliff outside it, while the
1000x Tao tracks within a few percent everywhere and beats the
human-designed schemes across the whole sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.tree import WhiskerTree
from .api import (Axis, Cell, Experiment, ExperimentSpec,
                  baseline_queue, objective_metrics, register,
                  run_experiment)
from .common import DEFAULT, Scale

__all__ = ["TAO_RANGES", "SPEC", "SweepPoint", "LinkSpeedResult", "run",
           "format_table", "sweep_speeds"]

#: Design ranges of the four Taos (Table 2a), in Mbps.
TAO_RANGES: Dict[str, Tuple[float, float]] = {
    "tao_2x": (22.0, 44.0),
    "tao_10x": (10.0, 100.0),
    "tao_100x": (3.2, 320.0),
    "tao_1000x": (1.0, 1000.0),
}

_BASELINES = ("cubic", "cubic_sfqcodel")

_RTT_MS = 150.0
_SENDERS = 2


@dataclass
class SweepPoint:
    """One (scheme, link speed) cell of Figure 2."""

    scheme: str
    speed_mbps: float
    normalized_objective: float
    in_training_range: bool


@dataclass
class LinkSpeedResult:
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, scheme: str) -> List[SweepPoint]:
        return sorted((p for p in self.points if p.scheme == scheme),
                      key=lambda p: p.speed_mbps)

    def mean_in_range(self, scheme: str) -> float:
        values = [p.normalized_objective for p in self.points
                  if p.scheme == scheme and p.in_training_range]
        return sum(values) / len(values) if values else -math.inf


def sweep_speeds(points: int) -> List[float]:
    """Log-spaced link speeds across 1-1000 Mbps (the testing range)."""
    if points < 2:
        raise ValueError("need at least two sweep points")
    return [10 ** (3.0 * k / (points - 1)) for k in range(points)]


def _config_for(speed: float, kinds: Tuple[str, ...],
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(speed,), rtt_ms=_RTT_MS, sender_kinds=kinds,
        deltas=tuple(1.0 for _ in kinds), mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=5.0, queue=queue)


def _omniscient_point(speed: float) -> float:
    config = _config_for(speed, ("learner",) * _SENDERS, "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), _SENDERS, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def _in_range(scheme: str, speed: object) -> bool:
    bounds = TAO_RANGES.get(scheme)
    return bounds is None or bounds[0] <= speed <= bounds[1]


def _axes(scale: Scale) -> Tuple[Axis, ...]:
    # Explicit values (not Axis.log) to keep the legacy sweep's exact
    # floats — 10**(3k/(n-1)) and lo*(hi/lo)**(k/(n-1)) differ in the
    # last bit, and bitwise-identical configs are the parity contract.
    return (Axis.of("speed_mbps", sweep_speeds(scale.sweep_points),
                    in_range=_in_range),)


def _build(scheme: str, point: Mapping[str, object]) -> Cell:
    speed = point["speed_mbps"]
    if scheme in TAO_RANGES:
        return Cell(_config_for(speed, ("learner",) * _SENDERS,
                                "droptail"),
                    {"learner": scheme})
    return Cell(_config_for(speed, ("cubic",) * _SENDERS,
                            baseline_queue(scheme)), None)


def _reference(point: Mapping[str, object]) -> Dict[str, object]:
    return {"normalized_objective":
            _omniscient_point(point["speed_mbps"])}


SPEC = ExperimentSpec(
    name="link_speed",
    title="E2 Figure 2 / Table 2 — link-speed ranges",
    schemes=tuple(TAO_RANGES) + _BASELINES,
    axes=_axes,
    build=_build,
    metrics=objective_metrics,
    reference=_reference,
    assets=tuple(TAO_RANGES),
)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> LinkSpeedResult:
    """Sweep every scheme across the 1-1000 Mbps testing scenarios.

    ``trees`` maps Tao names to rule tables, overriding shipped assets.
    The whole (scheme × speed × seed) grid goes out as one batch
    through ``executor``.
    """
    sweep = run_experiment(SPEC, scale=scale, trees=trees,
                           base_seed=base_seed, executor=executor)
    return LinkSpeedResult(points=[
        SweepPoint(scheme=row["scheme"], speed_mbps=row["speed_mbps"],
                   normalized_objective=row["normalized_objective"],
                   in_training_range=row["in_training_range"])
        for row in sweep.rows])


def format_table(result: LinkSpeedResult) -> str:
    """Figure 2 as text: normalized objective per scheme and speed."""
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    speeds = sorted({p.speed_mbps for p in result.points})
    header = f"{'Mbps':>8} " + " ".join(f"{s:>14}" for s in schemes)
    lines = ["Link-speed operating range (Table 2 / Figure 2)", header]
    table = {(p.scheme, p.speed_mbps): p for p in result.points}
    for speed in speeds:
        cells = []
        for scheme in schemes:
            point = table[(scheme, speed)]
            marker = "" if point.in_training_range else "*"
            cells.append(f"{point.normalized_objective:>13.2f}{marker or ' '}")
        lines.append(f"{speed:>8.1f} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)


def _render(scale, trees, executor) -> str:
    return format_table(run(scale=scale, trees=trees, executor=executor))


register(Experiment(eid="E2", name="link_speed", title=SPEC.title,
                    render=_render, spec=SPEC, assets=SPEC.assets))
