"""Experiment E2 — knowledge of link speed (Table 2, Figure 2).

Four Tao protocols trained for nested link-speed operating ranges
(2x, 10x, 100x, 1000x around the geometric mean of 32 Mbps) are swept
over 1-1000 Mbps against Cubic, Cubic-over-sfqCoDel, and the omniscient
bound.  The paper's finding: a *weak* tradeoff — narrow-range Taos win
modestly inside their range but fall off a cliff outside it, while the
1000x Tao tracks within a few percent everywhere and beats the
human-designed schemes across the whole sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.objective import normalized_objective
from ..core.omniscient import dumbbell_expected_throughput
from ..core.scenario import NetworkConfig
from ..exec import Executor
from ..remy.assets import load_tree
from ..remy.tree import WhiskerTree
from .common import DEFAULT, Scale, mean_normalized_score, run_seed_batch

__all__ = ["TAO_RANGES", "SweepPoint", "LinkSpeedResult", "run",
           "format_table", "sweep_speeds"]

#: Design ranges of the four Taos (Table 2a), in Mbps.
TAO_RANGES: Dict[str, Tuple[float, float]] = {
    "tao_2x": (22.0, 44.0),
    "tao_10x": (10.0, 100.0),
    "tao_100x": (3.2, 320.0),
    "tao_1000x": (1.0, 1000.0),
}

_BASELINES = ("cubic", "cubic_sfqcodel")

_RTT_MS = 150.0
_SENDERS = 2


@dataclass
class SweepPoint:
    """One (scheme, link speed) cell of Figure 2."""

    scheme: str
    speed_mbps: float
    normalized_objective: float
    in_training_range: bool


@dataclass
class LinkSpeedResult:
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, scheme: str) -> List[SweepPoint]:
        return sorted((p for p in self.points if p.scheme == scheme),
                      key=lambda p: p.speed_mbps)

    def mean_in_range(self, scheme: str) -> float:
        values = [p.normalized_objective for p in self.points
                  if p.scheme == scheme and p.in_training_range]
        return sum(values) / len(values) if values else -math.inf


def sweep_speeds(points: int) -> List[float]:
    """Log-spaced link speeds across 1-1000 Mbps (the testing range)."""
    if points < 2:
        raise ValueError("need at least two sweep points")
    return [10 ** (3.0 * k / (points - 1)) for k in range(points)]


def _config_for(speed: float, kinds: Tuple[str, ...],
                queue: str) -> NetworkConfig:
    return NetworkConfig(
        link_speeds_mbps=(speed,), rtt_ms=_RTT_MS, sender_kinds=kinds,
        deltas=tuple(1.0 for _ in kinds), mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=5.0, queue=queue)


def _omniscient_point(speed: float) -> float:
    config = _config_for(speed, ("learner",) * _SENDERS, "droptail")
    expected = dumbbell_expected_throughput(
        config.link_speed_bps(0), _SENDERS, config.p_on)
    min_delay = config.rtt_ms / 2e3
    return normalized_objective(expected, min_delay,
                                config.fair_share_bps(), min_delay)


def run(scale: Scale = DEFAULT,
        trees: Optional[Dict[str, WhiskerTree]] = None,
        base_seed: int = 1,
        executor: Optional[Executor] = None) -> LinkSpeedResult:
    """Sweep every scheme across the 1-1000 Mbps testing scenarios.

    ``trees`` maps Tao names to rule tables, overriding shipped assets.
    The whole (scheme × speed × seed) grid goes out as one batch
    through ``executor``.
    """
    if trees is None:
        trees = {}
    loaded = {name: trees.get(name) or load_tree(name)
              for name in TAO_RANGES}
    cells = []   # (scheme, speed, config, trees, in_training_range)
    for speed in sweep_speeds(scale.sweep_points):
        for name, (lo, hi) in TAO_RANGES.items():
            config = _config_for(speed, ("learner",) * _SENDERS,
                                 "droptail")
            cells.append((name, speed, config,
                          {"learner": loaded[name]},
                          lo <= speed <= hi))
        for baseline in _BASELINES:
            queue = "sfq_codel" if baseline == "cubic_sfqcodel" \
                else "droptail"
            config = _config_for(speed, ("cubic",) * _SENDERS, queue)
            cells.append((baseline, speed, config, None, True))
    batches = run_seed_batch(
        [(config, tree_map) for _, _, config, tree_map, _ in cells],
        scale=scale, base_seed=base_seed, executor=executor)
    result = LinkSpeedResult()
    for (scheme, speed, config, _, in_range), runs in zip(cells, batches):
        result.points.append(SweepPoint(
            scheme=scheme, speed_mbps=speed,
            normalized_objective=mean_normalized_score(runs, config),
            in_training_range=in_range))
    for speed in sweep_speeds(scale.sweep_points):
        result.points.append(SweepPoint(
            scheme="omniscient", speed_mbps=speed,
            normalized_objective=_omniscient_point(speed),
            in_training_range=True))
    return result


def format_table(result: LinkSpeedResult) -> str:
    """Figure 2 as text: normalized objective per scheme and speed."""
    schemes = list(TAO_RANGES) + list(_BASELINES) + ["omniscient"]
    speeds = sorted({p.speed_mbps for p in result.points})
    header = f"{'Mbps':>8} " + " ".join(f"{s:>14}" for s in schemes)
    lines = ["Link-speed operating range (Table 2 / Figure 2)", header]
    table = {(p.scheme, p.speed_mbps): p for p in result.points}
    for speed in speeds:
        cells = []
        for scheme in schemes:
            point = table[(scheme, speed)]
            marker = "" if point.in_training_range else "*"
            cells.append(f"{point.normalized_objective:>13.2f}{marker or ' '}")
        lines.append(f"{speed:>8.1f} " + " ".join(cells))
    lines.append("(* = outside that Tao's training range)")
    return "\n".join(lines)
