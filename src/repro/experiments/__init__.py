"""Reproductions of every experiment in the paper's evaluation.

One module per figure/table; see DESIGN.md section 4 for the index:

* :mod:`repro.experiments.calibration` — Table 1 / Figure 1
* :mod:`repro.experiments.link_speed` — Table 2 / Figure 2
* :mod:`repro.experiments.multiplexing` — Table 3 / Figure 3
* :mod:`repro.experiments.rtt` — Table 4 / Figure 4
* :mod:`repro.experiments.structure` — Table 5 / Figures 5-6
* :mod:`repro.experiments.tcp_awareness` — Table 6 / Figures 7-8
* :mod:`repro.experiments.diversity` — Table 7 / Figure 9
* :mod:`repro.experiments.signals` — section 3.4
* :mod:`repro.experiments.ecn` — beyond the paper: ECN thresholds vs
  the modern scheme family (DCTCP, PCC)
"""

from . import api
from . import (calibration, diversity, ecn, link_speed, multiplexing,
               rtt, signals, structure, tcp_awareness)
from .api import (Axis, ExperimentSpec, SweepResult, adhoc_spec,
                  experiments, get_experiment, run_experiment)
from .common import (DEFAULT, FULL, QUICK, Scale, SimulationHandle,
                     build_simulation, mean_normalized_score, run_config,
                     run_seeds, scored_flows)

__all__ = [
    "Scale", "QUICK", "DEFAULT", "FULL",
    "SimulationHandle", "build_simulation",
    "run_config", "run_seeds",
    "scored_flows", "mean_normalized_score",
    "api", "Axis", "ExperimentSpec", "SweepResult", "adhoc_spec",
    "experiments", "get_experiment", "run_experiment",
    "calibration", "link_speed", "multiplexing", "rtt",
    "structure", "tcp_awareness", "diversity", "signals", "ecn",
]
