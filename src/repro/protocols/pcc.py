"""PCC: performance-oriented congestion control (Dong et al., NSDI 2015).

PCC abandons hardwired loss reactions: the sender runs consecutive
*monitor intervals* (MIs, one RTT-ish each), observes the utility each
sending rate actually achieved, and moves its rate in the direction
that empirically won.  This implementation follows PCC Allegro's
control loop:

* **Utility.**  ``u = T * sigmoid(L) - r * L`` where ``T`` is the
  delivered throughput over the MI, ``r`` the trialled rate, and ``L``
  the loss fraction, estimated rate-theoretically as
  ``max(0, 1 - T/r)`` — below capacity it is ~0, past capacity it is
  exactly the overdrive fraction.  The sigmoid ``1/(1+exp(a*(L-0.05)))``
  (``a = 100``) is Allegro's loss cliff: utility collapses once more
  than ~5% of sent data dies.
* **Starting state.**  Double the rate every MI while utility keeps
  rising (slow-start analogue); the first decrease enters decision
  making.
* **Decision making.**  Run paired rate trials ``r*(1+eps)`` then
  ``r*(1-eps)`` and step toward the trial with higher utility.
  Allegro randomizes the trial order; this port *alternates* it
  deterministically MI-to-MI, which serves the same de-biasing purpose
  without an RNG — controllers must stay seed-free so the executor
  determinism contract (serial == pooled == store-backed, bitwise)
  holds.
* **Rate adjusting.**  Consecutive wins in the same direction grow the
  step (``n * eps * r``); a flip resets ``n`` and returns to paired
  trials.

The transport stays window-based; PCC drives it by pacing
(:meth:`pacing_interval` = ``1/rate``) and keeps the window just a
cushion above ``rate * RTT`` so pacing, not the window, is binding.
PCC does **not** negotiate ECN (`ecn = False`): marks are ignored, as
in the original deployment, and the scheme is evaluated packet-only
(the fluid backend has no MI/trial analogue — ``fluid_refusal`` names
it by scheme).
"""

from __future__ import annotations

import math

from .base import AckContext, CongestionController

__all__ = ["PCCController", "PCC_EPSILON", "PCC_LOSS_CLIFF"]

#: Fractional rate perturbation of a trial MI (Allegro's 5%).
PCC_EPSILON = 0.05

#: Loss fraction where the sigmoid utility collapses.
PCC_LOSS_CLIFF = 0.05

_SIGMOID_SLOPE = 100.0

#: Controller states.
_STARTING, _TRIAL_FIRST, _TRIAL_SECOND, _MOVING = range(4)


class PCCController(CongestionController):
    """PCC Allegro: empirical utility-gradient rate control."""

    name = "pcc"

    def __init__(self, epsilon: float = PCC_EPSILON,
                 min_rate_pps: float = 1.0,
                 reset_each_on: bool = False):
        super().__init__()
        self.epsilon = epsilon
        self.min_rate_pps = min_rate_pps
        self.reset_each_on = reset_each_on
        self._started = False
        #: Closed-MI utilities in order (observable by tests/tools).
        self.utilities: list[float] = []
        self._reset()

    def _reset(self) -> None:
        self.window = 4.0
        self.rate = 0.0            # pkts/s; 0 = not yet initialized
        self._rtt = 0.0
        self._state = _STARTING
        self._mi_rate = 0.0        # the rate this MI is trialling
        self._mi_start = -1.0
        self._mi_end = -1.0
        # ACK-attribution window: packets sent during the MI come back
        # as ACKs one RTT later, so the MI's throughput is counted over
        # [start + rtt, end + rtt) — without the offset every MI would
        # measure the *previous* MI's rate and the utility gradient
        # would point the wrong way.
        self._count_from = -1.0
        self._count_until = -1.0
        self._mi_acked = 0
        self._first_chunk = 0
        self._t_first = -1.0
        self._t_last = -1.0
        self._last_utility = -math.inf
        self._trial_up_first = True
        self._trial_utilities = (0.0, 0.0)
        self._direction = 1.0
        self._streak = 0
        self._base_rate = 0.0
        del self.utilities[:]

    def on_flow_start(self, now: float) -> None:
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self._reset()

    # -- utility -------------------------------------------------------
    def _utility(self, rate: float, throughput: float) -> float:
        loss = max(0.0, 1.0 - throughput / rate) if rate > 0 else 0.0
        x = _SIGMOID_SLOPE * (loss - PCC_LOSS_CLIFF)
        sigmoid = 1.0 / (1.0 + math.exp(min(x, 50.0)))
        return throughput * sigmoid - rate * loss

    # -- monitor-interval machinery ------------------------------------
    def _mi_duration(self) -> float:
        # A hair over one RTT of sending per trial; the attribution
        # window below shifts by a further RTT to catch its ACKs.
        return max(1.1 * self._rtt, 0.01)

    def _begin_mi(self, now: float, rate: float) -> None:
        self._mi_rate = max(rate, self.min_rate_pps)
        self._mi_start = now
        self._mi_end = now + self._mi_duration()
        lag = self._rtt
        self._count_from = self._mi_start + lag
        self._count_until = self._mi_end + lag
        self._mi_acked = 0
        self._first_chunk = 0
        self._t_first = -1.0
        self._t_last = -1.0
        self._apply_rate(self._mi_rate)

    def _apply_rate(self, rate: float) -> None:
        self.rate = max(rate, self.min_rate_pps)
        if self._rtt > 0.0:
            # Pacing is the binding control; the window is a cushion.
            self.window = max(4.0, 2.0 * self.rate * self._rtt)
        self._clamp_window()

    def _close_mi(self, now: float) -> float:
        # Delivery rate from the ACK spacing *inside* the window (first
        # counted ACK to last), not count-over-duration: window
        # boundaries slice the ACK stream, and at tens of packets per
        # MI a one-packet boundary error would cross the loss cliff.
        span = self._t_last - self._t_first
        counted = self._mi_acked - self._first_chunk
        if counted > 0 and span > 0.0:
            throughput = counted / span
        else:
            elapsed = max(self._mi_end - self._mi_start, 1e-9)
            throughput = self._mi_acked / elapsed
        utility = self._utility(self._mi_rate, throughput)
        self.utilities.append(utility)
        return utility

    def _advance(self, now: float) -> None:
        """The MI that just ended decides the next MI's rate."""
        utility = self._close_mi(now)
        state = self._state
        if state == _STARTING:
            if utility > self._last_utility:
                self._last_utility = utility
                self._begin_mi(now, self._mi_rate * 2.0)
            else:
                # Overshot: fall back to the last good rate, start
                # paired trials around it.
                base = self._mi_rate / 2.0
                self._state = _TRIAL_FIRST
                self._begin_mi(now, self._trial_rate(base, first=True))
                self._base_rate = base
        elif state == _TRIAL_FIRST:
            self._trial_utilities = (utility, 0.0)
            self._state = _TRIAL_SECOND
            self._begin_mi(now, self._trial_rate(self._base_rate,
                                                 first=False))
        elif state == _TRIAL_SECOND:
            first_u, _ = self._trial_utilities
            up_won = (first_u > utility) if self._trial_up_first \
                else (utility > first_u)
            self._trial_up_first = not self._trial_up_first
            direction = 1.0 if up_won else -1.0
            if direction == self._direction:
                self._streak += 1
            else:
                self._streak = 1
            self._direction = direction
            step = self._streak * self.epsilon * self._base_rate
            self._state = _MOVING
            self._last_utility = max(self._trial_utilities[0], utility)
            self._begin_mi(now, self._base_rate + direction * step)
        else:  # _MOVING
            if utility >= self._last_utility:
                self._last_utility = utility
                self._streak += 1
                step = self._streak * self.epsilon * self._mi_rate
                self._begin_mi(now,
                               self._mi_rate + self._direction * step)
            else:
                # The move stopped paying: re-trial around here.
                base = self._mi_rate
                self._streak = 0
                self._base_rate = base
                self._state = _TRIAL_FIRST
                self._begin_mi(now, self._trial_rate(base, first=True))

    def _trial_rate(self, base: float, first: bool) -> float:
        up = self._trial_up_first == first
        factor = 1.0 + self.epsilon if up else 1.0 - self.epsilon
        return base * factor

    # -- transport hooks -----------------------------------------------
    def _observe(self, ctx: AckContext) -> None:
        if ctx.rtt_sample > 0.0:
            self._rtt = ctx.rtt_sample if self._rtt == 0.0 \
                else self._rtt + (ctx.rtt_sample - self._rtt) / 8.0
        if self.rate == 0.0:
            # First feedback: seed the rate at ~initial window per RTT.
            rtt = self._rtt if self._rtt > 0.0 else max(ctx.base_rtt, 1e-3)
            self._last_utility = -math.inf
            self._begin_mi(ctx.now, max(4.0 / rtt, self.min_rate_pps))
            return
        if ctx.now >= self._count_until:
            self._advance(ctx.now)

    def on_ack(self, ctx: AckContext) -> None:
        if self._count_from <= ctx.now < self._count_until:
            if self._mi_acked == 0:
                self._first_chunk = ctx.newly_acked
                self._t_first = ctx.now
            self._mi_acked += ctx.newly_acked
            self._t_last = ctx.now
        self._observe(ctx)

    def on_dupack(self, ctx: AckContext) -> None:
        self._observe(ctx)

    def on_timeout(self, now: float) -> None:
        # Losing the ACK clock entirely is outside the MI model; start
        # over from half the current rate.
        if self.rate > 0.0:
            self._state = _STARTING
            self._last_utility = -math.inf
            self._begin_mi(now, self.rate / 2.0)

    def pacing_interval(self) -> float:
        if self.rate <= 0.0:
            return 0.0
        return 1.0 / self.rate
