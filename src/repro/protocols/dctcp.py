"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

DCTCP is the canonical ECN-proportional scheme: switches mark packets
with CE once the instantaneous queue exceeds a threshold *K*
(:class:`~repro.sim.queues.DropTailQueue` ``ecn_threshold``), receivers
echo the marks, and the sender keeps an EWMA ``alpha`` of the *fraction*
of marked packets per window of data:

    alpha <- (1 - g) * alpha + g * F        (g = 1/16)

and on a round that saw any mark cuts multiplicatively in proportion::

    cwnd <- cwnd * (1 - alpha / 2)

A fully marked window (alpha = 1) behaves like Reno's halving; a lightly
marked one gives back only a sliver, which is what keeps the queue
pinned near *K* with high utilization.  Loss (buffer overflow, or an
ECN-less bottleneck) falls back to NewReno-style halving, so the scheme
degrades to Reno when the network offers no marks — the same fallback
the original deployment relies on.
"""

from __future__ import annotations

from .base import AckContext, CongestionController

__all__ = ["DCTCPController", "DCTCP_GAIN"]

#: EWMA gain for the marked fraction (the paper's g = 1/16).
DCTCP_GAIN = 1.0 / 16.0


class DCTCPController(CongestionController):
    """DCTCP: EWMA of the ECN-marked fraction, proportional decrease."""

    name = "dctcp"
    ecn = True

    def __init__(self, initial_window: float = 2.0, gain: float = DCTCP_GAIN,
                 reset_each_on: bool = False):
        super().__init__()
        self.initial_window = initial_window
        self.gain = gain
        self.reset_each_on = reset_each_on
        self._started = False
        self._reset()

    def _reset(self) -> None:
        self.window = self.initial_window
        self.ssthresh = float("inf")
        self.alpha = 0.0
        self._in_recovery = False
        # One observation window of data (~one RTT, measured in
        # sequence space as the paper does): marks/ACKs are tallied
        # until the cumulative ACK passes the sequence that was next
        # when the window opened.
        self._round_end = -1
        self._acked_in_round = 0
        self._marked_in_round = 0
        self._cut_pending = False

    def on_flow_start(self, now: float) -> None:
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self._reset()

    def _end_round(self, ctx: AckContext) -> None:
        total = self._acked_in_round
        if total > 0:
            fraction = self._marked_in_round / total
            self.alpha += self.gain * (fraction - self.alpha)
            if self._cut_pending:
                # Proportional decrease, once per marked round.
                self.window *= 1.0 - self.alpha / 2.0
                self.ssthresh = max(self.window, 2.0)
                self._clamp_window()
        self._round_end = ctx.cum_ack + int(self.window)
        self._acked_in_round = 0
        self._marked_in_round = 0
        self._cut_pending = False

    def on_ack(self, ctx: AckContext) -> None:
        self._acked_in_round += ctx.newly_acked
        if ctx.ecn_echo:
            self._marked_in_round += ctx.newly_acked
            self._cut_pending = True
        if self._round_end < 0:
            self._round_end = ctx.cum_ack + int(self.window)
        elif ctx.cum_ack >= self._round_end:
            self._end_round(ctx)
        if self._in_recovery and ctx.in_recovery:
            return
        if self.window < self.ssthresh and not self._cut_pending:
            self.window += ctx.newly_acked               # slow start
        else:
            self.window += ctx.newly_acked / self.window  # cong. avoid
        self._clamp_window()

    def on_dupack(self, ctx: AckContext) -> None:
        # Marks ride dupacks too; count the mark, not the (zero) data.
        if ctx.ecn_echo:
            self._cut_pending = True

    def on_loss(self, now: float) -> None:
        # Real loss: Reno fallback (an overflowing or ECN-less queue).
        self.ssthresh = max(self.window / 2.0, 2.0)
        self.window = self.ssthresh
        self._in_recovery = True
        self._clamp_window()

    def on_recovery_exit(self, ctx: AckContext) -> None:
        self.window = self.ssthresh
        self._in_recovery = False
        self._clamp_window()

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.window / 2.0, 2.0)
        self.window = 1.0
        self.alpha = min(1.0, self.alpha + self.gain * (1.0 - self.alpha))
        self._in_recovery = False
