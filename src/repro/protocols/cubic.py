"""TCP Cubic (Ha, Rhee, Xu 2008; RFC 8312).

Cubic is the paper's primary human-designed baseline: "the default
end-to-end congestion-control algorithm on Linux".  The window grows as
a cubic function of time since the last decrease,

    W_cubic(t) = C * (t - K)^3 + W_max,      K = cbrt(W_max * beta / C)

so it is concave up to the pre-loss window W_max, plateaus there, then
probes convexly — independent of RTT.  A "TCP-friendly" lower bound
keeps it at least as aggressive as AIMD(0.53, 0.7)-equivalent Reno in
short-RTT regimes (RFC 8312 section 4.2).

Loss handling (fast recovery entry/exit, timeouts) follows the same
transport events as NewReno; Cubic only changes the growth and decrease
rules.
"""

from __future__ import annotations

from .base import AckContext, CongestionController

__all__ = ["CubicController", "CUBIC_C", "CUBIC_BETA"]

#: Cubic scaling constant (RFC 8312 section 5).
CUBIC_C = 0.4

#: Multiplicative decrease: window shrinks to 70% on loss.
CUBIC_BETA = 0.7


class CubicController(CongestionController):
    """TCP Cubic with the TCP-friendly region."""

    name = "cubic"

    def __init__(self, initial_window: float = 2.0,
                 c: float = CUBIC_C, beta: float = CUBIC_BETA,
                 fast_convergence: bool = True,
                 hystart: bool = True,
                 reset_each_on: bool = False):
        super().__init__()
        self.initial_window = initial_window
        self.c = c
        self.beta = beta
        self.fast_convergence = fast_convergence
        self.hystart = hystart
        self.reset_each_on = reset_each_on
        self.window = initial_window
        self.ssthresh = float("inf")
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: float | None = None
        self._w_tcp = 0.0
        self._in_recovery = False
        self._started = False
        # HyStart round state.
        self._round_end_time = 0.0
        self._round_min_rtt = float("inf")
        self._prev_round_min_rtt = float("inf")
        self._round_samples = 0

    def on_flow_start(self, now: float) -> None:
        # Like the paper's ns-2 setup, the TCP connection persists across
        # the application's on/off cycles: congestion state is kept
        # unless ``reset_each_on`` asks for fresh-transfer semantics.
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self.window = self.initial_window
        self.ssthresh = float("inf")
        self._w_max = 0.0
        self._epoch_start = None
        self._in_recovery = False
        self._round_end_time = 0.0
        self._round_min_rtt = float("inf")
        self._prev_round_min_rtt = float("inf")
        self._round_samples = 0

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        if self._in_recovery and ctx.in_recovery:
            return
        if self.window < self.ssthresh:
            # HyStart (Linux Cubic's safe slow-start exit): leave slow
            # start once this round's RTT floor has risen appreciably
            # over the previous round's, instead of blasting until the
            # buffer overflows.
            if self.hystart and self._hystart_exit(ctx):
                self.ssthresh = self.window
            else:
                self.window += ctx.newly_acked   # classic slow start
                self._clamp_window()
                return
        for _ in range(ctx.newly_acked):
            self._cubic_update(ctx.now, ctx.rtt_sample)
        self._clamp_window()

    def _hystart_exit(self, ctx: AckContext) -> bool:
        """Round-based delay-increase detection (HyStart, as in Linux)."""
        if ctx.now >= self._round_end_time:
            self._prev_round_min_rtt = self._round_min_rtt
            self._round_min_rtt = float("inf")
            self._round_samples = 0
            self._round_end_time = ctx.now + ctx.rtt_sample
        if self._round_samples < 8:
            self._round_samples += 1
            if ctx.rtt_sample < self._round_min_rtt:
                self._round_min_rtt = ctx.rtt_sample
        if (self._round_samples < 8
                or self._prev_round_min_rtt == float("inf")):
            return False
        eta = min(max(self._prev_round_min_rtt / 8.0, 0.004), 0.016)
        return self._round_min_rtt >= self._prev_round_min_rtt + eta


    def _cubic_update(self, now: float, rtt: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            if self._w_max < self.window:
                self._w_max = self.window
            self._k = ((self._w_max * (1.0 - self.beta)) / self.c) ** (1 / 3)
            self._w_tcp = self.window
        t = now - self._epoch_start
        target = self.c * (t - self._k) ** 3 + self._w_max

        # TCP-friendly region: emulated Reno window with the AIMD
        # parameters that match Cubic's average rate (RFC 8312 eq. 4).
        rtt = max(rtt, 1e-6)
        self._w_tcp += (3.0 * (1.0 - self.beta) / (1.0 + self.beta)) \
            / self.window
        target = max(target, self._w_tcp)

        if target > self.window:
            # Approach the target over the next RTT: per-ack increment.
            self.window += (target - self.window) / self.window
        else:
            # Sub-target (plateau): probe very gently.
            self.window += 0.01 / self.window

    # ------------------------------------------------------------------
    # Decrease
    # ------------------------------------------------------------------
    def on_loss(self, now: float) -> None:
        self._epoch_start = None
        if self.fast_convergence and self.window < self._w_max:
            # Release bandwidth faster when flows are leaving.
            self._w_max = self.window * (1.0 + self.beta) / 2.0
        else:
            self._w_max = self.window
        self.window = max(self.window * self.beta, 2.0)
        self.ssthresh = self.window
        self._in_recovery = True

    def on_recovery_exit(self, ctx: AckContext) -> None:
        self.window = max(self.ssthresh, 2.0)
        self._in_recovery = False

    def on_timeout(self, now: float) -> None:
        self._epoch_start = None
        self._w_max = self.window
        self.ssthresh = max(self.window * self.beta, 2.0)
        self.window = 1.0
        self._in_recovery = False
