"""Configurable AIMD congestion control.

The paper's cross-traffic model: "Remy uses an AIMD protocol similar to
TCP NewReno to simulate TCP cross-traffic" (section 4.5).  This module
provides the plain additive-increase / multiplicative-decrease core with
optional slow start; :mod:`repro.protocols.newreno` builds the full
NewReno behaviour (fast-recovery window inflation) on top of it.
"""

from __future__ import annotations

from .base import AckContext, CongestionController

__all__ = ["AimdController"]


class AimdController(CongestionController):
    """AIMD: +``increase`` packets per RTT, x``decrease`` on loss.

    Parameters
    ----------
    increase:
        Additive increase per round trip, in packets (TCP uses 1).
    decrease:
        Multiplicative decrease factor applied on loss (TCP uses 0.5).
    initial_window:
        Congestion window at flow start.
    use_slow_start:
        Grow exponentially until ``ssthresh`` like TCP, then linearly.
    """

    name = "aimd"

    def __init__(self, increase: float = 1.0, decrease: float = 0.5,
                 initial_window: float = 2.0,
                 use_slow_start: bool = True,
                 reset_each_on: bool = False):
        super().__init__()
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if increase <= 0.0:
            raise ValueError("increase must be positive")
        self.increase = increase
        self.decrease = decrease
        self.initial_window = initial_window
        self.use_slow_start = use_slow_start
        self.reset_each_on = reset_each_on
        self.ssthresh = float("inf")
        self.window = initial_window
        self._started = False

    def on_flow_start(self, now: float) -> None:
        # Persistent-connection semantics by default (see NewReno).
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self.window = self.initial_window
        self.ssthresh = float("inf")

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.in_recovery:
            return
        if self.use_slow_start and self.window < self.ssthresh:
            self.window += ctx.newly_acked
        else:
            self.window += self.increase * ctx.newly_acked / self.window
        self._clamp_window()

    def on_loss(self, now: float) -> None:
        self.ssthresh = max(self.window * self.decrease, 2.0)
        self.window = self.ssthresh
        self._clamp_window()

    def on_recovery_exit(self, ctx: AckContext) -> None:
        self.window = self.ssthresh
        self._clamp_window()

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.window * self.decrease, 2.0)
        self.window = 1.0
