"""RemyCC: the runtime for computer-generated (Tao) congestion control.

A RemyCC sender keeps the paper's four congestion signals
(:class:`~repro.remy.memory.Memory`), and on every arriving ACK looks the
signal vector up in the rule table and applies the matched action (paper
sections 3.3 and 3.5):

* congestion window becomes ``m * cwnd + b`` (clamped to [1, cap]),
* outgoing packets are paced at least ``tau`` seconds apart.

The per-ACK path runs against the tree's compiled form
(:class:`~repro.remy.compiled.CompiledTree`): an iterative index walk
over flat arrays instead of node-object chasing, with the clipped
signal vector written into a reusable scratch buffer
(:meth:`Memory.signals_into`) so the steady state allocates nothing.
Results are bitwise-identical to ``WhiskerTree.lookup`` — the golden
trace suite pins this.

Usage recording has two modes.  By default each lookup write-throughs to
the matched :class:`~repro.remy.whisker.Whisker` exactly as the
interpreted path did, so direct users of the controller see stats on the
tree immediately.  The simulation builder instead passes a shared
:class:`~repro.remy.compiled.UsageStats` accumulator (one per tree per
run), which turns recording into flat array increments and merges back
into the tree once per run.

On a retransmission timeout the memory and window reset, mirroring the
watchdog behaviour of the authors' ns-2 RemyCC port.
"""

from __future__ import annotations

from typing import Optional

from ..remy.compiled import UsageStats
from ..remy.memory import Memory
from ..remy.tree import WhiskerTree
from .base import AckContext, CongestionController

__all__ = ["RemyCCController", "REMY_MAX_WINDOW"]

#: Window cap for rule-table protocols.  Large enough for the biggest
#: bandwidth-delay product in the study (1000 Mbps x 150 ms = 12500
#: packets) with headroom.
REMY_MAX_WINDOW = 20_000.0


class RemyCCController(CongestionController):
    """Window/pacing control driven by a whisker tree.

    Parameters
    ----------
    tree:
        The rule table (pre-trained asset or optimizer output).  Its
        compiled form is taken once at construction; mutating the tree
        mid-simulation is not supported.
    record_usage:
        When True, every lookup updates the matched whisker's usage
        statistics — the optimizer needs this; plain evaluation runs
        leave it off for speed.
    usage_stats:
        Optional shared flat accumulator (see
        :class:`~repro.remy.compiled.UsageStats`).  When given, hits are
        recorded there instead of written through to the whiskers; the
        owner is responsible for merging it back into the tree after the
        run (``SimulationHandle.run`` does).  All controllers driving
        the same tree in one run must share one instance so the float
        accumulation order matches the interpreted path's.
    """

    name = "remycc"

    def __init__(self, tree: WhiskerTree, record_usage: bool = False,
                 initial_window: float = 1.0,
                 usage_stats: Optional[UsageStats] = None):
        super().__init__()
        self.tree = tree
        self.record_usage = record_usage
        self.initial_window = initial_window
        self.memory = Memory()
        self.window = initial_window
        self._intersend = 0.0
        compiled = tree.compiled()
        self._compiled = compiled
        # Hot-path state unpacked into slots-free locals-per-lookup.
        self._root_ref = compiled.root_ref
        self._dims = compiled.dims
        self._thresholds = compiled.thresholds
        self._left = compiled.left
        self._right = compiled.right
        self._m = compiled.action_m
        self._b = compiled.action_b
        self._tau = compiled.action_tau
        self._signals = [0.0, 0.0, 0.0, 1.0]
        self._stats = usage_stats
        #: Leaves in compiled order, for write-through recording.
        self._leaf_whiskers = tree.whiskers() if record_usage \
            and usage_stats is None else None

    def on_flow_start(self, now: float) -> None:
        self.memory.reset()
        self.window = self.initial_window
        self._intersend = 0.0

    def on_ack(self, ctx: AckContext) -> None:
        self._update(ctx)

    def on_dupack(self, ctx: AckContext) -> None:
        # A duplicate ACK still carries timing information; RemyCC has no
        # loss-specific rule, so it treats every ACK arrival alike.
        self._update(ctx)

    def _update(self, ctx: AckContext) -> None:
        memory = self.memory
        memory.on_ack(ctx.now, ctx.echo_sent_at, ctx.rtt_sample)
        signals = self._signals
        memory.signals_into(signals)

        node = self._root_ref
        dims = self._dims
        thresholds = self._thresholds
        left = self._left
        right = self._right
        while node >= 0:
            node = left[node] if signals[dims[node]] < thresholds[node] \
                else right[node]
        leaf = ~node

        if self.record_usage:
            stats = self._stats
            if stats is not None:
                stats.counts[leaf] += 1
                base = leaf * 4
                sums = stats.sums
                sums[base] += signals[0]
                sums[base + 1] += signals[1]
                sums[base + 2] += signals[2]
                sums[base + 3] += signals[3]
            else:
                self._leaf_whiskers[leaf].record_use(signals)

        window = self.window * self._m[leaf] + self._b[leaf]
        if window < 1.0:
            window = 1.0
        elif window > REMY_MAX_WINDOW:
            window = REMY_MAX_WINDOW
        self.window = window
        self._intersend = self._tau[leaf]

    def on_timeout(self, now: float) -> None:
        self.memory.reset()
        self.window = self.initial_window
        self._intersend = 0.0

    def pacing_interval(self) -> float:
        return self._intersend
