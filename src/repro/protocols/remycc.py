"""RemyCC: the runtime for computer-generated (Tao) congestion control.

A RemyCC sender keeps the paper's four congestion signals
(:class:`~repro.remy.memory.Memory`), and on every arriving ACK looks the
signal vector up in a :class:`~repro.remy.tree.WhiskerTree` and applies
the matched action (paper sections 3.3 and 3.5):

* congestion window becomes ``m * cwnd + b`` (clamped to [1, cap]),
* outgoing packets are paced at least ``tau`` seconds apart.

On a retransmission timeout the memory and window reset, mirroring the
watchdog behaviour of the authors' ns-2 RemyCC port.
"""

from __future__ import annotations

from ..remy.memory import Memory
from ..remy.tree import WhiskerTree
from .base import AckContext, CongestionController

__all__ = ["RemyCCController", "REMY_MAX_WINDOW"]

#: Window cap for rule-table protocols.  Large enough for the biggest
#: bandwidth-delay product in the study (1000 Mbps x 150 ms = 12500
#: packets) with headroom.
REMY_MAX_WINDOW = 20_000.0


class RemyCCController(CongestionController):
    """Window/pacing control driven by a whisker tree.

    Parameters
    ----------
    tree:
        The rule table (pre-trained asset or optimizer output).
    record_usage:
        When True, every lookup updates the matched whisker's usage
        statistics — the optimizer needs this; plain evaluation runs
        leave it off for speed.
    """

    name = "remycc"

    def __init__(self, tree: WhiskerTree, record_usage: bool = False,
                 initial_window: float = 1.0):
        super().__init__()
        self.tree = tree
        self.record_usage = record_usage
        self.initial_window = initial_window
        self.memory = Memory()
        self.window = initial_window
        self._intersend = 0.0

    def on_flow_start(self, now: float) -> None:
        self.memory.reset()
        self.window = self.initial_window
        self._intersend = 0.0

    def on_ack(self, ctx: AckContext) -> None:
        self._update(ctx)

    def on_dupack(self, ctx: AckContext) -> None:
        # A duplicate ACK still carries timing information; RemyCC has no
        # loss-specific rule, so it treats every ACK arrival alike.
        self._update(ctx)

    def _update(self, ctx: AckContext) -> None:
        self.memory.on_ack(ctx.now, ctx.echo_sent_at, ctx.rtt_sample)
        vector = self.memory.vector()
        whisker = self.tree.lookup(vector)
        if self.record_usage:
            whisker.record_use(vector)
        action = whisker.action
        new_window = action.apply_to_window(self.window)
        self.window = min(max(new_window, 1.0), REMY_MAX_WINDOW)
        self._intersend = action.intersend_s

    def on_timeout(self, now: float) -> None:
        self.memory.reset()
        self.window = self.initial_window
        self._intersend = 0.0

    def pacing_interval(self) -> float:
        return self._intersend
