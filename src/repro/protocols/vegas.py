"""TCP Vegas (Brakmo, O'Malley, Peterson 1994).

Vegas is the paper's canonical cautionary tale (section 4.5): a
delay-based protocol that performs beautifully against its own kind but
is "squeezed out by the more-aggressive cross-traffic produced by
traditional TCP", which is why delay-based designs saw little adoption
— and exactly the fate the TCP-naive Tao meets in Figure 7.  Including
it lets users reproduce that classic squeeze directly against this
repository's NewReno/Cubic.

Algorithm (congestion avoidance, per RTT):

    diff = cwnd / base_rtt - cwnd / rtt        # packets "in the queue"
    diff < alpha  ->  cwnd += 1
    diff > beta   ->  cwnd -= 1
    otherwise         hold

with the classic alpha=1, beta=3 thresholds, plus a Vegas-flavoured
slow start that doubles only every other RTT and exits once diff
exceeds gamma.
"""

from __future__ import annotations

from .base import AckContext, CongestionController

__all__ = ["VegasController"]


class VegasController(CongestionController):
    """Delay-based TCP Vegas."""

    name = "vegas"

    def __init__(self, alpha: float = 1.0, beta: float = 3.0,
                 gamma: float = 1.0, initial_window: float = 2.0,
                 reset_each_on: bool = False):
        super().__init__()
        if not 0 < alpha <= beta:
            raise ValueError("need 0 < alpha <= beta")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.initial_window = initial_window
        self.reset_each_on = reset_each_on
        self.window = initial_window
        self.base_rtt = float("inf")
        self._in_slow_start = True
        self._grow_this_round = True
        self._round_end = 0.0
        self._round_min_rtt = float("inf")
        self._started = False
        self._in_recovery = False

    def on_flow_start(self, now: float) -> None:
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self.window = self.initial_window
        self.base_rtt = float("inf")
        self._in_slow_start = True
        self._grow_this_round = True
        self._round_end = 0.0
        self._round_min_rtt = float("inf")
        self._in_recovery = False

    def on_ack(self, ctx: AckContext) -> None:
        rtt = ctx.rtt_sample
        if rtt <= 0:
            return
        if rtt < self.base_rtt:
            self.base_rtt = rtt
        if rtt < self._round_min_rtt:
            self._round_min_rtt = rtt
        if self._in_recovery and ctx.in_recovery:
            return
        if ctx.now >= self._round_end:
            self._end_of_round(ctx.now)

    def _end_of_round(self, now: float) -> None:
        rtt = self._round_min_rtt if self._round_min_rtt < float("inf") \
            else self.base_rtt
        self._round_end = now + rtt
        self._round_min_rtt = float("inf")
        # Expected vs actual rate difference, in packets of queue.
        diff = self.window * (1.0 - self.base_rtt / rtt)
        if self._in_slow_start:
            if diff > self.gamma:
                self._in_slow_start = False
                self.window -= diff   # drain the overshoot
            elif self._grow_this_round:
                self.window *= 2.0
            self._grow_this_round = not self._grow_this_round
        else:
            if diff < self.alpha:
                self.window += 1.0
            elif diff > self.beta:
                self.window -= 1.0
        self._clamp_window(minimum=2.0)

    def on_loss(self, now: float) -> None:
        # Vegas halves less aggressively than Reno on actual loss.
        self.window = max(self.window * 0.75, 2.0)
        self._in_slow_start = False
        self._in_recovery = True

    def on_recovery_exit(self, ctx: AckContext) -> None:
        self._in_recovery = False

    def on_timeout(self, now: float) -> None:
        self.window = 2.0
        self._in_slow_start = True
        self._in_recovery = False
