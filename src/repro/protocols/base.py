"""The congestion-controller interface.

Every scheme in the study — TCP NewReno, Cubic, the AIMD cross-traffic
stand-in, and RemyCC/Tao rule tables — implements
:class:`CongestionController`.  The surrounding transport machinery
(:mod:`repro.protocols.transport`) is *shared*: cumulative ACKs, duplicate
ACK counting, fast retransmit, and retransmission timeouts are identical
across schemes, so performance differences isolate the congestion-control
*policy*, mirroring how the paper runs every scheme inside the same ns-2
harness.

The controller sees three kinds of events:

* ``on_ack`` — a new cumulative ACK arrived (window should usually grow),
* ``on_dupack`` — a duplicate ACK arrived (Reno-style window inflation
  hooks),
* ``on_loss`` / ``on_timeout`` — loss detected by triple-dupack or by the
  retransmission timer.

and exposes two knobs the transport reads before each transmission:

* :attr:`CongestionController.window` — the congestion window in packets,
* :meth:`CongestionController.pacing_interval` — the minimum spacing
  between transmissions (0 disables pacing; only RemyCC uses it, via the
  tau component of its actions — paper section 3.5).
"""

from __future__ import annotations

__all__ = ["AckContext", "CongestionController", "MAX_WINDOW_PACKETS"]

#: Safety cap on any scheme's congestion window.
MAX_WINDOW_PACKETS = 1_000_000.0


class AckContext:
    """Everything a controller may want to know about an arriving ACK."""

    __slots__ = ("now", "rtt_sample", "newly_acked", "cum_ack",
                 "echo_sent_at", "receiver_time", "in_recovery",
                 "base_rtt", "ecn_echo")

    def __init__(self, now: float, rtt_sample: float, newly_acked: int,
                 cum_ack: int, echo_sent_at: float, receiver_time: float,
                 in_recovery: bool, base_rtt: float,
                 ecn_echo: bool = False):
        self.now = now
        self.rtt_sample = rtt_sample
        self.newly_acked = newly_acked
        self.cum_ack = cum_ack
        self.echo_sent_at = echo_sent_at
        self.receiver_time = receiver_time
        self.in_recovery = in_recovery
        self.base_rtt = base_rtt
        self.ecn_echo = ecn_echo


class CongestionController:
    """Base class; subclasses override the event hooks they care about."""

    #: Human-readable scheme name (used in results tables).
    name = "base"

    #: ECN-capable schemes set this True: the transport then stamps
    #: outgoing data packets ECT so ECN-enabled queues mark instead of
    #: dropping, and CE echoes arrive via :attr:`AckContext.ecn_echo`.
    ecn = False

    def __init__(self) -> None:
        self.window: float = 1.0

    # -- lifecycle -----------------------------------------------------
    def on_flow_start(self, now: float) -> None:
        """Called when the application turns the sender on.

        The paper's on/off model treats each "on" period as a fresh
        transfer, so controllers reset their congestion state here.
        """

    # -- ACK clock -----------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        """A cumulative ACK advanced the left edge of the window."""

    def on_dupack(self, ctx: AckContext) -> None:
        """A duplicate ACK arrived (window inflation hooks)."""

    # -- loss ----------------------------------------------------------
    def on_loss(self, now: float) -> None:
        """Triple-dupack loss: fast retransmit was just triggered."""

    def on_recovery_exit(self, ctx: AckContext) -> None:
        """The ACK covering the recovery point arrived (deflate window)."""

    def on_timeout(self, now: float) -> None:
        """The retransmission timer fired."""

    # -- knobs read by the transport ------------------------------------
    def pacing_interval(self) -> float:
        """Minimum seconds between transmissions; 0 disables pacing."""
        return 0.0

    def _clamp_window(self, minimum: float = 1.0) -> None:
        if self.window < minimum:
            self.window = minimum
        elif self.window > MAX_WINDOW_PACKETS:
            self.window = MAX_WINDOW_PACKETS
