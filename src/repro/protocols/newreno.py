"""TCP NewReno (RFC 6582) congestion control.

The paper compares against NewReno directly in the TCP-awareness
experiment (Figure 7) and uses an AIMD scheme "similar to TCP NewReno"
as Remy's model of incumbent cross-traffic.  This implementation has the
full classic state machine:

* slow start / congestion avoidance split at ``ssthresh``,
* fast retransmit entry on the third duplicate ACK (the transport
  triggers :meth:`on_loss`),
* fast recovery with window inflation on duplicate ACKs and deflation on
  exit, per RFC 6582's NewReno refinement of Reno,
* timeout: ``ssthresh = cwnd/2``, window back to 1, slow start.
"""

from __future__ import annotations

from .base import AckContext, CongestionController

__all__ = ["NewRenoController"]


class NewRenoController(CongestionController):
    """Classic TCP NewReno."""

    name = "newreno"

    def __init__(self, initial_window: float = 2.0,
                 reset_each_on: bool = False):
        super().__init__()
        self.initial_window = initial_window
        self.reset_each_on = reset_each_on
        self.window = initial_window
        self.ssthresh = float("inf")
        self._in_recovery = False
        self._started = False

    def on_flow_start(self, now: float) -> None:
        # The connection persists across application on/off cycles (as
        # in the paper's ns-2 runs); state resets only on request.
        if self._started and not self.reset_each_on:
            return
        self._started = True
        self.window = self.initial_window
        self.ssthresh = float("inf")
        self._in_recovery = False

    def on_ack(self, ctx: AckContext) -> None:
        if self._in_recovery and ctx.in_recovery:
            # Hold the window during fast recovery.  The transport's
            # exact pipe accounting replaces RFC 6582's inflation/
            # deflation dance (which only existed to estimate the pipe
            # from cumulative ACKs).
            return
        if self.window < self.ssthresh:
            self.window += ctx.newly_acked               # slow start
        else:
            self.window += ctx.newly_acked / self.window  # congestion avoid.
        self._clamp_window()

    def on_loss(self, now: float) -> None:
        self.ssthresh = max(self.window / 2.0, 2.0)
        self.window = self.ssthresh
        self._in_recovery = True
        self._clamp_window()

    def on_recovery_exit(self, ctx: AckContext) -> None:
        self.window = self.ssthresh
        self._in_recovery = False
        self._clamp_window()

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.window / 2.0, 2.0)
        self.window = 1.0
        self._in_recovery = False
