"""Shared transport machinery: window/pacing sender and ACK-ing receiver.

The sender implements the mechanics common to every scheme in the paper:

* a congestion window capping packets in flight (read from the attached
  :class:`~repro.protocols.base.CongestionController`),
* optional pacing with a lower-bound inter-send interval (RemyCC's tau),
* cumulative ACK processing with RTT estimation,
* RACK-style loss detection with exact pipe accounting: a packet is
  declared lost when a packet sent *after* it is acknowledged.  The
  simulated network never reorders (FIFO links), so this rule is exact —
  it is the idealization of SACK + RACK that modern TCPs converge to,
  and what the ns-2 Linux TCP agents used in the paper effectively do.
* a retransmission timeout with exponential backoff as the last resort
  (e.g. tail loss with nothing left in flight to trigger RACK).

The receiver delivers unique payload exactly once, records per-packet
delay from *first* transmission to delivery (the application-level delay
the paper's objective uses), and emits one cumulative ACK per arriving
data packet, echoing the data packet's send timestamp (the signal
RemyCC's ``send_ewma`` and the sender's loss detection both use).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..sim.engine import Event, Simulator, Timer
from ..sim.network import Network
from ..sim.packet import Packet
from .base import AckContext, CongestionController

__all__ = ["FlowSender", "FlowReceiver", "SenderStats", "ReceiverStats",
           "DATA_PACKET_BYTES", "MIN_RTO", "MAX_RTO"]

#: On-the-wire size of a data packet (payload + headers).
DATA_PACKET_BYTES = 1500

#: Retransmission timer bounds (seconds), per RFC 6298 but with the
#: conventional simulator floor of 200 ms rather than 1 s.
MIN_RTO = 0.2
MAX_RTO = 60.0


class SenderStats:
    """Counters kept by the sending side."""

    __slots__ = ("packets_sent", "retransmissions", "timeouts",
                 "loss_events")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.loss_events = 0


class ReceiverStats:
    """Counters kept by the receiving side."""

    __slots__ = ("packets_received", "unique_delivered", "delivered_bytes",
                 "delay_sum", "max_delay")

    def __init__(self) -> None:
        self.packets_received = 0
        self.unique_delivered = 0
        self.delivered_bytes = 0
        self.delay_sum = 0.0
        self.max_delay = 0.0

    @property
    def mean_delay(self) -> float:
        """Mean first-send-to-delivery latency of unique packets."""
        if self.unique_delivered == 0:
            return 0.0
        return self.delay_sum / self.unique_delivered


class FlowSender:
    """The sending endpoint of one flow.

    Per-sequence state machine: a sequence number is OUTSTANDING from
    transmission until it is either delivered (cumulative ACK or the
    sack-equivalent per-packet ACK) or declared LOST (an ACK arrives for
    data sent later).  LOST sequences queue for retransmission, ordered
    by sequence number, and re-enter OUTSTANDING when resent.  ``pipe``
    counts OUTSTANDING packets and gates transmission against the
    congestion window.
    """

    def __init__(self, sim: Simulator, network: Network, flow_id: int,
                 controller: CongestionController,
                 packet_bytes: int = DATA_PACKET_BYTES):
        self.sim = sim
        self.network = network
        self.flow_id = flow_id
        self.cc = controller
        self.packet_bytes = packet_bytes
        self.stats = SenderStats()

        path = network.flows[flow_id]
        self.base_rtt = path.base_delay(packet_bytes, ack_bytes=40)
        self._pool = network.pool
        #: ECT: stamp outgoing data packets ECN-capable when the
        #: controller negotiates ECN (DCTCP), so marking queues mark
        #: this flow instead of dropping it.
        self._ecn = bool(getattr(controller, "ecn", False))
        network.attach_sender(flow_id, self._on_ack_packet)

        # Reliability state.
        self.on = False
        self.next_seq = 0
        self.cum_acked = 0
        self.in_recovery = False
        self._recover_point = -1
        #: seq -> time of the most recent transmission (OUTSTANDING only).
        self._sent_time: Dict[int, float] = {}
        #: Transmissions in send order, (seq, sent_at); stale entries are
        #: skipped by checking against _sent_time.
        self._send_log: Deque[Tuple[int, float]] = deque()
        #: Sequences declared lost, awaiting retransmission (sorted).
        self._lost: list[int] = []
        #: Delivered above the cumulative point (the sender's SACK view).
        self._delivered_above: Set[int] = set()
        #: seq -> first transmission time (for application-delay stamps).
        self._first_sent: Dict[int, float] = {}
        self.pipe = 0

        # RTT estimation (seeded from the unloaded path RTT).
        self.srtt = self.base_rtt
        self.rttvar = self.base_rtt / 2.0
        self._have_rtt_sample = False
        self._rto_backoff = 1.0

        # Pacing and timers.
        self._next_send_time = 0.0
        self._wakeup: Optional[Event] = None
        self._rto_timer = Timer(sim, self._on_rto)

    # ------------------------------------------------------------------
    # Application control (driven by workloads)
    # ------------------------------------------------------------------
    def set_on(self, now: float) -> None:
        """Application has data: reset congestion state and start sending."""
        self.on = True
        self.cc.on_flow_start(now)
        self.in_recovery = False
        self._rto_backoff = 1.0
        self._next_send_time = now
        if self.outstanding > 0:
            # Re-arm with a fresh (un-backed-off) deadline: the timer may
            # have doubled repeatedly while the application was idle.
            self._rto_timer.restart(self.rto)
        self._maybe_send()

    def set_off(self, now: float) -> None:
        """Application went idle: stop transmitting (in-flight data drains)."""
        self.on = False
        self._cancel_wakeup()
        # The RTO stays armed so tail losses are still detected; _on_rto
        # sends nothing while off.

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Packets in flight plus losses awaiting retransmission."""
        return self.pipe + len(self._lost)

    @property
    def rto(self) -> float:
        """Current retransmission timeout with backoff applied."""
        base = self.srtt + 4.0 * self.rttvar
        if not self._have_rtt_sample:
            # RFC 6298's conservative initial RTO: the true RTT may be
            # far above the unloaded path RTT (deep standing queues).
            base = max(base, 1.0)
        return min(max(base, MIN_RTO) * self._rto_backoff, MAX_RTO)

    # ------------------------------------------------------------------
    # Transmission path
    # ------------------------------------------------------------------
    def _maybe_send(self) -> None:
        now = self.sim.now
        while self.on and self.pipe < self.cc.window:
            if now < self._next_send_time:
                self._schedule_wakeup(self._next_send_time)
                return
            if not self._transmit_one(now):
                return
            pacing = self.cc.pacing_interval()
            if pacing > 0.0:
                self._next_send_time = now + pacing

    def _transmit_one(self, now: float) -> bool:
        if self._lost:
            seq = self._lost.pop(0)
            first = self._first_sent.get(seq, now)
            retransmission = True
            self.stats.retransmissions += 1
        else:
            seq = self.next_seq
            self.next_seq += 1
            first = now
            self._first_sent[seq] = now
            retransmission = False
        packet = self._pool.acquire(self.flow_id, seq, self.packet_bytes,
                                    sent_at=now, first_sent_at=first,
                                    is_retransmission=retransmission)
        if self._ecn:
            packet.ecn_capable = True
        self._sent_time[seq] = now
        self._send_log.append((seq, now))
        self.pipe += 1
        self.network.send_data(packet)
        self.stats.packets_sent += 1
        if not self._rto_timer.pending:
            self._rto_timer.restart(self.rto)
        return True

    def _schedule_wakeup(self, at: float) -> None:
        if self._wakeup is not None and not self._wakeup.cancelled:
            if self._wakeup.time <= at:
                return
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule_at(at, self._wakeup_fired)

    def _wakeup_fired(self) -> None:
        self._wakeup = None
        self._maybe_send()

    def _cancel_wakeup(self) -> None:
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None

    # ------------------------------------------------------------------
    # ACK path
    # ------------------------------------------------------------------
    def _on_ack_packet(self, ack: Packet) -> None:
        now = self.sim.now
        old_cum = self.cum_acked
        self._register_delivery(ack.seq)
        if ack.ack_seq > self.cum_acked:
            self._advance_cum(ack.ack_seq)
        new_losses = self._detect_losses(ack.echo_sent_at)

        rtt_sample = now - ack.echo_sent_at
        self._update_rtt(rtt_sample)

        if new_losses and not self.in_recovery:
            self.in_recovery = True
            self._recover_point = self.next_seq
            self.stats.loss_events += 1
            self.cc.on_loss(now)

        exited_recovery = False
        if self.in_recovery and self.cum_acked >= self._recover_point:
            self.in_recovery = False
            exited_recovery = True

        newly = self.cum_acked - old_cum
        ctx = AckContext(now=now, rtt_sample=rtt_sample,
                         newly_acked=newly,
                         cum_ack=self.cum_acked,
                         echo_sent_at=ack.echo_sent_at,
                         receiver_time=ack.receiver_time,
                         in_recovery=self.in_recovery,
                         base_rtt=self.base_rtt,
                         ecn_echo=ack.ecn_echo)
        if exited_recovery:
            self.cc.on_recovery_exit(ctx)
        if newly > 0:
            self._rto_backoff = 1.0
            self.cc.on_ack(ctx)
        else:
            self.cc.on_dupack(ctx)

        if self.outstanding > 0:
            self._rto_timer.restart(self.rto)
        else:
            self._rto_timer.cancel()
        # The ACK is fully consumed: recycle it.  This is the normal end
        # of a pooled packet's life — acquired here as data, flipped
        # into an ACK by the receiver, released here.
        self._pool.release(ack)
        self._maybe_send()

    def _register_delivery(self, seq: int) -> None:
        """The ACK proves ``seq`` arrived (SACK-equivalent knowledge)."""
        if seq < self.cum_acked or seq in self._delivered_above:
            return
        self._delivered_above.add(seq)
        if self._sent_time.pop(seq, None) is not None:
            self.pipe -= 1
        else:
            # Was (mistakenly or after timeout) marked lost but arrived.
            try:
                self._lost.remove(seq)
            except ValueError:
                pass

    def _advance_cum(self, new_cum: int) -> None:
        for seq in range(self.cum_acked, new_cum):
            self._delivered_above.discard(seq)
            self._first_sent.pop(seq, None)
            if self._sent_time.pop(seq, None) is not None:
                self.pipe -= 1
            elif seq in self._lost:
                self._lost.remove(seq)
        self.cum_acked = new_cum
        if self.next_seq < new_cum:  # pragma: no cover - defensive
            self.next_seq = new_cum

    def _detect_losses(self, ref_sent_time: float) -> int:
        """RACK rule: outstanding data sent before ``ref_sent_time`` whose
        ACK has not arrived is lost (no reordering in the simulator)."""
        new_losses = 0
        log = self._send_log
        while log and log[0][1] < ref_sent_time:
            seq, sent_at = log.popleft()
            current = self._sent_time.get(seq)
            if current is None or current != sent_at:
                continue   # stale entry: delivered, cum'd, or resent
            del self._sent_time[seq]
            self.pipe -= 1
            self._insert_lost(seq)
            new_losses += 1
        return new_losses

    def _insert_lost(self, seq: int) -> None:
        lost = self._lost
        if not lost or seq > lost[-1]:
            lost.append(seq)
            return
        index = bisect.bisect_left(lost, seq)
        if index >= len(lost) or lost[index] != seq:
            lost.insert(index, seq)

    def _update_rtt(self, sample: float) -> None:
        if sample <= 0:
            return
        if not self._have_rtt_sample:
            # RFC 6298 initialization on the first measurement.
            self._have_rtt_sample = True
            self.srtt = sample
            self.rttvar = sample / 2.0
            return
        delta = sample - self.srtt
        self.srtt += delta / 8.0
        self.rttvar += (abs(delta) - self.rttvar) / 4.0

    # ------------------------------------------------------------------
    # Timeout path
    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        if self.outstanding == 0:
            return
        now = self.sim.now
        self.stats.timeouts += 1
        if self.on:
            self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        # Everything still in flight is presumed lost; data known
        # delivered (the SACK view) is never resent.
        while self._send_log:
            seq, sent_at = self._send_log.popleft()
            current = self._sent_time.get(seq)
            if current is None or current != sent_at:
                continue
            del self._sent_time[seq]
            self.pipe -= 1
            self._insert_lost(seq)
        self.in_recovery = True
        self._recover_point = self.next_seq
        self.cc.on_timeout(now)
        self._rto_timer.restart(self.rto)
        if self.on:
            self._next_send_time = now
            self._maybe_send()


class FlowReceiver:
    """The receiving endpoint: delivers unique data, emits cumulative ACKs."""

    def __init__(self, sim: Simulator, network: Network, flow_id: int):
        self.sim = sim
        self.network = network
        self.flow_id = flow_id
        self.stats = ReceiverStats()
        self.cum = 0
        self._buffered: Set[int] = set()
        network.attach_receiver(flow_id, self._on_data)

    def _on_data(self, packet: Packet) -> None:
        now = self.sim.now
        self.stats.packets_received += 1
        if packet.seq >= self.cum and packet.seq not in self._buffered:
            self._buffered.add(packet.seq)
            self.stats.unique_delivered += 1
            self.stats.delivered_bytes += packet.size_bytes
            delay = now - packet.first_sent_at
            self.stats.delay_sum += delay
            if delay > self.stats.max_delay:
                self.stats.max_delay = delay
            while self.cum in self._buffered:
                self._buffered.remove(self.cum)
                self.cum += 1
        # Zero-allocation turnaround: the delivered data packet becomes
        # its own ACK (ownership reverses; the sender releases it).
        self.network.send_ack(packet.into_ack(self.cum, now))
