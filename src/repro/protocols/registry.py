"""Name-based registry of congestion-controller constructors.

Experiments refer to schemes by short strings ("cubic", "newreno",
"aimd", or "tao" with an attached whisker tree); the registry turns those
names into fresh controller instances, one per sender.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..remy.tree import WhiskerTree
from .aimd import AimdController
from .base import CongestionController
from .cubic import CubicController
from .dctcp import DCTCPController
from .newreno import NewRenoController
from .pcc import PCCController
from .remycc import RemyCCController
from .vegas import VegasController

__all__ = ["ControllerFactory", "make_controller", "register_scheme",
           "available_schemes"]

ControllerFactory = Callable[[], CongestionController]

_BUILTIN: Dict[str, ControllerFactory] = {
    "cubic": CubicController,
    "newreno": NewRenoController,
    "aimd": AimdController,
    "vegas": VegasController,
    "dctcp": DCTCPController,
    "pcc": PCCController,
}

_EXTRA: Dict[str, ControllerFactory] = {}


def register_scheme(name: str, factory: ControllerFactory) -> None:
    """Register a custom scheme under ``name`` (overrides allowed)."""
    _EXTRA[name] = factory


def available_schemes() -> list[str]:
    """Names accepted by :func:`make_controller` (besides "tao")."""
    return sorted(set(_BUILTIN) | set(_EXTRA))


def make_controller(name: str,
                    tree: Optional[WhiskerTree] = None,
                    record_usage: bool = False) -> CongestionController:
    """Build a fresh controller for one sender.

    ``name`` may be any registered scheme, or ``"tao"`` / ``"remycc"`` /
    ``"learner"`` — the rule-table runtime, which requires ``tree``.
    """
    if name in ("tao", "remycc", "learner"):
        if tree is None:
            raise ValueError(f"scheme {name!r} requires a whisker tree")
        return RemyCCController(tree, record_usage=record_usage)
    if name in _EXTRA:
        return _EXTRA[name]()
    if name in _BUILTIN:
        return _BUILTIN[name]()
    raise ValueError(
        f"unknown scheme {name!r}; available: {available_schemes()}")
