"""Congestion-control protocols and the shared transport machinery."""

from .aimd import AimdController
from .base import AckContext, CongestionController, MAX_WINDOW_PACKETS
from .cubic import CUBIC_BETA, CUBIC_C, CubicController
from .dctcp import DCTCP_GAIN, DCTCPController
from .newreno import NewRenoController
from .pcc import PCC_EPSILON, PCCController
from .registry import (available_schemes, make_controller,
                       register_scheme)
from .remycc import REMY_MAX_WINDOW, RemyCCController
from .vegas import VegasController
from .transport import (DATA_PACKET_BYTES, FlowReceiver, FlowSender,
                        ReceiverStats, SenderStats)

__all__ = [
    "CongestionController", "AckContext", "MAX_WINDOW_PACKETS",
    "AimdController", "NewRenoController",
    "CubicController", "CUBIC_C", "CUBIC_BETA",
    "DCTCPController", "DCTCP_GAIN",
    "PCCController", "PCC_EPSILON",
    "RemyCCController", "REMY_MAX_WINDOW",
    "VegasController",
    "FlowSender", "FlowReceiver", "SenderStats", "ReceiverStats",
    "DATA_PACKET_BYTES",
    "make_controller", "register_scheme", "available_schemes",
]
