"""repro: a reproduction of "An Experimental Study of the Learnability
of Congestion Control" (Sivaraman, Winstein, Thaker, Balakrishnan;
SIGCOMM 2014).

The package layers, bottom-up:

* :mod:`repro.sim` — packet-level discrete-event simulator (the ns-2
  substitute).
* :mod:`repro.topology` — dumbbell and parking-lot factories.
* :mod:`repro.protocols` — NewReno, Cubic, AIMD, and the RemyCC runtime
  over a shared transport.
* :mod:`repro.remy` — the Remy protocol synthesizer: whisker trees and
  the optimizer producing Tao protocols.
* :mod:`repro.core` — the learnability methodology: objectives,
  scenarios, the omniscient bound, gap metrics.
* :mod:`repro.experiments` — one module per paper figure/table.

Quickstart::

    from repro import NetworkConfig, run_config
    config = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0,
                           sender_kinds=("cubic", "cubic"))
    result = run_config(config, seed=1)
    for flow in result.flows:
        print(flow.kind, flow.throughput_bps / 1e6, "Mbps")
"""

from .core import (NetworkConfig, Objective, ScenarioRange,
                   normalized_objective, omniscient_for_config,
                   proportional_fair_allocation)
from .core.results import EllipsePoint, FlowStats, RunResult
from .exec import (CachingExecutor, Executor, ProcessPoolExecutor,
                   SerialExecutor, SimTask, executor_for, run_batch)
from .experiments import (DEFAULT, FULL, QUICK, Scale, build_simulation,
                          run_config, run_seeds)
from .protocols import (AimdController, CubicController,
                        NewRenoController, RemyCCController,
                        make_controller)
from .remy import Action, Memory, Whisker, WhiskerTree

__version__ = "1.0.0"

__all__ = [
    "NetworkConfig", "ScenarioRange", "Objective",
    "normalized_objective", "omniscient_for_config",
    "proportional_fair_allocation",
    "FlowStats", "RunResult", "EllipsePoint",
    "Scale", "QUICK", "DEFAULT", "FULL",
    "build_simulation", "run_config", "run_seeds",
    "AimdController", "CubicController", "NewRenoController",
    "RemyCCController", "make_controller",
    "Action", "Memory", "Whisker", "WhiskerTree",
    "__version__",
]
