"""E3 — regenerate Figure 3 / Table 3 (degree of multiplexing).

Paper shape: the wide-range (1-100) Tao tracks omniscient across the
sweep at the cost of throughput at low multiplexing; the narrow (1-2)
Tao collapses at high sender counts (delay explosion on the no-drop
buffer, loss storms on the 5-BDP one).
"""

from conftest import banner, require_assets

from repro.core.scale import Scale
from repro.experiments import multiplexing

# Multiplexing sims are cheap per-packet (15 Mbps) but heavy in sender
# count; keep durations tight.
_SCALE = Scale(duration_s=8.0, packet_budget=25_000, min_duration_s=4.0,
               n_seeds=2, sweep_points=5)


def _mean(points):
    return sum(p.normalized_objective for p in points) / len(points)


def test_fig3_multiplexing(benchmark):
    require_assets(*multiplexing.TAO_RANGES)

    result = benchmark.pedantic(
        lambda: multiplexing.run(scale=_SCALE),
        rounds=1, iterations=1)

    banner("Figure 3 — degree of multiplexing, 1-100 senders at 15 Mbps",
           "Tao-1-100 tracks omniscient but loses at low mux; "
           "Tao-1-2 collapses at high mux")
    print(multiplexing.format_table(result))

    for case in ("5bdp", "nodrop"):
        wide = result.series("tao_mux_1_100", case)
        narrow = result.series("tao_mux_1_2", case)
        high_mux = [p for p in narrow if p.n_senders >= 50]
        wide_high = [p for p in wide if p.n_senders >= 50]
        assert high_mux and wide_high
        # The narrow Tao must do worse than the wide Tao at high mux.
        assert _mean(high_mux) < _mean(wide_high), (
            f"[{case}] Tao-1-2 should collapse at high multiplexing "
            "relative to Tao-1-100")

    # The cost of breadth: at 1-2 senders the wide Tao is not better
    # than the narrow one (which was trained for exactly that regime).
    for case in ("5bdp", "nodrop"):
        low_narrow = [p for p in result.series("tao_mux_1_2", case)
                      if p.n_senders <= 2]
        low_wide = [p for p in result.series("tao_mux_1_100", case)
                    if p.n_senders <= 2]
        assert _mean(low_wide) <= _mean(low_narrow) + 0.5, (
            f"[{case}] breadth should not dominate at low multiplexing")
