#!/usr/bin/env python
"""Benchmark-regression gate for the simulation kernel.

Times the :mod:`kernel_workloads` suite and diffs the rates against the
committed ``BENCH_kernel.json`` baseline::

    PYTHONPATH=src python benchmarks/compare.py --check
    PYTHONPATH=src python benchmarks/compare.py --update
    PYTHONPATH=src python benchmarks/compare.py --list

``--check`` (the CI smoke job) exits non-zero when any workload's
*normalized* rate fell more than ``--tolerance`` (default 30%) below the
baseline.  Rates are normalized by a pure-interpreter calibration spin
measured in the same session, so a slower CI runner or laptop shifts
both sides of the comparison and only genuine kernel regressions trip
the gate.  Raw rates are recorded too — they are what
``docs/PERFORMANCE.md`` quotes — and each baseline entry may carry a
``pre_pr_rate``: the same workload timed at the commit *before* the
compiled hot path landed, preserving the speedup context the baseline
was accepted against.

``--update`` rewrites the baseline in place (keeping any ``pre_pr_rate``
fields) — run it after an intentional kernel change, in the same commit,
so the gate always measures against the current code's expectations.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import kernel_workloads as workloads

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"

SCHEMA = 1

#: name -> zero-argument callable returning a unit count.
BENCHMARKS = {
    "event_loop": workloads.spin_event_loop,
    "whisker_lookup": workloads.run_whisker_lookups,
    "compiled_lookup": workloads.run_compiled_lookups,
    "newreno_flow": workloads.run_newreno_flow,
    "remycc_flow": workloads.run_remycc_flow,
    "many_senders": workloads.run_many_senders,
}


def _calibration_spin(n: int = 2_000_000) -> int:
    """Pure-interpreter speed probe; never touches repro code."""
    total = 0
    for i in range(n):
        total += i & 7
    return n


def best_rate(fn, repeats: int) -> tuple[float, int]:
    """(units per second, units) for the fastest of ``repeats`` runs."""
    best = None
    units = 0
    for _ in range(repeats):
        started = time.perf_counter()
        units = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return units / best, units


def measure(repeats: int) -> dict:
    """Time every workload; returns the baseline-file payload."""
    calibration_rate, _ = best_rate(_calibration_spin, repeats)
    benchmarks = {}
    for name, fn in BENCHMARKS.items():
        rate, units = best_rate(fn, repeats)
        benchmarks[name] = {
            "rate": round(rate, 1),
            "normalized": round(rate / calibration_rate, 6),
            "units": units,
        }
        print(f"  {name:16s} {rate:12.1f}/s "
              f"(normalized {rate / calibration_rate:.4f})", flush=True)
    return {
        "schema": SCHEMA,
        "recorded_with": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "calibration_rate": round(calibration_rate, 1),
        "benchmarks": benchmarks,
    }


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        sys.exit(f"no baseline at {BASELINE_PATH}; create one with "
                 f"'python benchmarks/compare.py --update'")
    with open(BASELINE_PATH) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        sys.exit(f"baseline schema {data.get('schema')!r} != {SCHEMA}; "
                 f"regenerate with --update")
    return data


def cmd_check(tolerance: float, repeats: int) -> int:
    baseline = load_baseline()
    recorded = baseline.get("recorded_with", {}).get("python", "")
    running = platform.python_version()
    if recorded.split(".")[:2] != running.split(".")[:2]:
        print(f"warning: baseline recorded under Python {recorded}, "
              f"checking under {running}; interpreters shift the "
              f"kernel/calibration ratio unevenly, so normalized "
              f"comparisons may drift — re-record with --update on the "
              f"gating interpreter", file=sys.stderr)
    print("measuring current kernel rates...")
    current = measure(repeats)
    failures = [
        f"{name}: in the suite but not in the baseline; run "
        f"'compare.py --update' and commit BENCH_kernel.json"
        for name in current["benchmarks"]
        if name not in baseline["benchmarks"]]
    print(f"\n{'benchmark':16s} {'baseline':>12s} {'current':>12s} "
          f"{'norm ratio':>10s}")
    for name, base in baseline["benchmarks"].items():
        now = current["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: workload disappeared from the suite")
            continue
        ratio = now["normalized"] / base["normalized"]
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: normalized rate fell {100 * (1 - ratio):.0f}% "
                f"(tolerance {100 * tolerance:.0f}%)")
        print(f"{name:16s} {base['rate']:12.1f} {now['rate']:12.1f} "
              f"{ratio:10.2f}{flag}")
        pre = base.get("pre_pr_rate")
        if pre:
            print(f"{'':16s} ({now['rate'] / pre:.2f}x the pre-compiled-"
                  f"hot-path rate of {pre:.0f}/s)")
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: all {len(baseline['benchmarks'])} workloads within "
          f"{100 * tolerance:.0f}% of baseline")
    return 0


def cmd_update(repeats: int) -> int:
    previous = {}
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as handle:
            previous = json.load(handle).get("benchmarks", {})
    print("recording new baseline...")
    data = measure(repeats)
    for name, entry in data["benchmarks"].items():
        pre = previous.get(name, {}).get("pre_pr_rate")
        if pre is not None:
            entry["pre_pr_rate"] = pre
    with open(BASELINE_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {BASELINE_PATH}")
    return 0


def cmd_list() -> int:
    baseline = load_baseline()
    print(json.dumps(baseline, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--check", action="store_true",
                       help="fail if any workload regressed past "
                            "--tolerance vs the committed baseline")
    group.add_argument("--update", action="store_true",
                       help="re-measure and rewrite the baseline")
    group.add_argument("--list", action="store_true",
                       help="print the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop in normalized rate "
                             "(default 0.30)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per workload; the fastest "
                             "run counts (default 5)")
    args = parser.parse_args(argv)
    if args.check:
        return cmd_check(args.tolerance, args.repeats)
    if args.update:
        return cmd_update(args.repeats)
    return cmd_list()


if __name__ == "__main__":
    sys.exit(main())
