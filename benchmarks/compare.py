#!/usr/bin/env python
"""Benchmark-regression gate for the simulation kernel.

Times the :mod:`kernel_workloads` suite and diffs the rates against the
committed ``BENCH_kernel.json`` baseline::

    PYTHONPATH=src python benchmarks/compare.py --check
    PYTHONPATH=src python benchmarks/compare.py --update
    PYTHONPATH=src python benchmarks/compare.py --list

``--check`` (the CI smoke job) exits non-zero when any workload's
*normalized* rate fell more than ``--tolerance`` (default 30%) below the
baseline.  Rates are normalized by a pure-interpreter calibration spin
measured in the same session, so a slower CI runner or laptop shifts
both sides of the comparison and only genuine kernel regressions trip
the gate.  Raw rates are recorded too — they are what
``docs/PERFORMANCE.md`` quotes — and each baseline entry may carry a
``pre_pr_rate``: the same workload timed at the commit *before* the
compiled hot path landed, preserving the speedup context the baseline
was accepted against.

Besides wall-clock rates the baseline carries an ``alloc`` section —
the deterministic allocation counts from :mod:`bench_alloc` (packet
constructions and agenda entries per simulated packet), gated with
their own (much tighter) tolerance: churn regressions are invisible to
a 30% wall-clock gate but show up exactly here.

The ``fluid`` section gates the vectorized fluid backend both ways: it
must stay at least ``speedup_floor`` times faster than the packet
engine on the 1000-sender scenario (both sides timed in the same
session, so machine speed cancels), and every golden packet scenario
re-run on the fluid backend must land inside the per-scenario relative
error bands committed in ``tests/test_fluid_backend.py`` (the table is
printed, and lands in the ``--report`` artifact).

``--update`` rewrites the baseline in place (keeping any ``pre_pr_rate``
fields) — run it after an intentional kernel change, in the same commit,
so the gate always measures against the current code's expectations.
Each baseline records provenance (git commit, python version, CPU
count, machine) so a checked-in number is auditable; ``--check`` warns
when the baseline was recorded on a different machine shape, where the
calibration normalization is least trustworthy.

``--report PATH`` duplicates everything printed into ``PATH`` (CI
uploads it as a workflow artifact).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import bench_alloc
import kernel_workloads as workloads

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"

SCHEMA = 3

#: Allowed fractional *increase* in the per-packet allocation ratios.
#: The counts are deterministic, so this headroom only absorbs benign
#: intentional drift; anything past it is a churn regression.
ALLOC_TOLERANCE = 0.10

#: Floor on the fluid/packet per-packet rate ratio for the 1000-sender
#: scenario.  Both sides are timed in the same session, so machine
#: speed cancels out of the ratio; dipping under the floor means the
#: fluid backend lost the bulk-sweep advantage it exists for.
FLUID_SPEEDUP_FLOOR = 20.0

#: name -> zero-argument callable returning a unit count.
BENCHMARKS = {
    "event_loop": workloads.spin_event_loop,
    "whisker_lookup": workloads.run_whisker_lookups,
    "compiled_lookup": workloads.run_compiled_lookups,
    "newreno_flow": workloads.run_newreno_flow,
    "dctcp_flow": workloads.run_dctcp_flow,
    "pcc_flow": workloads.run_pcc_flow,
    "remycc_flow": workloads.run_remycc_flow,
    "many_senders": workloads.run_many_senders,
    "fluid_dumbbell": workloads.run_fluid_dumbbell,
    "fluid_kilosenders": workloads.run_fluid_kilosenders,
}


def _git_commit() -> str:
    """Current commit hash (+ dirty marker), or "unknown".

    ``--update`` necessarily runs *before* the commit that ships the
    new numbers, so a recorded hash usually names the parent commit —
    the ``+dirty`` suffix makes that visible to anyone auditing the
    baseline by checking the hash out.
    """
    cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=cwd, timeout=10)
        if out.returncode != 0:
            return "unknown"
        commit = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], capture_output=True,
            text=True, cwd=cwd, timeout=10)
        if status.returncode == 0 and status.stdout.strip():
            commit += "+dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        # git missing, stalled (cold NFS, contended lock), or broken —
        # provenance degrades gracefully, the gate must still run.
        return "unknown"


def _calibration_spin(n: int = 2_000_000) -> int:
    """Pure-interpreter speed probe; never touches repro code."""
    total = 0
    for i in range(n):
        total += i & 7
    return n


def best_rate(fn, repeats: int) -> tuple[float, int]:
    """(units per second, units) for the fastest of ``repeats`` runs."""
    best = None
    units = 0
    for _ in range(repeats):
        started = time.perf_counter()
        units = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return units / best, units


def measure(repeats: int) -> dict:
    """Time every workload; returns the baseline-file payload."""
    calibration_rate, _ = best_rate(_calibration_spin, repeats)
    benchmarks = {}
    for name, fn in BENCHMARKS.items():
        rate, units = best_rate(fn, repeats)
        benchmarks[name] = {
            "rate": round(rate, 1),
            "normalized": round(rate / calibration_rate, 6),
            "units": units,
        }
        print(f"  {name:16s} {rate:12.1f}/s "
              f"(normalized {rate / calibration_rate:.4f})", flush=True)
    alloc = bench_alloc.measure_allocations()
    print(f"  {'alloc':16s} {alloc['packet_allocs_per_packet']:12.4f} "
          f"Packet allocs/pkt, {alloc['agenda_entries_per_packet']:.4f} "
          f"agenda entries/pkt", flush=True)
    # The packet twin of the 1000-sender scenario takes seconds per
    # run, so it is timed once here (for the speedup gate) and never
    # enters the per-workload regression loop above.
    packet_kilo_rate, _ = best_rate(workloads.run_packet_kilosenders, 1)
    fluid_kilo_rate = benchmarks["fluid_kilosenders"]["rate"]
    speedup = fluid_kilo_rate / packet_kilo_rate
    print(f"  {'fluid speedup':16s} {speedup:12.1f}x "
          f"(1000-sender pkts/s: fluid {fluid_kilo_rate:.0f}, "
          f"packet {packet_kilo_rate:.0f})", flush=True)
    return {
        "schema": SCHEMA,
        "recorded_with": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "git_commit": _git_commit(),
        },
        "calibration_rate": round(calibration_rate, 1),
        "benchmarks": benchmarks,
        "alloc": {
            "packet_allocs_per_packet": alloc["packet_allocs_per_packet"],
            "agenda_entries_per_packet": alloc["agenda_entries_per_packet"],
            "traced_peak_kib": alloc["traced_peak_kib"],
        },
        "fluid": {
            "speedup": round(speedup, 1),
            "speedup_floor": FLUID_SPEEDUP_FLOOR,
            "packet_kilosenders_rate": round(packet_kilo_rate, 1),
        },
    }


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        sys.exit(f"no baseline at {BASELINE_PATH}; create one with "
                 f"'python benchmarks/compare.py --update'")
    with open(BASELINE_PATH) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        sys.exit(f"baseline schema {data.get('schema')!r} != {SCHEMA}; "
                 f"regenerate with --update")
    return data


def _warn_cross_machine(recorded_with: dict) -> None:
    """Flag comparisons whose normalization assumptions are shaky."""
    recorded = recorded_with.get("python", "")
    running = platform.python_version()
    if recorded.split(".")[:2] != running.split(".")[:2]:
        print(f"warning: baseline recorded under Python {recorded}, "
              f"checking under {running}; interpreters shift the "
              f"kernel/calibration ratio unevenly, so normalized "
              f"comparisons may drift — re-record with --update on the "
              f"gating interpreter", file=sys.stderr)
    machine = recorded_with.get("machine")
    cpus = recorded_with.get("cpu_count")
    here = (platform.machine(), os.cpu_count())
    if (machine, cpus) != (None, None) and (machine, cpus) != here:
        print(f"warning: baseline recorded on {machine}/{cpus} CPUs "
              f"(commit {recorded_with.get('git_commit', 'unknown')[:12]}), "
              f"checking on {here[0]}/{here[1]}; the calibration spin "
              f"normalizes overall speed but not microarchitectural "
              f"ratios — treat borderline results with suspicion",
              file=sys.stderr)


def _cross_validate() -> list[str]:
    """Fluid-vs-packet relative errors on every golden packet scenario,
    against the tolerance bands the test suite commits.  Returns the
    list of band violations; prints the full table (the CI artifact
    anyone debugging a red gate wants)."""
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "tests"))
    from test_fluid_backend import TOLERANCE, _fluid_twin, _rel
    from test_golden_traces import SCENARIOS

    from repro.exec import run_sim_task

    failures = []
    print(f"\n{'cross-validation':16s} {'tput err':>9s} {'band':>6s} "
          f"{'delay err':>10s} {'band':>6s}")
    for name in sorted(TOLERANCE):
        tput_tol, delay_tol = TOLERANCE[name]
        packet = run_sim_task(SCENARIOS[name]).run
        fluid = run_sim_task(_fluid_twin(SCENARIOS[name])).run
        tput = max(_rel(ff.throughput_bps, pf.throughput_bps, 1e3)
                   for pf, ff in zip(packet.flows, fluid.flows))
        delay = max(_rel(ff.mean_delay_s, pf.mean_delay_s, 1e-4)
                    for pf, ff in zip(packet.flows, fluid.flows))
        flag = ""
        if tput > tput_tol or delay > delay_tol:
            flag = "  << OUT OF BAND"
            failures.append(
                f"{name}: fluid error {tput:.1%}/{delay:.1%} "
                f"(bands {tput_tol:.1%}/{delay_tol:.1%})")
        print(f"{name:16s} {tput:9.1%} {tput_tol:6.1%} "
              f"{delay:10.1%} {delay_tol:6.1%}{flag}")
    return failures


def cmd_check(tolerance: float, repeats: int) -> int:
    baseline = load_baseline()
    _warn_cross_machine(baseline.get("recorded_with", {}))
    print("measuring current kernel rates...")
    current = measure(repeats)
    failures = [
        f"{name}: in the suite but not in the baseline; run "
        f"'compare.py --update' and commit BENCH_kernel.json"
        for name in current["benchmarks"]
        if name not in baseline["benchmarks"]]
    print(f"\n{'benchmark':16s} {'baseline':>12s} {'current':>12s} "
          f"{'norm ratio':>10s}")
    for name, base in baseline["benchmarks"].items():
        now = current["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: workload disappeared from the suite")
            continue
        ratio = now["normalized"] / base["normalized"]
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: normalized rate fell {100 * (1 - ratio):.0f}% "
                f"(tolerance {100 * tolerance:.0f}%)")
        print(f"{name:16s} {base['rate']:12.1f} {now['rate']:12.1f} "
              f"{ratio:10.2f}{flag}")
        pre = base.get("pre_pr_rate")
        if pre:
            print(f"{'':16s} ({now['rate'] / pre:.2f}x the pre-compiled-"
                  f"hot-path rate of {pre:.0f}/s)")
    # Allocation gate: deterministic counts, tight one-sided tolerance.
    base_alloc = baseline.get("alloc", {})
    now_alloc = current["alloc"]
    print(f"\n{'allocation gate':24s} {'baseline':>10s} {'current':>10s}")
    for key in ("packet_allocs_per_packet", "agenda_entries_per_packet"):
        base_val = base_alloc.get(key)
        now_val = now_alloc[key]
        if base_val is None:
            failures.append(
                f"{key}: missing from the baseline; run 'compare.py "
                f"--update' and commit BENCH_kernel.json")
            continue
        flag = ""
        if now_val > base_val * (1.0 + ALLOC_TOLERANCE):
            flag = "  << REGRESSION"
            failures.append(
                f"{key}: rose {now_val / base_val:.2f}x over baseline "
                f"(tolerance {100 * ALLOC_TOLERANCE:.0f}%)")
        print(f"{key:24s} {base_val:10.4f} {now_val:10.4f}{flag}")
    # Fluid gates: the backend must stay worth having (speedup) and
    # worth trusting (cross-validation bands).
    fluid = current["fluid"]
    floor = baseline.get("fluid", {}).get("speedup_floor",
                                          FLUID_SPEEDUP_FLOOR)
    flag = ""
    if fluid["speedup"] < floor:
        flag = "  << REGRESSION"
        failures.append(
            f"fluid speedup: {fluid['speedup']:.1f}x under the "
            f"{floor:.0f}x floor on the 1000-sender scenario")
    print(f"\n{'fluid speedup':24s} {floor:9.0f}x {fluid['speedup']:9.1f}x"
          f"{flag}")
    failures.extend(_cross_validate())
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: all {len(baseline['benchmarks'])} workloads within "
          f"{100 * tolerance:.0f}% of baseline")
    return 0


def cmd_update(repeats: int) -> int:
    previous = {}
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as handle:
            previous = json.load(handle).get("benchmarks", {})
    print("recording new baseline...")
    data = measure(repeats)
    for name, entry in data["benchmarks"].items():
        pre = previous.get(name, {}).get("pre_pr_rate")
        if pre is not None:
            entry["pre_pr_rate"] = pre
    with open(BASELINE_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {BASELINE_PATH}")
    return 0


def cmd_list() -> int:
    baseline = load_baseline()
    print(json.dumps(baseline, indent=2, sort_keys=True))
    return 0


class _Tee:
    """Duplicate writes to several streams (stdout + the report file)."""

    def __init__(self, *streams):
        self._streams = streams

    def write(self, data):
        for stream in self._streams:
            stream.write(data)

    def flush(self):
        for stream in self._streams:
            stream.flush()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--check", action="store_true",
                       help="fail if any workload regressed past "
                            "--tolerance vs the committed baseline")
    group.add_argument("--update", action="store_true",
                       help="re-measure and rewrite the baseline")
    group.add_argument("--list", action="store_true",
                       help="print the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop in normalized rate "
                             "(default 0.30)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per workload; the fastest "
                             "run counts (default 5)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write everything printed to PATH "
                             "(uploaded as a CI artifact)")
    args = parser.parse_args(argv)

    def run() -> int:
        if args.check:
            return cmd_check(args.tolerance, args.repeats)
        if args.update:
            return cmd_update(args.repeats)
        return cmd_list()

    if args.report is None:
        return run()
    with open(args.report, "w") as report:
        # Tee both streams: the FAIL list and the cross-machine
        # warnings go to stderr, and the artifact exists precisely to
        # make a red gate diagnosable.
        with contextlib.redirect_stdout(_Tee(sys.stdout, report)), \
                contextlib.redirect_stderr(_Tee(sys.stderr, report)):
            status = run()
        report.write(f"\nexit status: {status}\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
