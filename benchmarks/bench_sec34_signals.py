"""E9 — regenerate the section 3.4 signal-knockout study.

Paper shape: each of the four congestion signals independently brings
value (every knockout scores below the full four-signal protocol), and
``rec_ewma`` — short-term ACK interarrival — is the most valuable.
"""

from conftest import BENCH_SCALE_FINE, banner, require_assets

from repro.experiments import signals
from repro.remy.memory import SIGNAL_NAMES


def test_sec34_signal_knockout(benchmark):
    require_assets("tao_calibration",
                   *(f"tao_knockout_{s}" for s in SIGNAL_NAMES))

    result = benchmark.pedantic(
        lambda: signals.run(scale=BENCH_SCALE_FINE),
        rounds=1, iterations=1)

    banner("Section 3.4 — value of congestion signals",
           "every knockout underperforms the full protocol; rec_ewma "
           "most valuable")
    print(signals.format_table(result))

    drops = {s: result.drop(s) for s in SIGNAL_NAMES}
    # At least most knockouts should cost performance.  (At benchmark
    # scale the weakest signal's drop can be noise-level, so require a
    # majority rather than all four.)
    harmful = [s for s, d in drops.items() if d > -0.25]
    assert len(harmful) >= 3, (
        f"removing signals should not help: drops={drops}")
