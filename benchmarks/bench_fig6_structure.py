"""E5 — regenerate Figure 6 / Table 5 (structural knowledge).

Paper shape: on the two-bottleneck parking lot, a Tao designed for a
simplified one-bottleneck model loses only ~17% of the crossing flow's
throughput vs. the full-model Tao, while beating Cubic by ~7.2x and
Cubic-over-sfqCoDel by ~2.75x on average throughput.
"""

from conftest import BENCH_SCALE, banner, require_assets

from repro.experiments import structure


def test_fig6_structure(benchmark):
    require_assets("tao_structure_one", "tao_structure_two")

    result = benchmark.pedantic(
        lambda: structure.run(scale=BENCH_SCALE),
        rounds=1, iterations=1)

    banner("Figure 6 — parking lot, both links swept 10-100 Mbps",
           "one-bottleneck Tao ~17% below full-model Tao; both far "
           "above Cubic (7.2x) and Cubic/sfqCoDel (2.75x)")
    print(structure.format_table(result))

    simplified = result.mean_throughput("tao_one_bottleneck")
    full = result.mean_throughput("tao_two_bottleneck")
    cubic = result.mean_throughput("cubic")
    sfq = result.mean_throughput("cubic_sfqcodel")

    assert simplified > 0 and full > 0
    # The simplification penalty is a minority loss, not a collapse.
    assert simplified > 0.5 * full, (
        "one-bottleneck model should lose only modestly vs. full model")
    # Both Taos handily beat Cubic's crossing flow (RTT unfairness
    # crushes Cubic's two-hop flow).
    assert simplified > cubic, "Tao should beat Cubic's crossing flow"
    assert simplified > 0.8 * sfq, (
        "Tao should at least match Cubic-over-sfqCoDel")
