"""E1 — regenerate Figure 1 / Table 1 (the calibration experiment).

Paper shape: Tao beats Cubic and Cubic-over-sfqCoDel on throughput and
delay simultaneously, approaching the omniscient protocol (within 5% on
throughput, 10% on delay in the paper's full-scale runs).
"""

from conftest import BENCH_SCALE_FINE, banner, require_assets

from repro.experiments import calibration


def test_fig1_calibration(benchmark):
    require_assets("tao_calibration")

    result = benchmark.pedantic(
        lambda: calibration.run(scale=BENCH_SCALE_FINE),
        rounds=1, iterations=1)

    banner("Figure 1 — calibration: 32 Mbps dumbbell, 150 ms, 2 senders",
           "Tao within ~5% of omniscient tpt; beats Cubic and "
           "Cubic/sfqCoDel on both axes")
    print(calibration.format_table(result))

    tao = result.points["tao"]
    cubic = result.points["cubic"]
    sfq = result.points["cubic_sfqcodel"]
    # Shape assertions (loose: scaled-down runs).
    assert tao.median_delay_s < cubic.median_delay_s, \
        "Tao must have much lower queueing delay than Cubic"
    assert tao.median_throughput_bps >= 0.8 * sfq.median_throughput_bps, \
        "Tao should at least match Cubic-over-sfqCoDel throughput"
    assert result.throughput_vs_omniscient("tao") > 0.5, \
        "Tao should approach the omniscient bound"
