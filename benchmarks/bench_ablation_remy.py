"""E10 — ablations of the Remy optimizer's design choices.

DESIGN.md calls out two structural decisions worth ablating:

1. **Whisker splitting** — does growing the rule table (piecewise
   resolution) actually buy objective, versus optimizing a single
   global action?
2. **Pacing (tau)** — RemyCC actions include a pacing floor; how much
   of the trained protocols' performance depends on it?

Both ablations run at a tiny training budget; they compare *relative*
scores under common random numbers, which is exactly how the optimizer
itself makes decisions.
"""

from conftest import banner, require_assets

from repro.core.scale import Scale
from repro.core.scenario import ScenarioRange
from repro.experiments.common import run_seeds
from repro.experiments.calibration import CALIBRATION_CONFIG
from repro.remy.assets import load_tree
from repro.remy.evaluator import EvalSettings, TreeEvaluator
from repro.remy.optimizer import OptimizerSettings, RemyOptimizer
from repro.remy.tree import WhiskerTree

_RANGE = ScenarioRange(link_speed_mbps=(32.0, 32.0),
                       rtt_ms=(150.0, 150.0), num_senders=(2, 2),
                       buffer_bdp=5.0)

_EVAL = EvalSettings(n_configs=3, sim_seeds=(1,),
                     scale=Scale(duration_s=6.0, packet_budget=12_000,
                                 min_duration_s=4.0))


def test_ablation_whisker_splitting(benchmark):
    """Score with 0 splits vs. 1 split, same action budget."""

    def train(generations):
        optimizer = RemyOptimizer(
            _RANGE, _EVAL,
            OptimizerSettings(generations=generations,
                              max_action_steps=4,
                              time_budget_s=120.0))
        tree, log = optimizer.train(WhiskerTree())
        return log.final_score, len(tree)

    def run_ablation():
        return train(0), train(1)

    (flat_score, flat_size), (split_score, split_size) = \
        benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    banner("Ablation — whisker splitting",
           "Remy's structural growth should not hurt the objective")
    print(f"no splits : score={flat_score:8.3f}  whiskers={flat_size}")
    print(f"one split : score={split_score:8.3f}  whiskers={split_size}")
    assert split_size > flat_size
    # Splitting re-optimizes the same (and more) knobs under common
    # random numbers, so it can only help or tie (up to search noise).
    assert split_score >= flat_score - 0.2


def test_ablation_pacing(benchmark):
    """Strip the pacing floor off a trained Tao and re-measure."""
    require_assets("tao_calibration")

    def run_ablation():
        trained = load_tree("tao_calibration")
        stripped = trained.clone()
        for index, whisker in enumerate(stripped.whiskers()):
            action = whisker.action
            stripped.set_action(index, type(action)(
                action.window_multiple, action.window_increment,
                2e-5))  # effectively unpaced
        scale = Scale(duration_s=20.0, packet_budget=40_000,
                      min_duration_s=4.0, n_seeds=2)
        with_pacing = run_seeds(CALIBRATION_CONFIG,
                                trees={"learner": trained}, scale=scale)
        without = run_seeds(CALIBRATION_CONFIG,
                            trees={"learner": stripped}, scale=scale)

        def mean_qdelay(runs):
            flows = [f for r in runs for f in r.flows
                     if f.packets_delivered]
            return sum(f.queueing_delay_s for f in flows) / len(flows)

        return mean_qdelay(with_pacing), mean_qdelay(without)

    paced_delay, unpaced_delay = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1)

    banner("Ablation — pacing floor (tau)",
           "pacing is part of the action space; stripping it changes "
           "queueing behaviour")
    print(f"with trained tau : qdelay={paced_delay * 1e3:8.1f} ms")
    print(f"tau stripped     : qdelay={unpaced_delay * 1e3:8.1f} ms")
    # Stripping pacing must not *reduce* queueing delay: the trained
    # tau is what keeps the rule table from bursting into the buffer.
    assert unpaced_delay >= paced_delay * 0.8
