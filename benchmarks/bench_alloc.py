#!/usr/bin/env python
"""Allocations-per-simulated-packet for the dumbbell kernel workload.

Wall-clock benchmarks (``compare.py``) catch *slow*; this bench catches
*churny*.  It runs the RemyCC dumbbell kernel workload and reports, per
delivered packet:

* ``packet_allocs`` — ``Packet.__init__`` invocations, counted by
  instrumenting the class, so pool *misses* are measured no matter who
  constructs packets.  Before the pooled packet path this was ~2.0
  (one data packet + one ACK per delivery); afterwards the pool
  recycles a handful of objects for the whole run.
* ``agenda_entries`` — heap pushes, read off the simulator's event
  sequence counter.  Pins the coalesced link events: a regression that
  re-introduces per-hop bookkeeping events shows up here even when the
  wall-clock gate's 30% tolerance would hide it.
* ``traced_peak_kib`` — tracemalloc's peak traced memory across the
  run (build + simulate).  Reported for context, not gated: peak
  memory scales with queue depth, not packet count, so it is stable
  but machine-insensitive rather than a churn measure.

Both per-packet ratios are deterministic (same workload, same seed →
same counts), so ``compare.py --check`` gates them with a tight
tolerance next to the wall-clock rates, and ``--update`` records them
into ``BENCH_kernel.json``.

Run it standalone for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_alloc.py
    PYTHONPATH=src python benchmarks/bench_alloc.py --json
    PYTHONPATH=src python benchmarks/bench_alloc.py --profile [PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc

import repro.sim.packet as packet_module

__all__ = ["measure_allocations", "ALLOC_DURATION_S"]

#: Simulated seconds of the gated workload.  Long enough that steady
#: state dominates the pool's warm-up misses.
ALLOC_DURATION_S = 10.0


def _counting_packet_class(counter: dict):
    """Swap in a Packet.__init__ that counts constructions."""
    original = packet_module.Packet.__init__

    def counting_init(self, *args, **kwargs):
        counter["n"] += 1
        original(self, *args, **kwargs)

    packet_module.Packet.__init__ = counting_init
    return original


def measure_allocations(duration_s: float = ALLOC_DURATION_S) -> dict:
    """Run the RemyCC dumbbell kernel workload under instrumentation.

    Returns a JSON-able dict with raw counts and the two gated
    per-packet ratios.  Deterministic: repeated calls return identical
    counts (only ``traced_peak_kib`` can wiggle by interpreter noise).
    """
    # Import late so the instrumentation below cannot miss packets
    # built at import time, and build the simulation *inside* the
    # traced/counted region — construction churn is part of the cost.
    from kernel_workloads import demo_tree

    from repro.core.scenario import NetworkConfig
    from repro.experiments.common import build_simulation

    counter = {"n": 0}
    original_init = _counting_packet_class(counter)
    tracemalloc.start()
    try:
        config = NetworkConfig(
            link_speeds_mbps=(15.0,), rtt_ms=100.0,
            sender_kinds=("learner",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=5.0)
        handle = build_simulation(config, trees={"learner": demo_tree()},
                                  seed=1)
        result = handle.run(duration_s)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        packet_module.Packet.__init__ = original_init

    delivered = result.flows[0].packets_delivered
    pool = handle.built.network.pool
    return {
        "duration_s": duration_s,
        "packets_delivered": delivered,
        "packet_allocs": counter["n"],
        "pool_reused": pool.reused,
        "pool_released": pool.released,
        "agenda_entries": handle.sim._seq,
        "events_processed": handle.sim.events_processed,
        "traced_peak_kib": round(peak / 1024.0, 1),
        # The gated ratios.
        "packet_allocs_per_packet": round(counter["n"] / delivered, 4),
        "agenda_entries_per_packet": round(handle.sim._seq / delivered, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=ALLOC_DURATION_S,
                        help="simulated seconds (default "
                             f"{ALLOC_DURATION_S:g})")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw measurement dict as JSON")
    try:
        from repro.profiling import add_profile_argument, maybe_profile
        add_profile_argument(parser)
    except ImportError:  # pragma: no cover - repro not on sys.path
        maybe_profile = None
    args = parser.parse_args(argv)

    if maybe_profile is not None:
        with maybe_profile(args.profile):
            report = measure_allocations(args.duration)
    else:  # pragma: no cover
        report = measure_allocations(args.duration)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"dumbbell kernel workload, {report['duration_s']:g} simulated "
          f"seconds, {report['packets_delivered']} packets delivered")
    print(f"  Packet constructions   {report['packet_allocs']:8d}  "
          f"({report['packet_allocs_per_packet']:.4f} per packet)")
    print(f"  pool reuse / release   {report['pool_reused']:8d} / "
          f"{report['pool_released']}")
    print(f"  agenda entries pushed  {report['agenda_entries']:8d}  "
          f"({report['agenda_entries_per_packet']:.4f} per packet)")
    print(f"  events processed       {report['events_processed']:8d}")
    print(f"  tracemalloc peak       {report['traced_peak_kib']:8.1f} KiB")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    sys.exit(main())
