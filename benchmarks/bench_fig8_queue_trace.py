"""E7 — regenerate Figure 8 (queue traces under scheduled TCP).

Contrived cross-traffic: NewReno on exactly during t in [5 s, 10 s).
Paper shape: the TCP-aware Tao keeps a *longer* queue in isolation than
the naive one, but a *shorter* queue (and fewer drops) while TCP is
active — awareness is not simply "more aggressive" or "less
aggressive".
"""

from conftest import banner, require_assets

from repro.experiments.tcp_awareness import run_queue_trace


def test_fig8_queue_trace(benchmark):
    require_assets("tao_tcp_naive", "tao_tcp_aware")

    def run_both():
        aware = run_queue_trace("tao_tcp_aware", seed=1)
        naive = run_queue_trace("tao_tcp_naive", seed=1)
        return aware, naive

    aware, naive = benchmark.pedantic(run_both, rounds=1, iterations=1)

    banner("Figure 8 — bottleneck queue trace, TCP on during [5s, 10s)",
           "aware: longer queue alone, shorter queue under TCP; "
           "naive: the reverse")
    for trace in (aware, naive):
        alone = trace.mean_queue(1.0, 5.0)
        with_tcp = trace.mean_queue(6.0, 10.0)
        after = trace.mean_queue(11.0, 15.0)
        drops = len(trace.drop_times)
        print(f"{trace.scheme:<15} queue alone={alone:7.1f} pkts  "
              f"with TCP={with_tcp:7.1f} pkts  after={after:7.1f} pkts  "
              f"drops={drops}")

    # Relative shape: the naive Tao suffers a larger queue increase
    # when TCP arrives than the aware Tao does.
    naive_increase = (naive.mean_queue(6.0, 10.0)
                      - naive.mean_queue(1.0, 5.0))
    aware_increase = (aware.mean_queue(6.0, 10.0)
                      - aware.mean_queue(1.0, 5.0))
    assert naive_increase > aware_increase, (
        "TCP's arrival should hurt the naive Tao's queue more than "
        "the aware Tao's")
    # Both traces must actually show the TCP burst.
    assert naive.mean_queue(6.0, 10.0) > naive.mean_queue(1.0, 5.0)
