"""E2 — regenerate Figure 2 / Table 2 (link-speed operating range).

Paper shape: weak tradeoff — each Tao does best inside its design range
and degrades outside it; the 1000x Tao holds up across the whole sweep
and matches or beats Cubic and Cubic-over-sfqCoDel over 1-1000 Mbps.
"""

from conftest import BENCH_SCALE, banner, require_assets

from repro.experiments import link_speed


def test_fig2_link_speed(benchmark):
    require_assets(*link_speed.TAO_RANGES)

    result = benchmark.pedantic(
        lambda: link_speed.run(scale=BENCH_SCALE),
        rounds=1, iterations=1)

    banner("Figure 2 — link-speed operating ranges, sweep 1-1000 Mbps",
           "narrow Taos win modestly in-range, cliff out-of-range; "
           "Tao-1000x competitive everywhere")
    print(link_speed.format_table(result))

    # Every Tao must beat Cubic on average within its own design range.
    cubic_by_speed = {p.speed_mbps: p.normalized_objective
                      for p in result.series("cubic")}
    for name, (lo, hi) in link_speed.TAO_RANGES.items():
        in_range = [p for p in result.series(name) if p.in_training_range]
        assert in_range, f"{name} had no in-range sweep points"
        tao_mean = sum(p.normalized_objective for p in in_range) \
            / len(in_range)
        cubic_mean = sum(cubic_by_speed[p.speed_mbps] for p in in_range) \
            / len(in_range)
        assert tao_mean > cubic_mean, \
            f"{name} should beat Cubic inside its design range"

    # Out-of-range collapse: the 2x Tao must fall off hard somewhere
    # outside 22-44 Mbps relative to its in-range average.
    narrow = result.series("tao_2x")
    out = [p.normalized_objective for p in narrow
           if not p.in_training_range]
    assert min(out) < result.mean_in_range("tao_2x") - 1.0, \
        "narrow-range Tao should degrade outside its training range"
