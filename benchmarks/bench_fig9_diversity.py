"""E8 — regenerate Figure 9 / Table 7 (the price of sender diversity).

Paper shape: co-optimization lets a delta=0.1 (throughput-sensitive)
and delta=10 (delay-sensitive) sender coexist: in the mixed network the
delay-sensitive sender sees lower delay than the throughput-sensitive
one, and co-optimization costs the throughput-sensitive sender some
throughput ("the price of playing nice") while protecting the
delay-sensitive one.
"""

from conftest import BENCH_SCALE_FINE, banner, require_assets

from repro.experiments import diversity


def test_fig9_diversity(benchmark):
    require_assets("tao_delta_tpt_naive", "tao_delta_del_naive",
                   "tao_delta_tpt_coopt", "tao_delta_del_coopt")

    result = benchmark.pedantic(
        lambda: diversity.run(scale=BENCH_SCALE_FINE),
        rounds=1, iterations=1)

    banner("Figure 9 — sender diversity, 10 Mbps / 100 ms / no-drop",
           "delay-sensitive sender keeps lower delay in the mix; "
           "co-optimization taxes the throughput-sensitive sender")
    print(diversity.format_table(result))

    # In the mixed network, the delay-sensitive sender must see less
    # queueing delay than the throughput-sensitive one.
    for setting in ("naive_mixed", "coopt_mixed"):
        tpt_delay = result.qdelay_ms(setting, "learner")
        del_delay = result.qdelay_ms(setting, "peer")
        assert del_delay <= tpt_delay + 1.0, (
            f"[{setting}] delay-sensitive sender should see lower delay")

    # Co-optimization protects the delay-sensitive sender in the mix:
    # its delay must not blow up relative to running alone.
    alone = result.qdelay_ms("del_coopt_alone", "learner")
    mixed = result.qdelay_ms("coopt_mixed", "peer")
    naive_mixed = result.qdelay_ms("naive_mixed", "peer")
    assert mixed <= max(naive_mixed, alone * 4 + 5.0), (
        "co-optimized delay sender should not collapse in the mix")
