"""E12 — execution-layer throughput microbenchmarks.

Not a paper artifact: these time ``run_batch`` over a small scenario
grid through the serial and process-pool executors, so the speedup of
the parallel execution layer (and any regression in its dispatch
overhead) shows up in the perf trajectory.  On a multi-core machine the
2-worker pool should approach 2x the serial throughput once the pool is
warm; on a single core it measures the dispatch overhead floor.
"""

from repro.core.scenario import NetworkConfig
from repro.exec import ProcessPoolExecutor, SerialExecutor, SimTask

from conftest import banner


def _grid(n_seeds: int = 3) -> list:
    """A small (config x seed) grid: 8 tasks, a few seconds of sim."""
    tasks = []
    for speed in (8.0, 16.0):
        for senders in (1, 2):
            config = NetworkConfig(
                link_speeds_mbps=(speed,), rtt_ms=100.0,
                sender_kinds=("newreno",) * senders,
                mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)
            for seed in range(1, n_seeds):
                tasks.append(SimTask.build(config, seed=seed,
                                           duration_s=3.0))
    return tasks


def test_run_batch_serial(benchmark):
    """Baseline: the whole grid in-process."""
    banner("executor throughput — serial",
           "reference for the pooled speedup")
    tasks = _grid()

    results = benchmark.pedantic(
        lambda: SerialExecutor().run_batch(tasks),
        rounds=3, iterations=1)
    assert len(results) == len(tasks)
    assert all(out.run.flows for out in results)


def test_run_batch_pool_two_workers(benchmark):
    """The same grid through a warm 2-worker process pool."""
    banner("executor throughput — 2-worker pool",
           "approaches 2x serial on >=2 free cores")
    tasks = _grid()
    with ProcessPoolExecutor(jobs=2) as pool:
        pool.run_batch(tasks[:1])      # warm the workers outside timing

        results = benchmark.pedantic(
            lambda: pool.run_batch(tasks), rounds=3, iterations=1)
        assert len(results) == len(tasks)

        # The determinism contract, re-checked where it is cheapest:
        serial = SerialExecutor().run_batch(tasks[:2])
        for a, b in zip(serial, results[:2]):
            assert [f.delivered_bytes for f in a.run.flows] \
                == [f.delivered_bytes for f in b.run.flows]


def test_run_batch_store_replay(benchmark, tmp_path):
    """Fully-cached replay through the disk-backed result store.

    Times the resume floor: every task is a store hit, so this is pure
    shard parse + result decode with zero simulation.  A fresh
    ResultStore per round forces the cold read path — the cost a
    resumed sweep actually pays before its first miss.
    """
    from repro.exec import ResultStore, StoreExecutor

    banner("executor throughput — store replay (all hits)",
           "shard parse + decode, no simulation")
    tasks = _grid()
    path = tmp_path / "results.store"
    StoreExecutor(SerialExecutor(), store=path).run_batch(tasks)

    def replay():
        executor = StoreExecutor(SerialExecutor(),
                                 store=ResultStore(path))
        return executor, executor.run_batch(tasks)

    executor, results = benchmark.pedantic(replay, rounds=3,
                                           iterations=1)
    assert len(results) == len(tasks)
    assert executor.hits == len(tasks) and executor.misses == 0

    # Replayed results match live simulation bitwise (the store's
    # round-trip contract, re-checked where it is cheapest).
    serial = SerialExecutor().run_batch(tasks[:2])
    for a, b in zip(serial, results[:2]):
        assert [f.delivered_bytes for f in a.run.flows] \
            == [f.delivered_bytes for f in b.run.flows]
