"""E6 — regenerate Figure 7 / Table 6 (knowledge of incumbents).

Paper shape: homogeneous — TCP-awareness costs delay (the naive Tao
runs ~55% less queueing delay); mixed — the naive Tao is squeezed out
by NewReno while the aware Tao claims its share (+36% throughput, -37%
delay vs. naive when facing TCP).
"""

from conftest import BENCH_SCALE_FINE, banner, require_assets

from repro.experiments import tcp_awareness


def test_fig7_tcp_awareness(benchmark):
    require_assets("tao_tcp_naive", "tao_tcp_aware")

    result = benchmark.pedantic(
        lambda: tcp_awareness.run(scale=BENCH_SCALE_FINE),
        rounds=1, iterations=1)

    banner("Figure 7 — TCP-aware vs TCP-naive, 10 Mbps / 100 ms / 250 kB",
           "awareness costs delay alone, pays against NewReno")
    print(tcp_awareness.format_table(result))

    naive_homog = result.tao_point("naive_homogeneous")
    aware_homog = result.tao_point("aware_homogeneous")
    naive_mixed = result.tao_point("naive_vs_newreno")
    aware_mixed = result.tao_point("aware_vs_newreno")

    # Cost of awareness in the homogeneous setting: more delay.
    assert naive_homog.median_delay_s <= aware_homog.median_delay_s, (
        "TCP-naive Tao should see less queueing delay among its own kind")
    # Benefit against TCP: the aware Tao claims more throughput.
    assert (aware_mixed.median_throughput_bps
            > naive_mixed.median_throughput_bps), (
        "TCP-aware Tao should claim more of the link from NewReno")
