"""E11 — simulator kernel microbenchmarks.

Not a paper artifact: these time the discrete-event core that every
experiment rests on, so performance regressions in the hot path
(event loop, link forwarding, transport ACK processing) are caught.
"""

from repro.core.scenario import NetworkConfig
from repro.experiments.common import build_simulation
from repro.sim.engine import Simulator


def test_event_loop_throughput(benchmark):
    """Raw schedule/execute cycles per second."""

    def spin():
        sim = Simulator()

        def reschedule(depth):
            if depth > 0:
                sim.schedule(0.001, reschedule, depth - 1)

        for _ in range(100):
            sim.schedule(0.0, reschedule, 1000)
        sim.run_until_idle()
        return sim.events_processed

    events = benchmark(spin)
    assert events >= 100_000


def test_single_flow_simulation_rate(benchmark):
    """Packets simulated per second for a saturated dumbbell flow."""
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
        buffer_bdp=5.0)

    def run_once():
        handle = build_simulation(config, seed=1)
        result = handle.run(10.0)
        return result.flows[0].packets_delivered

    delivered = benchmark(run_once)
    assert delivered > 5_000


def test_many_sender_simulation_rate(benchmark):
    """The 100-sender multiplexing scenario's cost per simulated second."""
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=150.0,
        sender_kinds=("newreno",) * 50,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)

    def run_once():
        handle = build_simulation(config, seed=1)
        result = handle.run(3.0)
        return sum(f.packets_delivered for f in result.flows)

    delivered = benchmark(run_once)
    assert delivered > 500
