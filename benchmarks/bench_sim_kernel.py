"""E11 — simulator kernel microbenchmarks.

Not a paper artifact: these time the discrete-event core that every
experiment rests on, so performance regressions in the hot path
(event loop, link forwarding, transport ACK processing, whisker
lookup) are caught.

The workloads live in :mod:`kernel_workloads`, shared with
``compare.py`` — the committed-baseline regression gate CI runs; use
``pytest benchmarks/bench_sim_kernel.py --benchmark-only`` for
interactive numbers and ``python benchmarks/compare.py --check`` for
the pass/fail verdict.
"""

import kernel_workloads as workloads


def test_event_loop_throughput(benchmark):
    """Raw schedule/execute cycles per second."""
    events = benchmark(workloads.spin_event_loop)
    assert events >= 100_000


def test_whisker_lookup_interpreted(benchmark):
    """Node-walking ``WhiskerTree.lookup`` on a 46-leaf table."""
    hits = benchmark(workloads.run_whisker_lookups)
    assert hits == 100_000


def test_whisker_lookup_compiled(benchmark):
    """Flat-array ``CompiledTree.lookup`` over the same vectors."""
    hits = benchmark(workloads.run_compiled_lookups)
    assert hits == 100_000


def test_single_flow_simulation_rate(benchmark):
    """Packets simulated per second for a saturated dumbbell flow."""
    delivered = benchmark(workloads.run_newreno_flow)
    assert delivered > 5_000


def test_remycc_single_flow_rate(benchmark):
    """The acceptance workload: a saturated RemyCC dumbbell flow.

    Every ACK exercises Memory.on_ack, the compiled whisker lookup,
    and the action application — the training inner loop's unit cost.
    """
    delivered = benchmark(workloads.run_remycc_flow)
    assert delivered > 1_000


def test_many_sender_simulation_rate(benchmark):
    """The 50-sender multiplexing scenario's cost per simulated second."""
    delivered = benchmark(workloads.run_many_senders)
    assert delivered > 500


def test_fluid_dumbbell_rate(benchmark):
    """The RemyCC dumbbell on the vectorized fluid backend."""
    delivered = benchmark(workloads.run_fluid_dumbbell)
    assert delivered > 1_000


def test_fluid_kilosender_rate(benchmark):
    """1000-sender multiplexing on the fluid backend — the sweep shape
    the backend exists for (compare.py gates its speedup over the
    packet engine's twin run)."""
    delivered = benchmark(workloads.run_fluid_kilosenders)
    assert delivered > 500
