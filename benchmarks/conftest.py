"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
``BENCH_SCALE`` (seconds of wall-clock per experiment, not the paper's
CPU-days) and prints the rows next to the paper's reported shape, so
``pytest benchmarks/ --benchmark-only`` doubles as a reproduction
report.  EXPERIMENTS.md records a DEFAULT-scale run of the same code.
"""

from __future__ import annotations

import pytest

from repro.core.scale import Scale
from repro.remy.assets import available_assets

#: Benchmarks trade statistical tightness for wall-clock time — the
#: same named "quick" budget the CLI scripts run (one lookup, no
#: second SCALES dict to drift).
BENCH_SCALE = Scale.named("quick")

#: A finer scale for the cheap, single-scenario benches.
BENCH_SCALE_FINE = Scale(duration_s=30.0, packet_budget=60_000,
                         min_duration_s=4.0, n_seeds=3, sweep_points=5)


def require_assets(*names: str) -> None:
    """Skip a bench (not fail) when its rule tables are not trained yet."""
    missing = sorted(set(names) - set(available_assets()))
    if missing:
        pytest.skip(f"assets not trained yet: {missing} "
                    "(run scripts/train_assets.py)")


def banner(title: str, paper_claim: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print(f"paper: {paper_claim}")
    print("=" * 72)
