"""E4 — regenerate Figure 4 / Table 4 (propagation-delay knowledge).

Paper shape: the Tao trained for exactly 150 ms collapses at short
RTTs; adding a little diversity (145-155 ms) yields performance over
1-300 ms commensurate with the broad 50-250 ms protocol.
"""

from conftest import BENCH_SCALE, banner, require_assets

from repro.experiments import rtt


def _mean(points):
    return sum(p.normalized_objective for p in points) / len(points)


def test_fig4_rtt(benchmark):
    require_assets(*rtt.TAO_RANGES)

    result = benchmark.pedantic(
        lambda: rtt.run(scale=BENCH_SCALE),
        rounds=1, iterations=1)

    banner("Figure 4 — propagation delay sweep, 1-300 ms at 33 Mbps",
           "exact-150ms Tao collapses at short RTTs; 145-155ms Tao "
           "performs like the broad 50-250ms Tao")
    print(rtt.format_table(result))

    exact = result.series("tao_rtt_150")
    little = result.series("tao_rtt_145_155")
    broad = result.series("tao_rtt_50_250")

    short = [p for p in exact if p.rtt_ms < 50.0]
    in_range = [p for p in exact if p.in_training_range]
    assert short and in_range

    # A-little-diversity tracks the broad protocol across the sweep.
    little_mean = _mean(little)
    broad_mean = _mean(broad)
    assert little_mean > broad_mean - 1.0, (
        "145-155ms Tao should be commensurate with the 50-250ms Tao")

    # Diversity helps at short RTTs relative to exact-150 training.
    little_short = _mean([p for p in little if p.rtt_ms < 50.0])
    exact_short = _mean(short)
    assert little_short >= exact_short - 0.25, (
        "training diversity should not hurt at short RTTs")
