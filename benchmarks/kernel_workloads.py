"""Shared workload definitions for the kernel benchmarks.

Both the pytest-benchmark suite (``bench_sim_kernel.py``) and the
regression gate (``compare.py``) time exactly these functions, so the
committed ``BENCH_kernel.json`` baseline and the interactive benchmarks
can never drift apart.  Each workload returns a unit count (events,
packets, lookups); rates are reported as units per second.

The workloads are deterministic: same tree, same seed, same duration
every run — wall-clock time is the only thing allowed to vary.
"""

from __future__ import annotations

import random

from repro.core.scenario import NetworkConfig
from repro.experiments.common import build_simulation
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree
from repro.sim.engine import Simulator

__all__ = ["demo_tree", "lookup_vectors", "spin_event_loop",
           "run_newreno_flow", "run_dctcp_flow", "run_pcc_flow",
           "run_remycc_flow", "run_many_senders",
           "run_whisker_lookups", "run_compiled_lookups",
           "run_fluid_dumbbell", "run_fluid_kilosenders",
           "run_packet_kilosenders"]

#: The sane rate-matching action the test suite and --fake-taos use.
_DEMO_ACTION = Action(0.8, 4.0, 0.002)


def demo_tree() -> WhiskerTree:
    """A realistically deep rule table (46 leaves, hot path ~12 deep).

    Built by splitting the root and then twice re-splitting the leaf
    that the near-origin operating point (small EWMAs, RTT ratio ~1)
    falls into — the region every saturated run actually exercises, so
    lookups walk a deep path rather than bailing at the root.
    """
    tree = WhiskerTree(default_action=_DEMO_ACTION)
    hot = (0.01, 0.01, 0.01, 1.0)
    for _ in range(3):
        tree.split(tree.lookup(hot))
    return tree


def lookup_vectors(n: int, seed: int = 42) -> list:
    """Deterministic signal vectors: half spanning the whole domain,
    half inside ``demo_tree``'s deep hot region (EWMAs < 2, RTT ratio
    < 8), so lookups exercise the 12-deep path and not just the
    4-deep one a uniform draw mostly hits."""
    rng = random.Random(seed)
    out = []
    for _ in range(n // 2):
        out.append((rng.random() * 16.0, rng.random() * 16.0,
                    rng.random() * 16.0, 1.0 + rng.random() * 63.0))
    while len(out) < n:
        out.append((rng.random() * 2.0, rng.random() * 2.0,
                    rng.random() * 2.0, 1.0 + rng.random() * 7.0))
    return out


#: Built once at import: the lookup benchmarks must time *lookups*,
#: not tree construction or 400k RNG draws — with setup inside the
#: timed body, a real lookup regression would be diluted far below the
#: regression gate's tolerance.
_LOOKUP_TREE = demo_tree()
_LOOKUP_VECTORS = lookup_vectors(100_000)


def spin_event_loop() -> int:
    """Raw schedule/execute cycles (100 chains x 1000 reschedules)."""
    sim = Simulator()

    def reschedule(depth):
        if depth > 0:
            sim.schedule(0.001, reschedule, depth - 1)

    for _ in range(100):
        sim.schedule(0.0, reschedule, 1000)
    sim.run_until_idle()
    return sim.events_processed


def run_newreno_flow(duration_s: float = 10.0) -> int:
    """Packets delivered by one saturated NewReno dumbbell flow."""
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
        buffer_bdp=5.0)
    handle = build_simulation(config, seed=1)
    result = handle.run(duration_s)
    return result.flows[0].packets_delivered


def run_dctcp_flow(duration_s: float = 10.0) -> int:
    """Packets delivered by one saturated DCTCP flow through an
    ECN-marking bottleneck (threshold at ~0.17 BDP).  Times the whole
    marking path: CE stamping in the queue, ECE echo through the
    transport, and the per-round alpha accounting in the controller.
    """
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("dctcp",), mean_on_s=100.0, mean_off_s=0.0,
        buffer_bdp=5.0, ecn_threshold=20.0)
    handle = build_simulation(config, seed=1)
    result = handle.run(duration_s)
    return result.flows[0].packets_delivered


def run_pcc_flow(duration_s: float = 10.0) -> int:
    """Packets delivered by one saturated PCC dumbbell flow.  PCC is
    pacing-driven, so every packet rides a pacing timer and every ACK
    feeds the monitor-interval accounting — the most event-dense
    scheme in the suite per delivered packet.
    """
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("pcc",), mean_on_s=100.0, mean_off_s=0.0,
        buffer_bdp=5.0)
    handle = build_simulation(config, seed=1)
    result = handle.run(duration_s)
    return result.flows[0].packets_delivered


def run_remycc_flow(duration_s: float = 10.0,
                    record_usage: bool = False) -> int:
    """Packets delivered by one saturated RemyCC dumbbell flow.

    This is the acceptance benchmark for the compiled hot path: every
    ACK walks the demo tree and applies its action, so the whisker
    lookup, Memory update, and event loop all sit on the timed path.
    """
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("learner",), mean_on_s=100.0, mean_off_s=0.0,
        buffer_bdp=5.0)
    handle = build_simulation(config, trees={"learner": demo_tree()},
                              seed=1, record_usage=record_usage)
    result = handle.run(duration_s)
    return result.flows[0].packets_delivered


def run_many_senders(duration_s: float = 3.0) -> int:
    """Total packets in the 50-sender on/off multiplexing scenario."""
    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=150.0,
        sender_kinds=("newreno",) * 50,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)
    handle = build_simulation(config, seed=1)
    result = handle.run(duration_s)
    return sum(f.packets_delivered for f in result.flows)


def run_fluid_dumbbell(duration_s: float = 10.0) -> int:
    """The RemyCC dumbbell on the fluid backend (batched whisker
    lookups through the flat compiled tables every control interval)."""
    from repro.sim.fluid import simulate_fluid

    config = NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0,
        sender_kinds=("learner", "newreno"), mean_on_s=100.0,
        mean_off_s=0.0, buffer_bdp=5.0)
    run = simulate_fluid(config, trees={"learner": demo_tree()},
                         seeds=(1,), duration_s=duration_s)[0]
    return sum(f.packets_delivered for f in run.flows)


def _kilosender_config() -> NetworkConfig:
    """1000 on/off NewReno senders into one 15 Mbps bottleneck — the
    sweep shape the fluid backend exists for.  Shared by the fluid
    workload and its packet-engine twin so the speedup gate times the
    exact same scenario on both."""
    return NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=150.0,
        sender_kinds=("newreno",) * 1000,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)


def run_fluid_kilosenders(duration_s: float = 2.0) -> int:
    """Total packets in the 1000-sender scenario on the fluid backend."""
    from repro.sim.fluid import simulate_fluid

    run = simulate_fluid(_kilosender_config(), seeds=(1,),
                         duration_s=duration_s)[0]
    return sum(f.packets_delivered for f in run.flows)


def run_packet_kilosenders(duration_s: float = 2.0) -> int:
    """The same 1000-sender scenario on the packet engine (seconds per
    run — only the speedup gate times it, never the regression loop)."""
    handle = build_simulation(_kilosender_config(), seed=1)
    result = handle.run(duration_s)
    return sum(f.packets_delivered for f in result.flows)


def run_whisker_lookups() -> int:
    """100k interpreted tree lookups over the prebuilt vectors."""
    lookup = _LOOKUP_TREE.lookup
    for vector in _LOOKUP_VECTORS:
        lookup(vector)
    return len(_LOOKUP_VECTORS)


def run_compiled_lookups() -> int:
    """100k compiled (flat-array) lookups over the same vectors."""
    lookup = _LOOKUP_TREE.compiled().lookup
    for vector in _LOOKUP_VECTORS:
        lookup(vector)
    return len(_LOOKUP_VECTORS)
