#!/usr/bin/env python
"""Mini Figure 2: sweep link speed and plot normalized objective.

Sweeps a dumbbell's link speed across 1-1000 Mbps and prints an ASCII
rendition of the paper's Figure 2: the normalized objective (0 = fair
share at zero queueing delay) for two Tao protocols with different
operating ranges, next to TCP Cubic.

Run:  python examples/link_speed_sweep.py       (~2-3 minutes)
"""

from repro import NetworkConfig, Scale, run_seeds
from repro.experiments.common import mean_normalized_score
from repro.experiments.link_speed import TAO_RANGES, sweep_speeds
from repro.remy.assets import available_assets, load_tree

SCALE = Scale(duration_s=12.0, packet_budget=40_000, n_seeds=2)
SCHEMES = ("tao_2x", "tao_1000x", "cubic")

#: Objective axis of the chart, in log2 units.
AXIS_LO, AXIS_HI = -4.0, 0.5


def config_for(speed_mbps, kind):
    return NetworkConfig(
        link_speeds_mbps=(speed_mbps,), rtt_ms=150.0,
        sender_kinds=(kind, kind), mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=5.0)


def score(speed_mbps, scheme, trees):
    kind = "learner" if scheme in trees else "cubic"
    config = config_for(speed_mbps, kind)
    tree_map = {"learner": trees[scheme]} if scheme in trees else None
    runs = run_seeds(config, trees=tree_map, scale=SCALE)
    return mean_normalized_score(runs, config)


def render_row(value, width=50):
    clamped = min(max(value, AXIS_LO), AXIS_HI)
    position = int((clamped - AXIS_LO) / (AXIS_HI - AXIS_LO)
                   * (width - 1))
    row = ["."] * width
    row[position] = "o"
    zero = int((0.0 - AXIS_LO) / (AXIS_HI - AXIS_LO) * (width - 1))
    if row[zero] == ".":
        row[zero] = "|"
    return "".join(row)


def main():
    wanted = [s for s in SCHEMES if s.startswith("tao")]
    have = set(available_assets())
    missing = [s for s in wanted if s not in have]
    if missing:
        print(f"train assets first: {missing}")
        print("  python scripts/train_assets.py --assets "
              + " ".join(missing))
        return
    trees = {name: load_tree(name) for name in wanted}

    print(f"normalized objective, {AXIS_LO:+.0f} (left) to "
          f"{AXIS_HI:+.1f} (right); '|' marks 0 = omniscient-like")
    for scheme in SCHEMES:
        lo_hi = TAO_RANGES.get(scheme)
        label = f"{scheme} [{lo_hi[0]:g}-{lo_hi[1]:g} Mbps]" \
            if lo_hi else scheme
        print(f"\n--- {label} ---")
        for speed in sweep_speeds(7):
            value = score(speed, scheme, trees)
            in_range = "in " if lo_hi and lo_hi[0] <= speed <= lo_hi[1] \
                else "out" if lo_hi else "   "
            print(f"{speed:8.1f} Mbps {in_range} "
                  f"{render_row(value)} {value:+.2f}")


if __name__ == "__main__":
    main()
