#!/usr/bin/env python
"""Quickstart: simulate congestion control on a shared bottleneck.

Builds the paper's calibration network (32 Mbps dumbbell, 150 ms RTT,
two senders with 1 s mean on/off workloads, 5 BDP of buffer), runs TCP
Cubic, Cubic-over-sfqCoDel, and a computer-generated Tao protocol over
it, and prints throughput/delay next to the omniscient bound.

Run:  python examples/quickstart.py
"""

from repro import NetworkConfig, Scale, run_seeds
from repro.core.omniscient import omniscient_dumbbell
from repro.remy.assets import available_assets, load_tree

SCALE = Scale(duration_s=45.0, packet_budget=150_000, n_seeds=3)


def summarize(runs, label):
    flows = [flow for run in runs for flow in run.flows
             if flow.packets_delivered > 0]
    tpt = sum(f.throughput_bps for f in flows) / len(flows) / 1e6
    qdelay = sum(f.queueing_delay_s for f in flows) / len(flows) * 1e3
    losses = sum(f.retransmissions for f in flows)
    print(f"{label:<22} {tpt:8.2f} Mbps {qdelay:10.1f} ms "
          f"{losses:8d} rtx")


def main():
    base = NetworkConfig(
        link_speeds_mbps=(32.0,), rtt_ms=150.0,
        sender_kinds=("cubic", "cubic"),
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)

    print(f"{'scheme':<22} {'throughput':>13} {'queueing':>13} "
          f"{'loss':>12}")

    summarize(run_seeds(base, scale=SCALE), "cubic / droptail")

    sfq = NetworkConfig.from_dict({**base.to_dict(),
                                   "queue": "sfq_codel"})
    summarize(run_seeds(sfq, scale=SCALE), "cubic / sfqCoDel")

    if "tao_calibration" in available_assets():
        tao_config = NetworkConfig.from_dict(
            {**base.to_dict(), "sender_kinds": ["learner", "learner"]})
        tree = load_tree("tao_calibration")
        summarize(run_seeds(tao_config, trees={"learner": tree},
                            scale=SCALE), "Tao (computer-made)")
    else:
        print("(train assets first for the Tao row: "
              "python scripts/train_assets.py --assets tao_calibration)")

    omni = omniscient_dumbbell(base)[0]
    print(f"{'omniscient bound':<22} {omni.throughput_bps / 1e6:8.2f} "
          f"Mbps {0.0:10.1f} ms {'-':>12}")


if __name__ == "__main__":
    main()
