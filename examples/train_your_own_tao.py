#!/usr/bin/env python
"""Train your own Tao protocol from scratch, then race it against TCP.

This walks the full pipeline of the paper in miniature:

1. declare a *training model* — a distribution over networks
   (here: a 5-50 Mbps dumbbell with 100 ms RTT and 1-4 senders),
2. run the Remy optimizer for a couple of generations,
3. test the synthesized protocol on a scenario drawn from the model,
   next to TCP Cubic and the omniscient bound.

Run:  python examples/train_your_own_tao.py        (~2-4 minutes)
"""

from repro import NetworkConfig, Scale, ScenarioRange, run_seeds
from repro.core.omniscient import omniscient_dumbbell
from repro.exec import ProcessPoolExecutor
from repro.remy.evaluator import EvalSettings
from repro.remy.optimizer import OptimizerSettings, RemyOptimizer

TRAINING_MODEL = ScenarioRange(
    link_speed_mbps=(5.0, 50.0),     # log-uniform
    rtt_ms=(100.0, 100.0),
    num_senders=(1, 4),
    buffer_bdp=5.0)

TEST_CONFIG = NetworkConfig(
    link_speeds_mbps=(20.0,), rtt_ms=100.0,
    sender_kinds=("learner", "learner"),
    mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=5.0)

TEST_SCALE = Scale(duration_s=45.0, packet_budget=120_000, n_seeds=3)


def report(runs, label):
    flows = [flow for run in runs for flow in run.flows
             if flow.packets_delivered > 0]
    tpt = sum(f.throughput_bps for f in flows) / len(flows) / 1e6
    qdelay = sum(f.queueing_delay_s for f in flows) / len(flows) * 1e3
    print(f"{label:<18} {tpt:8.2f} Mbps  {qdelay:8.1f} ms queueing")


def main():
    eval_settings = EvalSettings(
        n_configs=6, sim_seeds=(1,),
        scale=Scale(duration_s=8.0, packet_budget=20_000,
                    min_duration_s=4.0))
    optimizer_settings = OptimizerSettings(
        generations=2, max_action_steps=6, time_budget_s=180.0)

    print("training a Tao on 5-50 Mbps x 1-4 senders ...")
    with ProcessPoolExecutor() as executor:
        optimizer = RemyOptimizer(TRAINING_MODEL, eval_settings,
                                  optimizer_settings, executor=executor,
                                  progress=lambda m: print("  " + m))
        tree, log = optimizer.train()
    print(f"trained: {len(tree)} whiskers, "
          f"{log.evaluations} simulations, "
          f"{log.wall_time_s:.0f}s wall clock")

    print("\ntesting on a 20 Mbps / 100 ms dumbbell, 2 senders:")
    report(run_seeds(TEST_CONFIG, trees={"learner": tree},
                     scale=TEST_SCALE), "your Tao")

    cubic_config = NetworkConfig.from_dict(
        {**TEST_CONFIG.to_dict(), "sender_kinds": ["cubic", "cubic"]})
    report(run_seeds(cubic_config, scale=TEST_SCALE), "TCP Cubic")

    omni = omniscient_dumbbell(TEST_CONFIG)[0]
    print(f"{'omniscient':<18} {omni.throughput_bps / 1e6:8.2f} Mbps  "
          f"{0.0:8.1f} ms queueing")


if __name__ == "__main__":
    main()
