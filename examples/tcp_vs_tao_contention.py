#!/usr/bin/env python
"""Watch a Tao protocol contend with TCP NewReno in the time domain.

Reproduces the paper's Figure 8 story on your terminal: a Tao sender
runs continuously on a 10 Mbps / 100 ms link while a NewReno flow
switches on at exactly t=5 s and off at t=10 s.  The bottleneck queue
occupancy is printed as an ASCII strip chart, for both the TCP-aware
and TCP-naive rule tables.

The punchline (paper section 4.5): the TCP-aware Tao keeps a *longer*
queue in isolation but a *shorter* one while TCP is active — awareness
is not simply "more" or "less" aggressive.

Run:  python examples/tcp_vs_tao_contention.py
"""

import numpy as np

from repro.experiments.tcp_awareness import run_queue_trace
from repro.remy.assets import available_assets

BARS = " .:-=+*#%@"


def strip_chart(trace, width=72):
    """Render queue occupancy over time as one text row per bin."""
    times = trace.times
    values = trace.queue_packets
    bins = np.array_split(np.arange(len(times)), width)
    peak = max(float(np.max(values)), 1.0)
    chars = []
    for indices in bins:
        level = float(np.mean(values[indices])) / peak
        chars.append(BARS[min(int(level * (len(BARS) - 1) + 0.5),
                              len(BARS) - 1)])
    return "".join(chars), peak


def main():
    needed = {"tao_tcp_aware", "tao_tcp_naive"}
    if not needed <= set(available_assets()):
        print("train the rule tables first:")
        print("  python scripts/train_assets.py "
              "--assets tao_tcp_naive tao_tcp_aware")
        return

    duration = 15.0
    for scheme in ("tao_tcp_aware", "tao_tcp_naive"):
        trace = run_queue_trace(scheme, duration_s=duration,
                                tcp_on_at=5.0, tcp_off_at=10.0, seed=1)
        chart, peak = strip_chart(trace)
        alone = trace.mean_queue(1.0, 5.0)
        shared = trace.mean_queue(6.0, 10.0)
        print(f"\n=== {scheme} (peak {peak:.0f} packets, "
              f"{len(trace.drop_times)} drops) ===")
        print(chart)
        marker = [" "] * len(chart)
        for t in (5.0, 10.0):
            marker[int(t / duration * (len(chart) - 1))] = "^"
        print("".join(marker) + "   (^ = TCP on / off)")
        print(f"mean queue alone: {alone:6.1f} pkts | "
              f"with TCP: {shared:6.1f} pkts")


if __name__ == "__main__":
    main()
