#!/usr/bin/env python
"""Compose and run ad-hoc scenario grids the paper never measured.

Usage::

    python scripts/sweep.py --axis rtt_ms=log:1:300:7 \
        --axis queue=droptail,codel --schemes cubic,tao_rtt_50_250
    python scripts/sweep.py --axis link_mbps=log:1:1000:9 \
        --schemes cubic,newreno,vegas --jobs 8 --csv sweep.csv
    python scripts/sweep.py --axis senders=logint:1:100:6 \
        --schemes cubic --store sweep.store --resume
    python scripts/sweep.py store stats --store sweep.store

Every ``--axis NAME=SPEC`` adds one grid dimension; ``SPEC`` is either a
spacing rule (``log:LO:HI:N``, ``lin:LO:HI:N``, ``logint:``/``linint:``
for rounded deduplicated integers) or an explicit comma-separated value
list.  Axes sweep any dumbbell knob: ``link_mbps``, ``rtt_ms``,
``senders``, ``queue``, ``buffer_bdp`` (``none`` = infinite),
``buffer_bytes``, ``mean_on_s``, ``mean_off_s``, ``delta``, plus the
link-dynamics knobs ``outage`` (blackout windows as
``0.5-1.0+2.0-2.5`` tokens, ``none`` = static), ``outage_policy``
(``hold``/``drop``), ``jitter_ms``, ``jitter_period_s``, and the queue
ECN knob ``ecn_threshold`` (marking threshold in packets, ``none`` =
ECN off); whatever isn't swept comes from the matching
``--link-mbps``/``--rtt-ms``/... flag (defaults: the calibration
network).

``--adversary`` replaces the grid's outage axis with a *searched* one:
a seeded hill-climb moves ``--adversary-active`` blackout windows
(among ``--adversary-windows`` equal slices of the run) to minimize the
first scheme's objective, then sweeps every scheme over ``none`` vs the
worst pattern found — the learned-Tao brittleness probe.  See
docs/EXPERIMENTS.md ("Hostile networks").

``--schemes`` mixes registered protocols (``cubic``, ``newreno``,
``aimd``, ``vegas``) with trained Tao asset names (run as homogeneous
``learner`` senders); ``--fake-taos`` substitutes a hand-built rule
table for any asset so plumbing can be exercised before training.

The grid is expanded by the same engine the registered experiments run
on (:func:`repro.experiments.api.run_experiment`), so ``--jobs`` fans
the whole (cell × seed) batch over a process pool and ``--store`` /
``--resume`` make it resumable for free.  Output: an aligned table on
stdout (or ``-o``), plus optional ``--csv`` / ``--json`` exports of the
long-form rows.  An analytic omniscient reference row is added per grid
point unless ``--no-bound``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.scale import Scale
from repro.experiments.adversary import AdversarialAxis
from repro.experiments.api import (FAKE_TREE, AdhocBase, Axis,
                                   _adhoc_setting, adhoc_spec,
                                   run_experiment)
from repro.exec import (StoreExecutor, StoreSchemaError, TaskFailedError,
                        add_fault_tolerance_arguments,
                        add_workers_argument, executor_for,
                        policy_from_args, store_main, workers_from_args)
from repro.profiling import add_profile_argument, maybe_profile
from repro.protocols.registry import available_schemes
from repro.sim.fluid import FLUID_SCHEMES


def _check_fluid(schemes, base, axes) -> None:
    """Fail fast at CLI time when ``--backend fluid`` cannot run the
    request, naming the unsupported kind/feature and what *is*
    supported (SimTask.build repeats this check as a backstop)."""
    protocols = set(available_schemes())
    bad = sorted(name for name in schemes
                 if name in protocols and name not in FLUID_SCHEMES)
    if bad:
        raise ValueError(
            f"--backend fluid cannot run {', '.join(bad)}; supported "
            f"kinds: rule-table Taos plus {', '.join(FLUID_SCHEMES)}")
    jittery = base.jitter_ms > 0 or any(
        axis.name == "jitter_ms" and any(float(v) > 0
                                         for v in axis.values)
        for axis in axes)
    if jittery:
        raise ValueError(
            "--backend fluid: rtt jitter is packet-only (no fluid "
            "analogue); outage and rate-trace dynamics are supported")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=SPEC",
                        help="add a grid dimension (repeatable); SPEC = "
                             "log:LO:HI:N | lin:LO:HI:N | logint:... | "
                             "linint:... | v1,v2,...")
    parser.add_argument("--schemes", required=False, default="cubic",
                        help="comma-separated protocols and/or Tao "
                             "asset names (default: cubic)")
    parser.add_argument("--name", default="sweep",
                        help="sweep name used in the table/JSON header")
    parser.add_argument("--scale", choices=sorted(Scale.names()),
                        default="quick")
    parser.add_argument("--seeds", type=int, default=None,
                        help="override the scale's replication count")
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the grid "
                             "(1 = serial)")
    parser.add_argument("--backend", choices=("packet", "fluid"),
                        default="packet",
                        help="simulation engine: exact event-driven "
                             "packet engine, or the vectorized fluid "
                             "model (much faster on large grids; "
                             "fidelity documented in "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--no-bound", action="store_true",
                        help="skip the analytic omniscient reference "
                             "rows")
    parser.add_argument("--fake-taos", action="store_true",
                        help="substitute a hand-built rule table for "
                             "every non-protocol scheme name")
    # defaults for everything not swept
    parser.add_argument("--link-mbps", type=float,
                        default=AdhocBase.link_mbps)
    parser.add_argument("--rtt-ms", type=float,
                        default=AdhocBase.rtt_ms)
    parser.add_argument("--senders", type=int,
                        default=AdhocBase.n_senders)
    parser.add_argument("--queue", default=AdhocBase.queue)
    parser.add_argument("--buffer-bdp", default=AdhocBase.buffer_bdp,
                        help="bottleneck buffer in BDPs ('none' = "
                             "infinite)")
    parser.add_argument("--buffer-bytes", default=None,
                        help="bottleneck buffer in bytes (overrides "
                             "--buffer-bdp)")
    parser.add_argument("--mean-on-s", type=float,
                        default=AdhocBase.mean_on_s)
    parser.add_argument("--mean-off-s", type=float,
                        default=AdhocBase.mean_off_s)
    parser.add_argument("--delta", type=float, default=AdhocBase.delta)
    parser.add_argument("--outage", default=AdhocBase.outage,
                        help="bottleneck blackout windows, e.g. "
                             "'0.5-1.0+2.0-2.5' ('none' = static)")
    parser.add_argument("--outage-policy", default=AdhocBase.outage_policy,
                        choices=("hold", "drop"),
                        help="down links hold queued packets or drop "
                             "arrivals")
    parser.add_argument("--jitter-ms", type=float,
                        default=AdhocBase.jitter_ms,
                        help="one-way delay jitter half-width "
                             "(packet backend only)")
    parser.add_argument("--jitter-period-s", type=float,
                        default=AdhocBase.jitter_period_s)
    parser.add_argument("--ecn-threshold", default="none",
                        help="ECN marking threshold in packets applied "
                             "to every bottleneck queue ('none' = ECN "
                             "off); only ECN-capable schemes (dctcp) "
                             "react")
    # adversarial search over outage patterns
    parser.add_argument("--adversary", action="store_true",
                        help="search for the outage pattern that "
                             "minimizes the first scheme's objective, "
                             "then sweep all schemes over none vs it")
    parser.add_argument("--adversary-windows", type=int, default=8,
                        metavar="N",
                        help="equal time slices the pattern chooses "
                             "from (default 8)")
    parser.add_argument("--adversary-active", type=int, default=2,
                        metavar="K",
                        help="blacked-out slices per pattern "
                             "(default 2)")
    parser.add_argument("--adversary-iters", type=int, default=12,
                        metavar="N",
                        help="hill-climb proposals (default 12)")
    parser.add_argument("--adversary-seed", type=int, default=0)
    # output
    parser.add_argument("-o", "--output", default=None,
                        help="also write the table here")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write the long-form rows as CSV")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the long-form rows as JSON")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="disk-backed result store (makes killed "
                             "sweeps resumable)")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to exist already (typo "
                             "guard)")
    add_fault_tolerance_arguments(parser)
    add_workers_argument(parser)
    add_profile_argument(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store PATH")
    if not args.axis and not args.adversary:
        parser.error("need at least one --axis NAME=SPEC "
                     "(or --adversary)")
    if args.seeds is not None and args.seeds < 1:
        parser.error("--seeds must be >= 1")
    for flag in ("buffer_bdp", "buffer_bytes", "ecn_threshold"):
        try:
            setattr(args, flag,
                    _adhoc_setting(flag, getattr(args, flag)))
        except ValueError:
            parser.error(f"--{flag.replace('_', '-')}: expected a "
                         f"number or 'none', got "
                         f"{getattr(args, flag)!r}")
    return args


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    args = parse_args(argv)

    base = AdhocBase(
        link_mbps=args.link_mbps, rtt_ms=args.rtt_ms,
        n_senders=args.senders, queue=args.queue,
        buffer_bdp=args.buffer_bdp, buffer_bytes=args.buffer_bytes,
        mean_on_s=args.mean_on_s, mean_off_s=args.mean_off_s,
        delta=args.delta,
        outage=args.outage, outage_policy=args.outage_policy,
        jitter_ms=args.jitter_ms,
        jitter_period_s=args.jitter_period_s,
        ecn_threshold=args.ecn_threshold)
    schemes = [name.strip() for name in args.schemes.split(",")
               if name.strip()]
    try:
        axes = [Axis.parse(text) for text in args.axis]
        if args.backend == "fluid":
            _check_fluid(schemes, base, axes)
        adversary = None
        if args.adversary:
            if any(axis.name == "outage" for axis in axes):
                raise ValueError(
                    "--adversary searches the outage axis; drop the "
                    "explicit --axis outage=...")
            adversary = AdversarialAxis(
                windows=args.adversary_windows,
                active=args.adversary_active,
                iters=args.adversary_iters,
                seed=args.adversary_seed,
                policy=args.outage_policy)
        spec = None
        if adversary is None:
            spec = adhoc_spec(axes, schemes, name=args.name, base=base,
                              bound=not args.no_bound)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scale = Scale.named(args.scale)
    if args.seeds is not None:
        scale = scale.with_seeds(args.seeds)
    overrides = None
    if args.fake_taos:
        protocols = set(available_schemes())
        overrides = {name: FAKE_TREE for name in schemes
                     if name not in protocols}

    try:
        workers = workers_from_args(args)
    except ValueError as error:
        print(f"--workers: {error}", file=sys.stderr)
        return 2
    try:
        executor = executor_for(args.jobs, store=args.store,
                                resume=args.resume,
                                policy=policy_from_args(args),
                                workers=workers)
    except (FileNotFoundError, StoreSchemaError) as error:
        print(f"--store: {error}", file=sys.stderr)
        return 2
    started = time.time()
    with executor, maybe_profile(args.profile):
        try:
            if adversary is not None:
                search = adversary.resolve(
                    schemes[0], base=base, scale=scale,
                    trees=overrides, executor=executor,
                    base_seed=args.base_seed, backend=args.backend,
                    log=lambda message: print(message, flush=True))
                print(search.summary(), flush=True)
                spec = adhoc_spec([*axes, search.axis], schemes,
                                  name=args.name, base=base,
                                  bound=not args.no_bound)
            result = run_experiment(
                spec, scale=scale, trees=overrides,
                base_seed=args.base_seed, executor=executor,
                backend=args.backend)
        except FileNotFoundError as error:
            print(f"missing asset: {error}", file=sys.stderr)
            print("(train it with scripts/train_assets.py, or pass "
                  "--fake-taos to exercise the plumbing)",
                  file=sys.stderr)
            return 2
        except TaskFailedError as error:
            print(f"execution failed: {error}", file=sys.stderr)
            if args.on_failure == "raise":
                print("(rerun with --on-failure=quarantine to record "
                      "the poison task and finish everything else)",
                      file=sys.stderr)
            elif args.store:
                print(f"(quarantined fingerprints are recorded in "
                      f"{args.store}; inspect with "
                      f"'store stats --store {args.store} --strict')",
                      file=sys.stderr)
            return 3
        table = result.format_table()
        print(table, flush=True)
        print(f"({time.time() - started:.0f}s)", flush=True)
        if isinstance(executor, StoreExecutor):
            quarantined = (f", {executor.quarantined} quarantined"
                           if executor.quarantined else "")
            print(f"store: {executor.hits} hit(s), "
                  f"{executor.misses} miss(es){quarantined} -> "
                  f"{executor.store.path}", flush=True)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table + "\n")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(result.to_csv())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.to_json(indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
