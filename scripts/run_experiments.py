#!/usr/bin/env python
"""Run the registered experiments and emit the EXPERIMENTS.md block.

Usage::

    python scripts/run_experiments.py --list
    python scripts/run_experiments.py --scale quick
    python scripts/run_experiments.py --scale quick --jobs 4
    python scripts/run_experiments.py --only E2 E4
    python scripts/run_experiments.py --scale default -o results.md
    python scripts/run_experiments.py --scale default --store results.store
    python scripts/run_experiments.py --scale default --store results.store --resume
    python scripts/run_experiments.py store stats --store results.store

The script iterates the experiment registry
(:mod:`repro.experiments.api`) generically: every reproduced
figure/table is a registered :class:`ExperimentSpec` (plus one custom
queue-trace runner), so ``--list`` enumerates them and ``--only``
selects by eid (``E2``), name (``link_speed``), or title substring.
Each experiment prints its table as it completes, and the combined
markdown lands on stdout (or ``-o``).  For grids the paper never ran,
see ``scripts/sweep.py``.

``--scale`` picks a named simulation budget
(:meth:`repro.core.scale.Scale.named`): ``quick`` matches the benchmark
harness's budget; ``default`` is the scale EXPERIMENTS.md records.

``--jobs N`` fans each experiment's (scenario × seed) grid out over an
``N``-worker process pool via :mod:`repro.exec`; the tables are
bitwise-identical to a serial run (the executors' determinism
contract), only faster.

``--fake-taos`` substitutes a fixed hand-built rule table for every
trained asset, so the full pipeline (and the parallel executor) can be
exercised before ``scripts/train_assets.py`` has produced real Taos —
the numbers are then *not* the paper's, only the plumbing.

``--store PATH`` persists every simulation result to a disk-backed
:class:`~repro.exec.ResultStore` as it completes, and serves any result
already there without re-simulating: a sweep killed halfway resumes
from everything it finished, and training (``train_assets.py --store``)
and experiments share results through the same store.  ``--resume``
additionally requires the store to exist already (typo guard).  The
``store stats|gc|verify`` subcommand inspects or repairs a store.
"""

from __future__ import annotations

import argparse
import io
import sys
import time

from repro.core.scale import Scale
from repro.exec import (StoreExecutor, StoreSchemaError, TaskFailedError,
                        add_fault_tolerance_arguments,
                        add_workers_argument, executor_for,
                        policy_from_args, store_main, workers_from_args)
from repro.experiments.api import (FAKE_TREE, experiments,
                                   run_experiment)
from repro.profiling import add_profile_argument, maybe_profile


def _selected(entries, only):
    """Filter registry entries by eid, name, or title substring."""
    if not only:
        return list(entries)
    needles = [piece.strip().lower()
               for token in only for piece in token.split(",")
               if piece.strip()]
    picked = []
    for entry in entries:
        for needle in needles:
            if (needle in (entry.eid.lower(), entry.name.lower())
                    or needle in entry.title.lower()):
                picked.append(entry)
                break
    return picked


def _list_experiments(scale: Scale) -> None:
    for entry in experiments():
        if entry.spec is None:
            shape = "custom runner"
        else:
            axes = entry.spec.axes_for(scale)
            grid = " × ".join(f"{axis.name}[{len(axis.values)}]"
                              for axis in axes) or "1 point"
            shape = f"{len(entry.spec.schemes)} schemes × {grid}"
        print(f"{entry.eid:<3} {entry.name:<16} {shape}")
        print(f"    {entry.title}")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(Scale.names()),
                        default="quick")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the simulation grid "
                             "(1 = serial)")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the combined report here")
    parser.add_argument("--list", action="store_true",
                        help="list the registered experiments and exit")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run a subset: eids (E2), names "
                             "(link_speed), or title substrings; "
                             "comma-separated or repeated")
    parser.add_argument("--backend", choices=("packet", "fluid"),
                        default="packet",
                        help="simulation engine; 'fluid' runs each "
                             "spec through the generic sweep engine on "
                             "the vectorized fluid model (fast, "
                             "approximate — see docs/PERFORMANCE.md); "
                             "custom-runner entries are skipped")
    parser.add_argument("--fake-taos", action="store_true",
                        help="substitute a fixed hand-built rule table "
                             "for every trained asset (plumbing check, "
                             "not the paper's numbers)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="disk-backed result store: serve cached "
                             "simulations from PATH, persist fresh ones "
                             "(makes killed sweeps resumable)")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to exist already (guards "
                             "against a typo'd path silently recomputing "
                             "a finished sweep)")
    add_fault_tolerance_arguments(parser)
    add_workers_argument(parser)
    add_profile_argument(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store PATH")
    scale = Scale.named(args.scale)
    if args.list:
        _list_experiments(scale)
        return 0

    report = io.StringIO()
    report.write(f"Results at scale={args.scale!r} "
                 f"(duration<={scale.duration_s:g}s, "
                 f"{scale.n_seeds} seeds, "
                 f"{scale.sweep_points} sweep points)\n")
    try:
        workers = workers_from_args(args)
    except ValueError as error:
        print(f"--workers: {error}", file=sys.stderr)
        return 2
    try:
        executor = executor_for(args.jobs, store=args.store,
                                resume=args.resume,
                                policy=policy_from_args(args),
                                workers=workers)
    except (FileNotFoundError, StoreSchemaError) as error:
        print(f"--store: {error}", file=sys.stderr)
        return 2
    failed = 0
    with executor, maybe_profile(args.profile):
        for entry in _selected(experiments(), args.only):
            overrides = None
            if args.fake_taos:
                overrides = {asset: FAKE_TREE
                             for asset in entry.assets}
            started = time.time()
            print(f"\n### {entry.title}", flush=True)
            try:
                if args.backend == "packet":
                    block = entry.render(scale, overrides, executor)
                elif entry.spec is None:
                    block = ("SKIPPED: custom runner requires the "
                             "packet backend")
                else:
                    # Legacy renderers are pinned byte-identical to the
                    # packet engine; fluid tables come from the generic
                    # spec engine instead.
                    block = run_experiment(
                        entry.spec, scale=scale, trees=overrides,
                        executor=executor,
                        backend=args.backend).format_table()
            except FileNotFoundError as error:
                block = f"SKIPPED: {error}"
            except TaskFailedError as error:
                # One experiment's poison must not silently eat the
                # rest of the report: record the failure in its block,
                # keep going, exit non-zero at the end.
                block = f"FAILED: {error}"
                failed += 1
            print(block, flush=True)
            elapsed = time.time() - started
            print(f"({elapsed:.0f}s)", flush=True)
            report.write(f"\n### {entry.title}\n```\n{block}\n```\n")
        if isinstance(executor, StoreExecutor):
            # To stdout only, never the report: hit counts vary between
            # a fresh and a resumed run, the tables must not.
            quarantined = (f", {executor.quarantined} quarantined"
                           if executor.quarantined else "")
            print(f"\nstore: {executor.hits} hit(s), "
                  f"{executor.misses} miss(es){quarantined} -> "
                  f"{executor.store.path}", flush=True)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.getvalue())
        print(f"\nreport written to {args.output}")
    if failed:
        print(f"\n{failed} experiment(s) failed on poison tasks",
              file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
