#!/usr/bin/env python
"""Run every experiment and emit the EXPERIMENTS.md results block.

Usage::

    python scripts/run_experiments.py --scale quick
    python scripts/run_experiments.py --scale quick --jobs 4
    python scripts/run_experiments.py --scale default -o results.md
    python scripts/run_experiments.py --scale default --store results.store
    python scripts/run_experiments.py --scale default --store results.store --resume
    python scripts/run_experiments.py store stats --store results.store

Each experiment prints its table as it completes, and the combined
markdown lands on stdout (or ``-o``).  ``quick`` matches the benchmark
harness's budget; ``default`` is the scale EXPERIMENTS.md records.

``--jobs N`` fans each experiment's (scenario × seed) grid out over an
``N``-worker process pool via :mod:`repro.exec`; the tables are
bitwise-identical to a serial run (the executors' determinism
contract), only faster.

``--fake-taos`` substitutes a fixed hand-built rule table for every
trained asset, so the full pipeline (and the parallel executor) can be
exercised before ``scripts/train_assets.py`` has produced real Taos —
the numbers are then *not* the paper's, only the plumbing.

``--store PATH`` persists every simulation result to a disk-backed
:class:`~repro.exec.ResultStore` as it completes, and serves any result
already there without re-simulating: a sweep killed halfway resumes
from everything it finished, and training (``train_assets.py --store``)
and experiments share results through the same store.  ``--resume``
additionally requires the store to exist already (typo guard).  The
``store stats|gc|verify`` subcommand inspects or repairs a store.
"""

from __future__ import annotations

import argparse
import io
import sys
import time

from repro.core.scale import Scale
from repro.exec import (StoreExecutor, StoreSchemaError, executor_for,
                        store_main)
from repro.profiling import add_profile_argument, maybe_profile
from repro.experiments import (calibration, diversity, link_speed,
                               multiplexing, rtt, signals, structure,
                               tcp_awareness)
from repro.experiments.tcp_awareness import run_queue_trace
from repro.remy.action import Action
from repro.remy.memory import SIGNAL_NAMES
from repro.remy.tree import WhiskerTree

SCALES = {
    "quick": Scale(duration_s=10.0, packet_budget=30_000,
                   min_duration_s=4.0, n_seeds=2, sweep_points=5),
    "default": Scale(duration_s=30.0, packet_budget=90_000,
                     min_duration_s=4.0, n_seeds=3, sweep_points=7),
    "full": Scale(duration_s=60.0, packet_budget=300_000,
                  min_duration_s=4.0, n_seeds=5, sweep_points=10),
}


#: Stand-in rule table used by ``--fake-taos`` (matches the test
#: suite's sane rate-matching action).
_FAKE_TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))

#: Every trained asset each experiment consumes (for ``--fake-taos``).
_ASSETS = {
    "link_speed": tuple(link_speed.TAO_RANGES),
    "multiplexing": tuple(multiplexing.TAO_RANGES),
    "rtt": tuple(rtt.TAO_RANGES),
    "structure": ("tao_structure_one", "tao_structure_two"),
    "tcp_awareness": ("tao_tcp_naive", "tao_tcp_aware"),
    "diversity": ("tao_delta_tpt_naive", "tao_delta_del_naive",
                  "tao_delta_tpt_coopt", "tao_delta_del_coopt"),
    "signals": ("tao_calibration",) + tuple(
        f"tao_knockout_{signal}" for signal in SIGNAL_NAMES),
}


def _fake_trees(experiment: str, fake: bool):
    if not fake:
        return None
    return {name: _FAKE_TREE for name in _ASSETS[experiment]}


def _fig8_block(scale, executor, fake) -> str:
    lines = ["Figure 8 — queue traces (TCP on during [5 s, 10 s)):"]
    for scheme in ("tao_tcp_aware", "tao_tcp_naive"):
        trace = run_queue_trace(
            scheme, tree=_FAKE_TREE if fake else None, seed=1)
        lines.append(
            f"{scheme:<15} queue alone={trace.mean_queue(1, 5):7.1f} "
            f"pkts  with TCP={trace.mean_queue(6, 10):7.1f} pkts  "
            f"drops={len(trace.drop_times)}")
    return "\n".join(lines)


def _runner(module, name):
    return lambda scale, executor, fake: module.format_table(
        module.run(scale=scale, trees=_fake_trees(name, fake),
                   executor=executor))


EXPERIMENTS = [
    ("E1 Figure 1 / Table 1 — calibration",
     lambda s, ex, fake: calibration.format_table(calibration.run(
         scale=s, tree=_FAKE_TREE if fake else None, executor=ex))),
    ("E2 Figure 2 / Table 2 — link-speed ranges",
     _runner(link_speed, "link_speed")),
    ("E3 Figure 3 / Table 3 — multiplexing",
     _runner(multiplexing, "multiplexing")),
    ("E4 Figure 4 / Table 4 — propagation delay",
     _runner(rtt, "rtt")),
    ("E5 Figure 6 / Table 5 — structural knowledge",
     _runner(structure, "structure")),
    ("E6 Figure 7 / Table 6 — TCP-awareness",
     _runner(tcp_awareness, "tcp_awareness")),
    ("E7 Figure 8 — queue traces",
     _fig8_block),
    ("E8 Figure 9 / Table 7 — sender diversity",
     _runner(diversity, "diversity")),
    ("E9 Section 3.4 — signal knockouts",
     _runner(signals, "signals")),
]


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="quick")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the simulation grid "
                             "(1 = serial)")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the combined report here")
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filter on experiment titles")
    parser.add_argument("--fake-taos", action="store_true",
                        help="substitute a fixed hand-built rule table "
                             "for every trained asset (plumbing check, "
                             "not the paper's numbers)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="disk-backed result store: serve cached "
                             "simulations from PATH, persist fresh ones "
                             "(makes killed sweeps resumable)")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to exist already (guards "
                             "against a typo'd path silently recomputing "
                             "a finished sweep)")
    add_profile_argument(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store PATH")
    scale = SCALES[args.scale]

    report = io.StringIO()
    report.write(f"Results at scale={args.scale!r} "
                 f"(duration<={scale.duration_s:g}s, "
                 f"{scale.n_seeds} seeds, "
                 f"{scale.sweep_points} sweep points)\n")
    try:
        executor = executor_for(args.jobs, store=args.store,
                                resume=args.resume)
    except (FileNotFoundError, StoreSchemaError) as error:
        print(f"--store: {error}", file=sys.stderr)
        return 2
    with executor, maybe_profile(args.profile):
        for title, runner in EXPERIMENTS:
            if args.only and not any(needle.lower() in title.lower()
                                     for needle in args.only):
                continue
            started = time.time()
            print(f"\n### {title}", flush=True)
            try:
                block = runner(scale, executor, args.fake_taos)
            except FileNotFoundError as error:
                block = f"SKIPPED: {error}"
            print(block, flush=True)
            elapsed = time.time() - started
            print(f"({elapsed:.0f}s)", flush=True)
            report.write(f"\n### {title}\n```\n{block}\n```\n")
        if isinstance(executor, StoreExecutor):
            # To stdout only, never the report: hit counts vary between
            # a fresh and a resumed run, the tables must not.
            print(f"\nstore: {executor.hits} hit(s), "
                  f"{executor.misses} miss(es) -> {executor.store.path}",
                  flush=True)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.getvalue())
        print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
