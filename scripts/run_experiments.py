#!/usr/bin/env python
"""Run every experiment and emit the EXPERIMENTS.md results block.

Usage::

    python scripts/run_experiments.py --scale quick
    python scripts/run_experiments.py --scale default -o results.md

Each experiment prints its table as it completes, and the combined
markdown lands on stdout (or ``-o``).  ``quick`` matches the benchmark
harness's budget; ``default`` is the scale EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout

from repro.core.scale import Scale
from repro.experiments import (calibration, diversity, link_speed,
                               multiplexing, rtt, signals, structure,
                               tcp_awareness)
from repro.experiments.tcp_awareness import run_queue_trace

SCALES = {
    "quick": Scale(duration_s=10.0, packet_budget=30_000,
                   min_duration_s=4.0, n_seeds=2, sweep_points=5),
    "default": Scale(duration_s=30.0, packet_budget=90_000,
                     min_duration_s=4.0, n_seeds=3, sweep_points=7),
    "full": Scale(duration_s=60.0, packet_budget=300_000,
                  min_duration_s=4.0, n_seeds=5, sweep_points=10),
}


def _fig8_block() -> str:
    lines = ["Figure 8 — queue traces (TCP on during [5 s, 10 s)):"]
    for scheme in ("tao_tcp_aware", "tao_tcp_naive"):
        trace = run_queue_trace(scheme, seed=1)
        lines.append(
            f"{scheme:<15} queue alone={trace.mean_queue(1, 5):7.1f} "
            f"pkts  with TCP={trace.mean_queue(6, 10):7.1f} pkts  "
            f"drops={len(trace.drop_times)}")
    return "\n".join(lines)


EXPERIMENTS = [
    ("E1 Figure 1 / Table 1 — calibration",
     lambda s: calibration.format_table(calibration.run(scale=s))),
    ("E2 Figure 2 / Table 2 — link-speed ranges",
     lambda s: link_speed.format_table(link_speed.run(scale=s))),
    ("E3 Figure 3 / Table 3 — multiplexing",
     lambda s: multiplexing.format_table(multiplexing.run(scale=s))),
    ("E4 Figure 4 / Table 4 — propagation delay",
     lambda s: rtt.format_table(rtt.run(scale=s))),
    ("E5 Figure 6 / Table 5 — structural knowledge",
     lambda s: structure.format_table(structure.run(scale=s))),
    ("E6 Figure 7 / Table 6 — TCP-awareness",
     lambda s: tcp_awareness.format_table(tcp_awareness.run(scale=s))),
    ("E7 Figure 8 — queue traces",
     lambda s: _fig8_block()),
    ("E8 Figure 9 / Table 7 — sender diversity",
     lambda s: diversity.format_table(diversity.run(scale=s))),
    ("E9 Section 3.4 — signal knockouts",
     lambda s: signals.format_table(signals.run(scale=s))),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="quick")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the combined report here")
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filter on experiment titles")
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    report = io.StringIO()
    report.write(f"Results at scale={args.scale!r} "
                 f"(duration<={scale.duration_s:g}s, "
                 f"{scale.n_seeds} seeds, "
                 f"{scale.sweep_points} sweep points)\n")
    for title, runner in EXPERIMENTS:
        if args.only and not any(needle.lower() in title.lower()
                                 for needle in args.only):
            continue
        started = time.time()
        print(f"\n### {title}", flush=True)
        try:
            block = runner(scale)
        except FileNotFoundError as error:
            block = f"SKIPPED: {error}"
        print(block, flush=True)
        elapsed = time.time() - started
        print(f"({elapsed:.0f}s)", flush=True)
        report.write(f"\n### {title}\n```\n{block}\n```\n")

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.getvalue())
        print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
