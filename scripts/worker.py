#!/usr/bin/env python
"""Run one repro worker daemon for remote task dispatch.

Usage::

    python scripts/worker.py --port 7070
    python scripts/worker.py --host 0.0.0.0 --port 0   # ephemeral port

Then point any sweep/training client at it::

    python scripts/sweep.py --axis rtt_ms=log:1:300:7 --schemes cubic \
        --workers hostA:7070,hostB:7070

The daemon accepts one :class:`~repro.exec.remote.RemoteExecutor`
connection per lane (list an address twice client-side for two parallel
lanes), runs each length-prefixed, checksummed
:class:`~repro.exec.task.SimTask` assignment, and streams per-task
results back — those double as the client's heartbeat acks.  Results
are cached per client session keyed by task fingerprint, so a client
that reconnects after a network fault gets lost-in-flight results
replayed instantly instead of recomputed.

Fault injection: the process marks itself a worker, so a
``REPRO_FAULTS`` plan (see :mod:`repro.exec.faults`) arms both the
in-task faults (raise / hang / SIGKILL) and the wire faults
(conn-drop / frame-corrupt / partition / delay) here — never in the
dispatching client.

Frames are pickled Python objects: run workers only on hosts and
networks you trust (see docs/EXECUTION.md, "Remote execution").
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.exec.remote import serve_worker  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on (default "
                             "127.0.0.1; use 0.0.0.0 only on a "
                             "trusted network)")
    parser.add_argument("--port", type=int, default=7070,
                        help="TCP port (0 = pick an ephemeral port "
                             "and print it)")
    parser.add_argument("--cache-size", type=int, default=4096,
                        metavar="N",
                        help="per-session result-cache entries kept "
                             "for reconnect replay (default 4096)")
    args = parser.parse_args(argv)
    serve_worker(
        host=args.host, port=args.port, cache_size=args.cache_size,
        on_ready=lambda port: print(
            f"repro worker listening on {args.host}:{port}",
            flush=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
