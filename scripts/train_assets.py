#!/usr/bin/env python
"""Train the Tao rule tables shipped under ``repro/data/assets``.

Usage::

    python scripts/train_assets.py --assets tao_2x tao_10x --jobs 8
    python scripts/train_assets.py --all --jobs 20
    python scripts/train_assets.py --all --jobs 20 --store train.store
    python scripts/train_assets.py store stats --store train.store

Each asset corresponds to one entry of :data:`repro.remy.catalog.CATALOG`
(one row of the paper's training tables).  Co-optimized pairs (Table 7a)
are trained together when either member is requested.

``--jobs N`` fans the evaluator's (tree, config, seed) batches out over
an ``N``-worker pool via :mod:`repro.exec`; training results are
bitwise-identical to a serial run (common random numbers are preserved
by the execution layer's determinism contract).

The paper's Remy runs used a CPU-year per protocol; this script's budget
is minutes per protocol (see DESIGN.md's substitution table), tunable
via ``--budget``, ``--generations``, and ``--configs``.

``--screen fluid --confirm-top K`` screens each candidate batch on the
vectorized fluid backend (:mod:`repro.sim.fluid`) and re-scores only
the most promising ``K`` (plus any candidate whose fluid score still
beats the best confirmed packet score) on the exact packet engine —
every adopted action is packet-confirmed, so screening changes wall
time, never the adoption criterion's engine.

``--store PATH`` persists every training simulation to a disk-backed
:class:`~repro.exec.ResultStore` keyed by task fingerprint: a killed
training run resumes its already-simulated evaluations from disk, and
``run_experiments.py --store`` pointed at the same path reuses them.
``--resume`` requires the store to exist already; the ``store
stats|gc|verify`` subcommand inspects or repairs one.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict

from repro.core.scale import Scale
from repro.exec import (StoreExecutor, StoreSchemaError, TaskFailedError,
                        add_fault_tolerance_arguments,
                        add_workers_argument, default_jobs,
                        executor_for, policy_from_args, store_main,
                        workers_from_args)
from repro.profiling import add_profile_argument, maybe_profile
from repro.remy.assets import save_asset
from repro.remy.catalog import CATALOG
from repro.remy.evaluator import EvalSettings
from repro.remy.optimizer import (OptimizerSettings, RemyOptimizer,
                                  cooptimize)
from repro.remy.tree import WhiskerTree


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--assets", nargs="*", default=[],
                        help="catalog names to train")
    parser.add_argument("--all", action="store_true",
                        help="train every catalog entry")
    parser.add_argument("-j", "--jobs", type=int,
                        dest="jobs", default=default_jobs(),
                        help="worker processes for simulation batches "
                             "(1 = serial)")
    parser.add_argument("--budget", type=float, default=360.0,
                        help="wall-clock seconds per asset")
    parser.add_argument("--generations", type=int, default=2)
    parser.add_argument("--action-steps", type=int, default=6)
    parser.add_argument("--configs", type=int, default=6,
                        help="scenario samples per evaluation")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="max simulated seconds per training run")
    parser.add_argument("--packet-budget", type=int, default=25_000)
    parser.add_argument("--coopt-rounds", type=int, default=2)
    parser.add_argument("--screen", choices=("fluid",), default=None,
                        help="score candidate batches on the vectorized "
                             "fluid backend first, then confirm the "
                             "best on the packet engine (adopted "
                             "actions are always packet-scored; see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--confirm-top", type=int, default=4,
                        help="screened candidates to packet-confirm "
                             "per batch (with --screen)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="disk-backed result store: serve cached "
                             "training simulations from PATH, persist "
                             "fresh ones (makes killed runs resumable)")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to exist already (typo "
                             "guard)")
    add_fault_tolerance_arguments(parser)
    add_workers_argument(parser)
    add_profile_argument(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store PATH")
    if args.workers and args.workers.isdigit():
        # Pre-remote builds accepted --workers N as a --jobs alias;
        # keep that spelling working instead of rejecting it as a
        # malformed HOST:PORT.
        args.jobs = int(args.workers)
        args.workers = None
    return args


def settings_for(args: argparse.Namespace,
                 spec_name: str) -> tuple[EvalSettings, OptimizerSettings]:
    eval_settings = EvalSettings(
        n_configs=args.configs,
        sim_seeds=(1,),
        scale=Scale(duration_s=args.duration,
                    packet_budget=args.packet_budget,
                    min_duration_s=4.0))
    opt_settings = OptimizerSettings(
        generations=args.generations,
        max_action_steps=args.action_steps,
        time_budget_s=args.budget)
    return eval_settings, opt_settings


def train_single(name: str, args: argparse.Namespace, executor) -> None:
    spec = CATALOG[name]
    eval_settings, opt_settings = settings_for(args, name)
    started = time.time()
    print(f"[{name}] training started", flush=True)
    optimizer = RemyOptimizer(
        spec.training, eval_settings, opt_settings, executor=executor,
        progress=lambda msg: print(f"[{name}] {msg}", flush=True),
        screen=args.screen, confirm_top=args.confirm_top)
    tree = WhiskerTree(mask=spec.mask)
    tree, log = optimizer.train(tree)
    save_asset(name, tree,
               training_range=asdict(spec.training),
               log={"scores": log.scores, "tree_sizes": log.tree_sizes,
                    "evaluations": log.evaluations,
                    "wall_time_s": log.wall_time_s,
                    "paper_table": spec.paper_table})
    print(f"[{name}] done in {time.time() - started:.0f}s "
          f"score={log.final_score:.3f} whiskers={len(tree)}", flush=True)


def train_coopt_pair(name_a: str, name_b: str,
                     args: argparse.Namespace, executor) -> None:
    spec_a, spec_b = CATALOG[name_a], CATALOG[name_b]
    eval_settings, opt_settings = settings_for(args, name_a)
    started = time.time()
    print(f"[{name_a}+{name_b}] co-optimization started", flush=True)
    tree_a, tree_b = cooptimize(
        spec_a.training, spec_b.training, eval_settings, opt_settings,
        rounds=args.coopt_rounds, executor=executor,
        progress=lambda msg: print(f"[coopt] {msg}", flush=True),
        screen=args.screen, confirm_top=args.confirm_top)
    for name, spec, tree in ((name_a, spec_a, tree_a),
                             (name_b, spec_b, tree_b)):
        save_asset(name, tree, training_range=asdict(spec.training),
                   log={"paper_table": spec.paper_table,
                        "coopt_partner": spec.coopt_partner,
                        "wall_time_s": time.time() - started})
    print(f"[{name_a}+{name_b}] done in {time.time() - started:.0f}s",
          flush=True)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    args = parse_args(argv)
    names = list(CATALOG) if args.all else list(args.assets)
    unknown = [n for n in names if n not in CATALOG]
    if unknown:
        print(f"unknown assets: {unknown}", file=sys.stderr)
        print(f"available: {sorted(CATALOG)}", file=sys.stderr)
        return 2
    if not names:
        print("nothing to train (use --assets or --all)", file=sys.stderr)
        return 2

    done = set()
    try:
        workers = workers_from_args(args)
    except ValueError as error:
        print(f"--workers: {error}", file=sys.stderr)
        return 2
    try:
        executor = executor_for(args.jobs, store=args.store,
                                resume=args.resume,
                                policy=policy_from_args(args),
                                workers=workers)
    except (FileNotFoundError, StoreSchemaError) as error:
        print(f"--store: {error}", file=sys.stderr)
        return 2
    with executor, maybe_profile(args.profile):
        try:
            for name in names:
                if name in done:
                    continue
                partner = CATALOG[name].coopt_partner
                if partner is not None:
                    train_coopt_pair(name, partner, args, executor)
                    done.update((name, partner))
                else:
                    train_single(name, args, executor)
                    done.add(name)
        except TaskFailedError as error:
            # Training cannot quarantine around a missing score — a
            # candidate compared on partial evidence would corrupt the
            # search — so any exhausted task aborts the asset.
            print(f"training aborted: {error}", file=sys.stderr)
            return 3
        if isinstance(executor, StoreExecutor):
            print(f"store: {executor.hits} hit(s), "
                  f"{executor.misses} miss(es) -> {executor.store.path}",
                  flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
