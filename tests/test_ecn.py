"""The ECN subsystem and the modern scheme family (DCTCP, PCC).

Four layers of contract:

* **Registry** — dctcp/pcc are first-class scheme names, and an unknown
  name fails with the full sorted menu (the error a sweep-CLI typo
  surfaces).
* **Queue marking** — threshold marking is mark-*instead of*-drop: an
  ECT packet admitted over the threshold is CE-marked, never dropped;
  drops still happen at capacity; and against a *fixed* arrival
  process, marks are monotone nonincreasing in the threshold.  (The
  monotonicity is a queue property, not an end-to-end one: a reactive
  sender changes its offered load with the threshold, so end-to-end
  mark counts may go either way.)
* **DCTCP steady state** — the queue pins near the threshold with no
  drops, and the sawtooth amplitude lands within a loose factor of
  Alizadeh's analytic prediction ``A = (alpha/2) W* ~ sqrt(W*/2)``.
* **PCC** — the utility the controller reports improves as it searches
  a static dumbbell, and its best monitor interval closes on the
  capacity bound.
"""

import numpy as np
import pytest

from repro.core.scenario import NetworkConfig
from repro.experiments.common import build_simulation
from repro.protocols.registry import available_schemes, make_controller
from repro.sim.fluid import fluid_refusal
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue

_PKT = 1500


def _dumbbell(kind, ecn_threshold=None, queue="droptail"):
    """One saturated sender on the 15 Mbps / 100 ms bottleneck."""
    return NetworkConfig(
        link_speeds_mbps=(15.0,), rtt_ms=100.0, sender_kinds=(kind,),
        mean_on_s=100.0, mean_off_s=0.0, buffer_bdp=5.0,
        ecn_threshold=ecn_threshold, queue=queue)


class TestRegistry:
    def test_modern_family_registered(self):
        assert {"dctcp", "pcc"} <= set(available_schemes())

    def test_unknown_scheme_error_lists_sorted_menu(self):
        with pytest.raises(ValueError) as excinfo:
            make_controller("warp")
        message = str(excinfo.value)
        assert "unknown scheme 'warp'" in message
        # The full sorted menu, so the error is actionable as-is.
        assert str(available_schemes()) in message
        assert available_schemes() == sorted(available_schemes())

    def test_ecn_negotiation_is_per_scheme(self):
        # DCTCP asks for ECT stamping; PCC (as deployed) does not.
        assert make_controller("dctcp").ecn is True
        assert make_controller("pcc").ecn is False
        assert make_controller("cubic").ecn is False


def _ect_packet(seq: int) -> Packet:
    packet = Packet(flow_id=0, seq=seq, size_bytes=_PKT, sent_at=0.0)
    packet.ecn_capable = True
    return packet


class TestQueueMarking:
    def test_mark_never_drop_below_capacity(self):
        queue = DropTailQueue(capacity_packets=100, ecn_threshold=10)
        packets = [_ect_packet(i) for i in range(50)]
        assert all(queue.enqueue(p, now=0.0) for p in packets)
        assert queue.stats.dropped == 0
        # Occupancy exceeds the threshold from the 11th packet on.
        assert queue.stats.marked == 40
        assert [p.ecn_ce for p in packets] == [False] * 10 + [True] * 40

    def test_non_ect_traffic_never_marked(self):
        queue = DropTailQueue(capacity_packets=100, ecn_threshold=10)
        for i in range(50):
            assert queue.enqueue(
                Packet(flow_id=0, seq=i, size_bytes=_PKT, sent_at=0.0),
                now=0.0)
        assert queue.stats.marked == 0
        assert queue.stats.dropped == 0

    def test_drops_still_happen_at_capacity(self):
        queue = DropTailQueue(capacity_packets=20, ecn_threshold=5)
        admitted = sum(queue.enqueue(_ect_packet(i), now=0.0)
                       for i in range(30))
        assert admitted == 20
        assert queue.stats.dropped == 10
        assert queue.stats.marked == 15   # packets 6..20 of the admitted

    def test_marks_monotone_nonincreasing_in_threshold(self):
        """Same arrival process, higher threshold: never more marks."""
        def marks(threshold):
            queue = DropTailQueue(capacity_packets=200,
                                  ecn_threshold=threshold)
            for i in range(120):
                queue.enqueue(_ect_packet(i), now=0.0)
                if i % 3 == 2:
                    queue.dequeue(now=0.0)
            return queue.stats.marked

        counts = [marks(k) for k in (0, 5, 10, 20, 50, 100)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-2] > 0
        # The arrival process peaks at 80 resident packets, so a
        # threshold the occupancy never crosses must never mark.
        assert counts[-1] == 0


class TestEndToEndECN:
    @pytest.mark.parametrize("queue", ["droptail", "codel", "sfq_codel"])
    def test_dctcp_marks_and_never_drops(self, queue):
        """A lone DCTCP flow against a 5-BDP buffer: the marks arrive
        long before the buffer fills, so ECN fully replaces loss."""
        handle = build_simulation(
            _dumbbell("dctcp", ecn_threshold=20.0, queue=queue), seed=1)
        result = handle.run(10.0)
        stats = handle.built.link("A", "B").queue.stats
        assert stats.marked > 0
        assert stats.dropped == 0
        assert result.bottleneck_utilization > 0.7

    def test_dctcp_amplitude_matches_analytic(self):
        """Alizadeh's steady-state analysis: with critical window
        ``W* = BDP + K`` the marked fraction settles near
        ``sqrt(2/W*)`` and the sawtooth amplitude near
        ``A = (alpha/2) W* = sqrt(W*/2)`` packets.  The analysis
        assumes small oscillations and instant feedback, so the test
        holds the simulator to a loose factor, not the exact value."""
        threshold = 20.0
        config = _dumbbell("dctcp", ecn_threshold=threshold)
        handle = build_simulation(config, seed=1, trace_queues=True)
        handle.run(30.0)
        stats = handle.built.link("A", "B").queue.stats
        assert stats.dropped == 0

        trace = next(iter(handle.traces.values()))
        _, lengths = trace.sample(0.01, 30.0)
        steady = lengths[len(lengths) // 2:]
        amplitude = (np.percentile(steady, 95)
                     - np.percentile(steady, 5))
        bdp = config.link_speed_bps(0) * config.rtt_ms / 1e3 / 8 / _PKT
        w_star = bdp + threshold
        analytic = (w_star / 2.0) ** 0.5
        assert analytic / 2.0 <= amplitude <= 3.0 * analytic, (
            f"sawtooth amplitude {amplitude:.1f} pkts vs analytic "
            f"{analytic:.1f} (W* = {w_star:.0f})")
        # ... and the queue is pinned near K, not near the 5-BDP tail.
        assert threshold / 4.0 <= steady.mean() <= 2.0 * threshold


class TestPCC:
    def test_utility_improves_in_static_dumbbell(self):
        handle = build_simulation(_dumbbell("pcc"), seed=1)
        handle.run(30.0)
        utilities = handle.controllers[0].utilities
        assert len(utilities) >= 20
        # Starting state: each rate doubling below capacity must win.
        assert utilities[0] < utilities[1] < utilities[2] < utilities[3]
        # The best monitor interval closes on the capacity bound
        # (sigmoid(0) * capacity: ~0.99 * 1250 pkts/s here).
        capacity_pps = 15e6 / 8.0 / _PKT
        assert max(utilities) > 0.9 * capacity_pps
        # Converged operation beats the search transient on average.
        quarter = len(utilities) // 4
        early = sum(utilities[:quarter]) / quarter
        late = sum(utilities[-quarter:]) / quarter
        assert late > early


class TestFluidCoverage:
    def test_pcc_refusal_names_scheme_and_docs(self):
        reason = fluid_refusal(_dumbbell("pcc"))
        assert reason is not None
        assert "'pcc'" in reason
        assert "packet-only" in reason
        assert "docs/PERFORMANCE.md" in reason

    def test_dctcp_on_droptail_ecn_is_fluid_eligible(self):
        assert fluid_refusal(_dumbbell("dctcp", ecn_threshold=20.0)) \
            is None

    def test_ecn_on_codel_is_packet_only(self):
        reason = fluid_refusal(
            _dumbbell("dctcp", ecn_threshold=20.0, queue="codel"))
        assert reason is not None
        assert "packet-only" in reason
