"""Tests for packet construction and network source-route dispatch."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.packet import ACK_SIZE_BYTES, Packet


def make_network(n_hops=2):
    sim = Simulator()
    network = Network(sim)
    forward = []
    for k in range(n_hops):
        link = Link(sim, 1e6, 0.01, name=f"f{k}")
        network.add_link(link)
        forward.append(link)
    reverse = Link(sim, math.inf, 0.01, name="r0")
    network.add_link(reverse)
    network.add_flow(0, forward, [reverse])
    return sim, network, forward, reverse


class TestPacket:
    def test_ack_echoes_timestamps(self):
        data = Packet(flow_id=3, seq=7, size_bytes=1500, sent_at=1.25,
                      first_sent_at=1.0)
        ack = Packet.make_ack(data, ack_seq=8, now=2.0)
        assert ack.is_ack
        assert ack.flow_id == 3
        assert ack.seq == 7
        assert ack.ack_seq == 8
        assert ack.echo_sent_at == 1.25
        assert ack.echo_first_sent_at == 1.0
        assert ack.receiver_time == 2.0
        assert ack.size_bytes == ACK_SIZE_BYTES

    def test_first_sent_defaults_to_sent(self):
        packet = Packet(flow_id=0, seq=0, size_bytes=1500, sent_at=4.0)
        assert packet.first_sent_at == 4.0


class TestNetworkDispatch:
    def test_multi_hop_delivery(self):
        sim, network, forward, _ = make_network(n_hops=3)
        delivered = []
        network.attach_receiver(0, lambda p: delivered.append(sim.now))
        network.attach_sender(0, lambda p: None)
        packet = Packet(flow_id=0, seq=0, size_bytes=1500, sent_at=0.0)
        network.send_data(packet)
        sim.run(until=1.0)
        # 3 hops x (12 ms serialization + 10 ms propagation).
        assert delivered == [pytest.approx(0.066)]

    def test_ack_routes_back_to_sender(self):
        sim, network, _, _ = make_network()
        acked = []
        network.attach_receiver(0, lambda p: None)
        network.attach_sender(0, lambda p: acked.append(p.ack_seq))
        ack = Packet.make_ack(
            Packet(flow_id=0, seq=0, size_bytes=1500, sent_at=0.0),
            ack_seq=1, now=0.0)
        network.send_ack(ack)
        sim.run(until=1.0)
        assert acked == [1]

    def test_missing_endpoint_raises(self):
        sim, network, _, _ = make_network()
        packet = Packet(flow_id=0, seq=0, size_bytes=1500, sent_at=0.0)
        with pytest.raises(RuntimeError, match="no endpoint"):
            network.send_data(packet)

    def test_duplicate_flow_rejected(self):
        sim, network, forward, reverse = make_network()
        with pytest.raises(ValueError, match="duplicate flow"):
            network.add_flow(0, forward, [reverse])

    def test_route_with_unregistered_link_rejected(self):
        sim, network, _, _ = make_network()
        stray = Link(sim, 1e6, 0.0, name="stray")
        with pytest.raises(ValueError, match="unregistered"):
            network.add_flow(1, [stray], [stray])

    def test_duplicate_link_name_rejected(self):
        sim, network, _, _ = make_network()
        with pytest.raises(ValueError, match="duplicate link"):
            network.add_link(Link(sim, 1e6, 0.0, name="f0"))

    def test_empty_route_delivers_directly(self):
        sim = Simulator()
        network = Network(sim)
        network.add_flow(0, [], [])
        got = []
        network.attach_receiver(0, got.append)
        network.attach_sender(0, lambda p: None)
        packet = Packet(flow_id=0, seq=0, size_bytes=100, sent_at=0.0)
        assert network.send_data(packet)
        assert got == [packet]

    def test_base_delay_math(self):
        sim, network, _, _ = make_network(n_hops=2)
        path = network.flows[0]
        forward = 2 * (0.01 + 1500 * 8 / 1e6)
        reverse = 0.01
        assert path.base_delay(1500, 40) == pytest.approx(
            forward + reverse)
