"""Unit and property tests for queue disciplines (drop-tail FIFO)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def make_packet(seq=0, size=1500, flow=0):
    return Packet(flow_id=flow, seq=seq, size_bytes=size, sent_at=0.0)


class TestDropTailBasics:
    def test_fifo_order(self):
        queue = DropTailQueue()
        for seq in range(5):
            assert queue.enqueue(make_packet(seq), now=0.0)
        out = [queue.dequeue(0.0).seq for _ in range(5)]
        assert out == [0, 1, 2, 3, 4]

    def test_dequeue_empty_returns_none(self):
        queue = DropTailQueue()
        assert queue.dequeue(0.0) is None

    def test_len_and_bytes_track_contents(self):
        queue = DropTailQueue()
        queue.enqueue(make_packet(0, size=100), 0.0)
        queue.enqueue(make_packet(1, size=200), 0.0)
        assert len(queue) == 2
        assert queue.byte_length == 300
        queue.dequeue(0.0)
        assert len(queue) == 1
        assert queue.byte_length == 200

    def test_packet_capacity_drops_arrivals(self):
        queue = DropTailQueue(capacity_packets=2)
        assert queue.enqueue(make_packet(0), 0.0)
        assert queue.enqueue(make_packet(1), 0.0)
        assert not queue.enqueue(make_packet(2), 0.0)
        assert len(queue) == 2
        assert queue.stats.dropped == 1

    def test_byte_capacity_drops_arrivals(self):
        queue = DropTailQueue(capacity_bytes=2000)
        assert queue.enqueue(make_packet(0, size=1500), 0.0)
        assert not queue.enqueue(make_packet(1, size=1500), 0.0)
        assert queue.enqueue(make_packet(2, size=400), 0.0)
        assert queue.byte_length == 1900

    def test_infinite_capacity_never_drops(self):
        queue = DropTailQueue()
        for seq in range(10_000):
            assert queue.enqueue(make_packet(seq, size=1), 0.0)
        assert queue.stats.dropped == 0
        assert len(queue) == 10_000

    def test_enqueue_stamps_time(self):
        queue = DropTailQueue()
        packet = make_packet(0)
        queue.enqueue(packet, now=3.25)
        assert packet.enqueued_at == 3.25

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0.5)

    def test_compaction_preserves_order(self):
        # Exercise the amortized head-compaction path.
        queue = DropTailQueue()
        for seq in range(500):
            queue.enqueue(make_packet(seq), 0.0)
        out = []
        for _ in range(400):
            out.append(queue.dequeue(0.0).seq)
        for seq in range(500, 600):
            queue.enqueue(make_packet(seq), 0.0)
        while len(queue):
            out.append(queue.dequeue(0.0).seq)
        assert out == list(range(600))


class TestOccupancyListener:
    def test_listener_sees_every_change(self):
        queue = DropTailQueue(capacity_packets=1)
        observed = []
        queue.occupancy_listener = lambda now, n: observed.append(n)
        queue.enqueue(make_packet(0), 0.0)
        queue.enqueue(make_packet(1), 0.0)   # dropped
        queue.dequeue(0.0)
        assert observed == [1, 1, 0]


class TestConservationProperty:
    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_counter_conservation(self, ops, capacity):
        queue = DropTailQueue(capacity_packets=capacity)
        seq = 0
        for op in ops:
            if op == "enq":
                queue.enqueue(make_packet(seq), 0.0)
                seq += 1
            else:
                queue.dequeue(0.0)
        stats = queue.stats
        assert stats.enqueued + stats.dropped == seq
        assert stats.resident == len(queue)
        assert 0 <= len(queue) <= capacity
        assert stats.bytes_enqueued == stats.enqueued * 1500

    @given(st.lists(st.integers(min_value=1, max_value=3000),
                    min_size=1, max_size=50))
    def test_byte_length_matches_contents(self, sizes):
        queue = DropTailQueue()
        for seq, size in enumerate(sizes):
            queue.enqueue(make_packet(seq, size=size), 0.0)
        total = sum(sizes)
        assert queue.byte_length == total
        drained = 0
        while len(queue):
            drained += queue.dequeue(0.0).size_bytes
        assert drained == total
        assert queue.byte_length == 0
