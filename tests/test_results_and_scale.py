"""Tests for result containers, ellipse summaries, and Scale budgets."""

import math

import pytest

from repro.core.results import FlowStats, RunResult, summarize_ellipse
from repro.core.scale import DEFAULT, FULL, QUICK, Scale
from repro.core.scenario import NetworkConfig


def make_flow(flow_id=0, kind="cubic", delivered=1_500_000, on_time=10.0,
              mean_delay=0.1, base_delay=0.075, delivered_packets=1000,
              sent=1010, rtx=10, timeouts=0):
    return FlowStats(
        flow_id=flow_id, kind=kind, delivered_bytes=delivered,
        on_time_s=on_time, mean_delay_s=mean_delay,
        base_delay_s=base_delay, base_rtt_s=base_delay * 2,
        packets_delivered=delivered_packets, packets_sent=sent,
        retransmissions=rtx, timeouts=timeouts)


class TestFlowStats:
    def test_throughput_definition(self):
        flow = make_flow(delivered=1_500_000, on_time=10.0)
        # 1.5 MB over 10 s of on-time = 1.2 Mbps.
        assert flow.throughput_bps == pytest.approx(1.2e6)

    def test_zero_on_time_throughput(self):
        assert make_flow(on_time=0.0).throughput_bps == 0.0

    def test_queueing_delay_subtracts_base(self):
        flow = make_flow(mean_delay=0.100, base_delay=0.075)
        assert flow.queueing_delay_s == pytest.approx(0.025)

    def test_queueing_delay_never_negative(self):
        flow = make_flow(mean_delay=0.05, base_delay=0.075)
        assert flow.queueing_delay_s == 0.0

    def test_loss_rate(self):
        flow = make_flow(delivered_packets=900, sent=1000)
        assert flow.loss_rate == pytest.approx(0.1)
        assert make_flow(sent=0).loss_rate == 0.0


class TestRunResult:
    def test_kind_filtering_and_means(self):
        result = RunResult(
            flows=[make_flow(0, "learner", delivered=3_000_000),
                   make_flow(1, "newreno", delivered=1_500_000)],
            seed=1, duration_s=10.0)
        assert len(result.flows_of_kind("learner")) == 1
        assert result.mean_throughput_bps("learner") \
            == pytest.approx(2.4e6)
        assert result.mean_throughput_bps() == pytest.approx(1.8e6)

    def test_empty_kind_is_zero(self):
        result = RunResult(flows=[make_flow()], seed=1, duration_s=10.0)
        assert result.mean_throughput_bps("vegas") == 0.0
        assert result.mean_delay_s("vegas") == 0.0


class TestEllipse:
    def test_median_and_std(self):
        point = summarize_ellipse([1e6, 2e6, 3e6], [0.1, 0.2, 0.3])
        assert point.median_throughput_bps == pytest.approx(2e6)
        assert point.median_delay_s == pytest.approx(0.2)
        assert point.std_delay_s > 0
        assert point.n_samples == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_ellipse([], [])
        with pytest.raises(ValueError):
            summarize_ellipse([1.0], [1.0, 2.0])

    def test_as_mbps(self):
        point = summarize_ellipse([2e6], [0.05])
        assert point.as_mbps() == (2.0, 0.05)


class TestScale:
    def test_duration_capped_by_packet_budget(self):
        scale = Scale(duration_s=60.0, packet_budget=30_000)
        fast = NetworkConfig(link_speeds_mbps=(1000.0,), rtt_ms=10.0)
        # 1000 Mbps ~= 83_333 pkts/s; 30k budget ~= 0.36 s, floored.
        duration = scale.duration_for(fast)
        assert duration == pytest.approx(scale.min_duration_s)

    def test_duration_full_for_slow_links(self):
        scale = Scale(duration_s=60.0, packet_budget=300_000)
        slow = NetworkConfig(link_speeds_mbps=(1.0,), rtt_ms=150.0)
        assert scale.duration_for(slow) == pytest.approx(60.0)

    def test_rtt_floor(self):
        scale = Scale(duration_s=60.0, packet_budget=100,
                      min_duration_s=1.0)
        config = NetworkConfig(link_speeds_mbps=(100.0,), rtt_ms=500.0)
        # At least 10 RTTs even when the budget says otherwise.
        assert scale.duration_for(config) >= 5.0

    def test_with_seeds(self):
        assert QUICK.with_seeds(7).n_seeds == 7
        assert QUICK.with_seeds(7).duration_s == QUICK.duration_s

    def test_preset_ordering(self):
        assert QUICK.packet_budget < DEFAULT.packet_budget \
            < FULL.packet_budget

    def test_named_lookup_is_the_single_registry(self):
        assert Scale.named("quick") is QUICK
        assert Scale.named("default") is DEFAULT
        assert Scale.named("full") is FULL
        assert set(Scale.names()) == {"quick", "default", "full"}
        with pytest.raises(ValueError):
            Scale.named("warp")
