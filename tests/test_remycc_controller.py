"""Tests for the RemyCC runtime controller."""

import pytest

from repro.protocols.base import AckContext
from repro.protocols.remycc import REMY_MAX_WINDOW, RemyCCController
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree


def ack(now=1.0, rtt=0.1, newly=1):
    return AckContext(now=now, rtt_sample=rtt, newly_acked=newly,
                      cum_ack=0, echo_sent_at=now - rtt,
                      receiver_time=now, in_recovery=False,
                      base_rtt=rtt)


def tree_with_action(action):
    tree = WhiskerTree(default_action=action)
    return tree


class TestActionApplication:
    def test_window_map_applied_per_ack(self):
        tree = tree_with_action(Action(1.0, 2.0, 0.001))
        cc = RemyCCController(tree, initial_window=1.0)
        cc.on_flow_start(0.0)
        cc.on_ack(ack(now=1.0))
        assert cc.window == pytest.approx(3.0)
        cc.on_ack(ack(now=1.1))
        assert cc.window == pytest.approx(5.0)

    def test_pacing_follows_action(self):
        tree = tree_with_action(Action(1.0, 1.0, 0.025))
        cc = RemyCCController(tree)
        assert cc.pacing_interval() == 0.0    # no ACK yet
        cc.on_ack(ack())
        assert cc.pacing_interval() == pytest.approx(0.025)

    def test_window_floor_and_cap(self):
        shrink = tree_with_action(Action(0.0, -10.0, 0.001))
        cc = RemyCCController(shrink, initial_window=5.0)
        cc.on_ack(ack())
        assert cc.window == 1.0
        grow = tree_with_action(Action(2.0, 32.0, 0.001))
        cc2 = RemyCCController(grow, initial_window=1.0)
        for k in range(100):
            cc2.on_ack(ack(now=1.0 + k * 0.01))
        assert cc2.window == REMY_MAX_WINDOW

    def test_fixed_point_convergence(self):
        tree = tree_with_action(Action(0.5, 8.0, 0.001))
        cc = RemyCCController(tree, initial_window=1.0)
        for k in range(100):
            cc.on_ack(ack(now=1.0 + k * 0.01))
        assert cc.window == pytest.approx(16.0, rel=1e-6)

    def test_dupacks_also_update(self):
        """RemyCC treats every ACK arrival alike (no loss rule)."""
        tree = tree_with_action(Action(1.0, 1.0, 0.001))
        cc = RemyCCController(tree, initial_window=1.0)
        cc.on_flow_start(0.0)
        cc.on_dupack(ack(now=1.0))
        assert cc.window == pytest.approx(2.0)


class TestLifecycle:
    def test_flow_start_resets_memory_and_window(self):
        tree = tree_with_action(Action(1.0, 1.0, 0.001))
        cc = RemyCCController(tree, initial_window=1.0)
        for k in range(10):
            cc.on_ack(ack(now=1.0 + k * 0.05))
        cc.on_flow_start(5.0)
        assert cc.window == 1.0
        assert cc.memory.vector() == (0.0, 0.0, 0.0, 1.0)

    def test_timeout_resets(self):
        tree = tree_with_action(Action(1.0, 4.0, 0.001))
        cc = RemyCCController(tree, initial_window=1.0)
        for k in range(10):
            cc.on_ack(ack(now=1.0 + k * 0.05))
        assert cc.window > 1.0
        cc.on_timeout(2.0)
        assert cc.window == 1.0
        assert cc.pacing_interval() == 0.0


class TestUsageRecording:
    def test_usage_recorded_when_enabled(self):
        tree = tree_with_action(Action(1.0, 1.0, 0.001))
        cc = RemyCCController(tree, record_usage=True)
        cc.on_ack(ack(now=1.0))
        cc.on_ack(ack(now=1.1))
        assert tree.whiskers()[0].use_count == 2

    def test_usage_not_recorded_by_default(self):
        tree = tree_with_action(Action(1.0, 1.0, 0.001))
        cc = RemyCCController(tree)
        cc.on_ack(ack())
        assert tree.whiskers()[0].use_count == 0

    def test_different_regimes_hit_different_whiskers(self):
        tree = WhiskerTree(default_action=Action(1.0, 1.0, 0.001))
        # Teach the root a realistic operating point so the split lands
        # between the two ACK-clock regimes below (an unused whisker
        # splits at its box centre, way out at 8 s).
        tree.whiskers()[0].record_use((0.5, 0.5, 0.5, 1.5))
        tree.split(tree.whiskers()[0])
        cc = RemyCCController(tree, record_usage=True)
        # Slow ACK clock, then a fast one: distinct rec_ewma regimes.
        now = 0.0
        for _ in range(30):
            now += 1.0
            cc.on_ack(ack(now=now, rtt=0.1))
        for _ in range(30):
            now += 0.001
            cc.on_ack(ack(now=now, rtt=0.1))
        used = [w for w in tree.whiskers() if w.use_count > 0]
        assert len(used) >= 2
