"""Tests for objective functions (paper Eq. 1 and the normalized form)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.objective import (DELAY_FLOOR_S, THROUGHPUT_FLOOR_BPS,
                                  Objective, mean_normalized_objective,
                                  normalized_objective)


class TestObjective:
    def test_score_formula(self):
        objective = Objective(delta=1.0)
        score = objective.score(2e6, 0.25)
        assert score == pytest.approx(math.log2(2e6) - math.log2(0.25))

    def test_delta_weighs_delay(self):
        """A delay-sensitive objective loses more when delay doubles."""
        tolerant = Objective(delta=0.1)
        sensitive = Objective(delta=10.0)
        tolerant_drop = tolerant.score(1e6, 0.5) - tolerant.score(1e6, 1.0)
        sensitive_drop = (sensitive.score(1e6, 0.5)
                          - sensitive.score(1e6, 1.0))
        assert sensitive_drop > tolerant_drop

    def test_doubling_throughput_adds_one_bit(self):
        objective = Objective()
        assert objective.score(2e6, 0.1) - objective.score(1e6, 0.1) \
            == pytest.approx(1.0)

    def test_halving_delay_adds_delta_bits(self):
        objective = Objective(delta=2.0)
        assert objective.score(1e6, 0.05) - objective.score(1e6, 0.1) \
            == pytest.approx(2.0)

    def test_zero_throughput_is_finite(self):
        objective = Objective()
        score = objective.score(0.0, 0.1)
        assert math.isfinite(score)
        assert score == objective.score(THROUGHPUT_FLOOR_BPS, 0.1)

    def test_zero_delay_is_finite(self):
        objective = Objective()
        assert math.isfinite(objective.score(1e6, 0.0))

    def test_total_sums_flows(self):
        objective = Objective()
        flows = [(1e6, 0.1), (2e6, 0.2)]
        assert objective.total(flows) == pytest.approx(
            objective.score(1e6, 0.1) + objective.score(2e6, 0.2))

    def test_proportional_fairness_tradeoff(self):
        """Halving one flow to more-than-double another wins (section 3.2)."""
        objective = Objective()
        before = objective.total([(4e6, 0.1), (1e6, 0.1)])
        after = objective.total([(2e6, 0.1), (2.5e6, 0.1)])
        assert after > before


class TestNormalizedObjective:
    def test_ideal_point_scores_zero(self):
        assert normalized_objective(16e6, 0.075, fair_share_bps=16e6,
                                    min_delay_s=0.075) == pytest.approx(0.0)

    def test_below_fair_share_negative(self):
        assert normalized_objective(8e6, 0.075, 16e6, 0.075) < 0

    def test_queueing_delay_penalized(self):
        assert normalized_objective(16e6, 0.150, 16e6, 0.075) < 0

    def test_delay_floored_at_min_delay(self):
        """Measured delay below the path floor cannot create a bonus."""
        value = normalized_objective(16e6, 0.001, 16e6, 0.075)
        assert value == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_objective(1e6, 0.1, 0.0, 0.075)
        with pytest.raises(ValueError):
            normalized_objective(1e6, 0.1, 1e6, 0.0)

    def test_mean_over_flows(self):
        flows = [(16e6, 0.075), (8e6, 0.075)]
        mean = mean_normalized_objective(flows, 16e6, 0.075)
        assert mean == pytest.approx(-0.5)
        with pytest.raises(ValueError):
            mean_normalized_objective([], 16e6, 0.075)

    @given(st.floats(min_value=1e3, max_value=1e9),
           st.floats(min_value=1e-3, max_value=10.0))
    def test_monotone_in_throughput_and_delay(self, tpt, delay):
        base = normalized_objective(tpt, delay, 1e6, 1e-3)
        assert normalized_objective(tpt * 2, delay, 1e6, 1e-3) > base
        assert normalized_objective(tpt, delay * 2, 1e6, 1e-3) < base
