"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Event, Simulator, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run(until=10.0)
        assert fired == ["early", "late", "last"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run(until=2.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(until=5.0)
        assert seen == [1.5]

    def test_clock_lands_on_until_even_if_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3]

    def test_events_beyond_until_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == []
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        event.cancel()
        sim.run(until=2.0)
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run(until=2.0)

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run(until=2.0)
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunUntilIdle:
    def test_drains_all_events(self):
        sim = Simulator()
        fired = []
        for k in range(3):
            sim.schedule(float(k), fired.append, k)
        sim.run_until_idle()
        assert fired == [0, 1, 2]

    def test_respects_max_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(100.0, fired.append, "b")
        sim.run_until_idle(max_time=10.0)
        assert fired == ["a"]


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(2.0)
        sim.run(until=10.0)
        assert hits == [2.0]
        assert not timer.pending

    def test_restart_supersedes(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(1.0)
        timer.restart(3.0)
        sim.run(until=10.0)
        assert hits == [3.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(1.0)
        timer.cancel()
        sim.run(until=10.0)
        assert hits == []

    def test_deadline_reporting(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.deadline is None
        timer.restart(4.0)
        assert timer.deadline == pytest.approx(4.0)

    def test_rearm_from_callback(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: None)

        def fire():
            hits.append(sim.now)
            if len(hits) < 3:
                timer.restart(1.0)

        timer._callback = fire
        timer.restart(1.0)
        sim.run(until=10.0)
        assert hits == [1.0, 2.0, 3.0]


class TestEventOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_any_schedule_order_fires_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=1001.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.booleans()), min_size=1, max_size=30))
    def test_cancellation_subset_fires(self, entries):
        sim = Simulator()
        fired = []
        events = []
        for delay, cancel in entries:
            event = sim.schedule(delay, lambda d=delay: fired.append(d))
            events.append((event, cancel))
        for event, cancel in events:
            if cancel:
                event.cancel()
        sim.run(until=101.0)
        expected = sorted(d for (d, c) in entries if not c)
        assert fired == expected
