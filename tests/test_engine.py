"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Event, Simulator, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run(until=10.0)
        assert fired == ["early", "late", "last"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run(until=2.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(until=5.0)
        assert seen == [1.5]

    def test_clock_lands_on_until_even_if_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3]

    def test_events_beyond_until_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == []
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        event.cancel()
        sim.run(until=2.0)
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run(until=2.0)

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run(until=2.0)
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunUntilIdle:
    def test_drains_all_events(self):
        sim = Simulator()
        fired = []
        for k in range(3):
            sim.schedule(float(k), fired.append, k)
        sim.run_until_idle()
        assert fired == [0, 1, 2]

    def test_respects_max_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(100.0, fired.append, "b")
        sim.run_until_idle(max_time=10.0)
        assert fired == ["a"]


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(2.0)
        sim.run(until=10.0)
        assert hits == [2.0]
        assert not timer.pending

    def test_restart_supersedes(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(1.0)
        timer.restart(3.0)
        sim.run(until=10.0)
        assert hits == [3.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: hits.append(sim.now))
        timer.restart(1.0)
        timer.cancel()
        sim.run(until=10.0)
        assert hits == []

    def test_deadline_reporting(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.deadline is None
        timer.restart(4.0)
        assert timer.deadline == pytest.approx(4.0)

    def test_rearm_from_callback(self):
        sim = Simulator()
        hits = []
        timer = Timer(sim, lambda: None)

        def fire():
            hits.append(sim.now)
            if len(hits) < 3:
                timer.restart(1.0)

        timer._callback = fire
        timer.restart(1.0)
        sim.run(until=10.0)
        assert hits == [1.0, 2.0, 3.0]


class TestScheduleCall:
    def test_interleaves_fifo_with_schedule(self):
        """Handle-free and handled events share one sequence counter,
        so same-time events fire in submission order regardless of API."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule_call(1.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "c")
        sim.schedule_call(1.0, fired.append, "d")
        sim.run(until=2.0)
        assert fired == ["a", "b", "c", "d"]

    def test_returns_no_handle(self):
        sim = Simulator()
        assert sim.schedule_call(1.0, lambda: None) is None

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_call(-0.5, lambda: None)

    def test_counts_toward_events_processed(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule_call(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_processed == 3

    def test_survives_compaction(self):
        """Compaction must keep handle-free entries (they can never be
        cancelled) while evicting dead handled ones."""
        sim = Simulator()
        fired = []
        sim.schedule_call(10.0, fired.append, "keep")
        dead = [sim.schedule(10.0, lambda: None) for _ in range(200)]
        for event in dead:
            event.cancel()
        sim.schedule(10.0, fired.append, "also")
        assert sim.pending_events == 2   # compaction ran on the push
        sim.run(until=11.0)
        assert fired == ["keep", "also"]


class TestEventOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_any_schedule_order_fires_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=1001.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.booleans()), min_size=1, max_size=30))
    def test_cancellation_subset_fires(self, entries):
        sim = Simulator()
        fired = []
        events = []
        for delay, cancel in entries:
            event = sim.schedule(delay, lambda d=delay: fired.append(d))
            events.append((event, cancel))
        for event, cancel in events:
            if cancel:
                event.cancel()
        sim.run(until=101.0)
        expected = sorted(d for (d, c) in entries if not c)
        assert fired == expected


class TestHeapCompaction:
    def test_cancelled_pending_tracks_cancellations(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        assert sim.cancelled_pending == 0
        for event in events[:4]:
            event.cancel()
        assert sim.cancelled_pending == 4

    def test_cancel_after_fire_does_not_drift_counter(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        event.cancel()     # already fired: must not count as pending
        assert sim.cancelled_pending == 0

    def test_compaction_evicts_dead_events(self):
        """Timer-heavy pattern: cancel most of the agenda, keep pushing."""
        sim = Simulator()
        events = [sim.schedule(10.0, lambda: None) for _ in range(200)]
        for event in events:
            event.cancel()
        assert sim.pending_events == 200
        # The next push sees cancelled > half the agenda and compacts.
        sim.schedule(10.0, lambda: None)
        assert sim.pending_events == 1
        assert sim.cancelled_pending == 0

    def test_small_agendas_are_left_alone(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(8)]
        for event in events:
            event.cancel()
        sim.schedule(1.0, lambda: None)
        # Below the compaction floor: lazily-cancelled events remain.
        assert sim.pending_events == 9

    def test_compaction_preserves_trajectory(self):
        """Same fire order and times with and without compaction churn."""

        def run(churn: bool):
            sim = Simulator()
            fired = []
            if churn:
                dead = [sim.schedule(50.0, lambda: None)
                        for _ in range(500)]
                for event in dead:
                    event.cancel()
            for k in range(20):
                sim.schedule(1.0 + k * 0.5,
                             lambda t=k: fired.append((sim.now, t)))
            sim.run(until=100.0)
            return fired

        assert run(churn=False) == run(churn=True)

    def test_restart_heavy_timer_agenda_stays_bounded(self):
        """A retransmission-style timer restarted per event should not
        let dead entries pile up past the compaction threshold."""
        sim = Simulator()
        timer = Timer(sim, lambda: None)

        def tick(step):
            timer.restart(10.0)          # cancels the previous deadline
            if step < 2000:
                sim.schedule(0.001, tick, step + 1)

        sim.schedule(0.0, tick, 0)
        sim.run(until=1.0)
        assert sim.pending_events < 200   # not ~2000 dead timer events

    def test_run_and_run_until_idle_share_semantics(self):
        def fill(sim, fired):
            for k in range(5):
                sim.schedule(float(k), fired.append, k)

        a, b = Simulator(), Simulator()
        fired_a, fired_b = [], []
        fill(a, fired_a)
        fill(b, fired_b)
        a.run(until=10.0)
        b.run_until_idle(max_time=10.0)
        assert fired_a == fired_b
        assert a.events_processed == b.events_processed
