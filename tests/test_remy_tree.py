"""Tests for actions, whiskers, and the whisker tree."""

import pytest
from hypothesis import given, strategies as st

from repro.remy.action import (DEFAULT_ACTION, MAX_INTERSEND_S,
                               MAX_WINDOW_INCREMENT, MAX_WINDOW_MULTIPLE,
                               MIN_INTERSEND_S, MIN_WINDOW_INCREMENT,
                               MIN_WINDOW_MULTIPLE, Action)
from repro.remy.memory import (SIGNAL_LOWER_BOUNDS, SIGNAL_UPPER_BOUNDS,
                               Memory)
from repro.remy.tree import WhiskerTree
from repro.remy.whisker import Whisker, full_domain

signal_vectors = st.tuples(
    st.floats(min_value=0.0, max_value=15.999),
    st.floats(min_value=0.0, max_value=15.999),
    st.floats(min_value=0.0, max_value=15.999),
    st.floats(min_value=1.0, max_value=63.999),
)


class TestAction:
    def test_clamping(self):
        wild = Action(window_multiple=99.0, window_increment=-999.0,
                      intersend_s=50.0)
        tame = wild.clamped()
        assert tame.window_multiple == MAX_WINDOW_MULTIPLE
        assert tame.window_increment == MIN_WINDOW_INCREMENT
        assert tame.intersend_s == MAX_INTERSEND_S

    def test_window_map(self):
        action = Action(0.5, 3.0, 0.001)
        assert action.apply_to_window(10.0) == pytest.approx(8.0)

    def test_fixed_point(self):
        """With m < 1 the per-ACK map converges to b / (1 - m)."""
        action = Action(0.9, 2.0, 0.001)
        window = 1.0
        for _ in range(500):
            window = action.apply_to_window(window)
        assert window == pytest.approx(2.0 / 0.1, rel=1e-3)

    def test_neighbors_move_one_dimension(self):
        action = Action(1.0, 1.0, 0.001)
        for neighbor in action.neighbors():
            differences = sum(
                1 for a, b in zip(action, neighbor)
                if abs(a - b) > 1e-12)
            assert differences == 1

    def test_neighbors_respect_bounds(self):
        corner = Action(MIN_WINDOW_MULTIPLE, MAX_WINDOW_INCREMENT,
                        MIN_INTERSEND_S)
        for neighbor in corner.neighbors(scale=10.0):
            assert MIN_WINDOW_MULTIPLE <= neighbor.window_multiple \
                <= MAX_WINDOW_MULTIPLE
            assert MIN_WINDOW_INCREMENT <= neighbor.window_increment \
                <= MAX_WINDOW_INCREMENT
            assert MIN_INTERSEND_S <= neighbor.intersend_s \
                <= MAX_INTERSEND_S

    def test_serialization_roundtrip(self):
        action = Action(0.75, -2.0, 0.0125)
        assert Action.from_dict(action.to_dict()) == action


class TestWhisker:
    def test_contains_half_open(self):
        lower, upper = full_domain()
        whisker = Whisker(lower, upper, DEFAULT_ACTION)
        assert whisker.contains((0.0, 0.0, 0.0, 1.0))
        assert not whisker.contains((16.0, 0.0, 0.0, 1.0))

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            Whisker((0, 0, 0, 1), (16, 0, 16, 64), DEFAULT_ACTION)

    def test_usage_statistics(self):
        lower, upper = full_domain()
        whisker = Whisker(lower, upper, DEFAULT_ACTION)
        whisker.record_use((1.0, 2.0, 3.0, 4.0))
        whisker.record_use((3.0, 4.0, 5.0, 6.0))
        assert whisker.use_count == 2
        assert whisker.mean_signals() == [2.0, 3.0, 4.0, 5.0]

    def test_split_point_defaults_to_centre(self):
        lower, upper = full_domain()
        whisker = Whisker(lower, upper, DEFAULT_ACTION)
        assert whisker.split_point(0) == pytest.approx(8.0)

    def test_split_point_uses_observed_mean(self):
        lower, upper = full_domain()
        whisker = Whisker(lower, upper, DEFAULT_ACTION)
        whisker.record_use((2.0, 1.0, 1.0, 2.0))
        assert whisker.split_point(0) == pytest.approx(2.0)


class TestWhiskerTree:
    def test_fresh_tree_has_one_whisker(self):
        tree = WhiskerTree()
        assert len(tree) == 1

    def test_lookup_returns_containing_whisker(self):
        tree = WhiskerTree()
        whisker = tree.lookup((1.0, 1.0, 1.0, 2.0))
        assert whisker.contains((1.0, 1.0, 1.0, 2.0))

    def test_split_produces_2_to_the_dims(self):
        tree = WhiskerTree()
        created = tree.split(tree.whiskers()[0])
        assert created == 16
        assert len(tree) == 16

    def test_masked_split_skips_knocked_out_signals(self):
        tree = WhiskerTree(mask=(True, False, False, False))
        created = tree.split(tree.whiskers()[0])
        assert created == 2
        assert len(tree) == 2
        # Both children span the full domain on the masked dimensions.
        for whisker in tree.whiskers():
            assert whisker.lower[1] == SIGNAL_LOWER_BOUNDS[1]
            assert whisker.upper[1] == SIGNAL_UPPER_BOUNDS[1]

    def test_mask_validation(self):
        with pytest.raises(ValueError):
            WhiskerTree(mask=(False, False, False, False))

    @given(signal_vectors)
    def test_partition_property_single_split(self, vector):
        """Every signal vector lands in exactly one whisker."""
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        matches = [w for w in tree.whiskers() if w.contains(vector)]
        assert len(matches) == 1
        assert tree.lookup(vector) is matches[0]

    @given(signal_vectors, signal_vectors)
    def test_partition_property_deep_tree(self, v1, v2):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        # Split the leaf containing v1 again for depth.
        tree.split(tree.lookup(v1))
        for vector in (v1, v2):
            matches = [w for w in tree.whiskers() if w.contains(vector)]
            assert len(matches) == 1
            assert tree.lookup(vector) is matches[0]

    def test_set_action_by_index(self):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        new_action = Action(0.5, 5.0, 0.002)
        tree.set_action(3, new_action)
        assert tree.whiskers()[3].action == new_action

    def test_serialization_roundtrip(self):
        tree = WhiskerTree(mask=(True, True, False, True))
        tree.split(tree.whiskers()[0])
        tree.set_action(2, Action(0.7, 3.0, 0.004))
        clone = WhiskerTree.from_json(tree.to_json())
        assert clone.to_json() == tree.to_json()
        assert clone.mask == tree.mask
        assert len(clone) == len(tree)

    def test_fingerprint_changes_with_action(self):
        tree = WhiskerTree()
        before = tree.fingerprint()
        tree.set_action(0, Action(0.5, 5.0, 0.002))
        assert tree.fingerprint() != before

    def test_clone_is_independent(self):
        tree = WhiskerTree()
        clone = tree.clone()
        clone.set_action(0, Action(0.5, 5.0, 0.002))
        assert tree.whiskers()[0].action == DEFAULT_ACTION

    def test_merge_stats(self):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        counts = [k for k in range(16)]
        sums = [[float(k)] * 4 for k in range(16)]
        tree.merge_stats(counts, sums)
        leaves = tree.whiskers()
        assert leaves[5].use_count == 5
        assert leaves[5].signal_sums == [5.0] * 4
        with pytest.raises(ValueError):
            tree.merge_stats([1], [[0.0] * 4])

    def test_most_used_whisker_selection(self):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        leaves = tree.whiskers()
        leaves[4].use_count = 10
        leaves[7].use_count = 30
        assert tree.most_used_whisker() is leaves[7]
        leaves[7].optimized = True
        assert tree.most_used_whisker(only_unoptimized=True) is leaves[4]

    def test_most_used_skips_unused_when_unoptimized(self):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        assert tree.most_used_whisker(only_unoptimized=True) is None


class TestTreeMemoryIntegration:
    def test_memory_vector_always_resolvable(self):
        tree = WhiskerTree()
        tree.split(tree.whiskers()[0])
        memory = Memory()
        now = 0.0
        for k in range(200):
            now += 0.013
            memory.on_ack(now, now - 0.1, 0.1 + (k % 7) * 0.01)
            assert tree.lookup(memory.vector()) is not None
