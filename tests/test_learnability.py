"""Tests for the learnability framework's gap metrics."""

import math

import pytest

from repro.core.learnability import (GapReport, LearnabilityCase,
                                     objective_gap, throughput_ratio,
                                     within_factor)
from repro.core.objective import Objective
from repro.core.scenario import NetworkConfig, ScenarioRange


class TestLearnabilityCase:
    def make_case(self):
        return LearnabilityCase(
            name="tao_10x",
            training=ScenarioRange(link_speed_mbps=(10.0, 100.0),
                                   rtt_ms=(150.0, 150.0),
                                   num_senders=(2, 2)),
            testing=[NetworkConfig(link_speeds_mbps=(s,), rtt_ms=150.0)
                     for s in (1.0, 32.0, 1000.0)])

    def test_in_training_range(self):
        case = self.make_case()
        inside = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0)
        outside_speed = NetworkConfig(link_speeds_mbps=(500.0,),
                                      rtt_ms=150.0)
        outside_rtt = NetworkConfig(link_speeds_mbps=(32.0,),
                                    rtt_ms=300.0)
        assert case.in_training_range(inside)
        assert not case.in_training_range(outside_speed)
        assert not case.in_training_range(outside_rtt)

    def test_boundary_is_inside(self):
        case = self.make_case()
        edge = NetworkConfig(link_speeds_mbps=(100.0,), rtt_ms=150.0)
        assert case.in_training_range(edge)

    def test_sender_count_check(self):
        case = self.make_case()
        crowded = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0,
                                sender_kinds=("learner",) * 10)
        assert not case.in_training_range(crowded)


class TestGapMetrics:
    def test_objective_gap_sign(self):
        objective = Objective()
        better = [(2e6, 0.1)]
        worse = [(1e6, 0.2)]
        assert objective_gap(objective, better, worse) > 0
        assert objective_gap(objective, worse, better) < 0
        assert objective_gap(objective, better, better) == 0.0

    def test_throughput_ratio(self):
        assert throughput_ratio(2e6, 1e6) == pytest.approx(2.0)
        assert throughput_ratio(1e6, 0.0) == math.inf
        assert throughput_ratio(0.0, 0.0) == 1.0

    def test_within_factor(self):
        assert within_factor(16e6, 15.5e6, 1.05)
        assert not within_factor(8e6, 16e6, 1.05)
        assert within_factor(8e6, 16e6, 2.0)
        with pytest.raises(ValueError):
            within_factor(1e6, 1e6, 0.5)

    def test_gap_report(self):
        report = GapReport(scheme="tao", throughput_bps=23e6,
                           delay_s=0.08,
                           vs_omniscient_throughput=23 / 24,
                           vs_accurate_objective=-0.1)
        assert report.throughput_within(0.05)
        assert not report.throughput_within(0.01)
