"""Window-dynamics tests for AIMD, NewReno, and Cubic controllers.

These drive controllers with synthetic ACK contexts — no network — so
each assertion isolates one rule of the algorithm.
"""

import pytest

from repro.protocols.aimd import AimdController
from repro.protocols.base import AckContext
from repro.protocols.cubic import CubicController
from repro.protocols.newreno import NewRenoController


def ack(now=1.0, rtt=0.1, newly=1, in_recovery=False, base_rtt=0.1):
    return AckContext(now=now, rtt_sample=rtt, newly_acked=newly,
                      cum_ack=0, echo_sent_at=now - rtt,
                      receiver_time=now, in_recovery=in_recovery,
                      base_rtt=base_rtt)


class TestAimd:
    def test_slow_start_doubles_per_rtt(self):
        cc = AimdController(initial_window=2.0)
        cc.on_flow_start(0.0)
        cc.on_ack(ack(newly=2))
        assert cc.window == pytest.approx(4.0)

    def test_congestion_avoidance_linear(self):
        cc = AimdController(initial_window=10.0, use_slow_start=False)
        cc.on_flow_start(0.0)
        window = cc.window
        # One full window of ACKs ~= +increase packets.
        for _ in range(10):
            cc.on_ack(ack(newly=1))
        assert cc.window == pytest.approx(window + 1.0, rel=0.02)

    def test_loss_halves_window(self):
        cc = AimdController(initial_window=16.0, use_slow_start=False)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        assert cc.window == pytest.approx(8.0)

    def test_custom_decrease_factor(self):
        cc = AimdController(decrease=0.8, initial_window=10.0,
                            use_slow_start=False)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        assert cc.window == pytest.approx(8.0)

    def test_timeout_resets_to_one(self):
        cc = AimdController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc.on_timeout(1.0)
        assert cc.window == 1.0
        assert cc.ssthresh == pytest.approx(10.0)

    def test_no_growth_during_recovery(self):
        cc = AimdController(initial_window=10.0, use_slow_start=False)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        window = cc.window
        cc.on_ack(ack(in_recovery=True))
        assert cc.window == window

    def test_window_floor(self):
        cc = AimdController(initial_window=2.0, use_slow_start=False)
        cc.on_flow_start(0.0)
        for _ in range(10):
            cc.on_loss(1.0)
        assert cc.window >= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AimdController(decrease=1.5)
        with pytest.raises(ValueError):
            AimdController(increase=0.0)

    def test_persistent_across_on_periods(self):
        cc = AimdController(initial_window=2.0)
        cc.on_flow_start(0.0)
        cc.on_ack(ack(newly=10))
        grown = cc.window
        cc.on_flow_start(5.0)      # second on-period: state persists
        assert cc.window == grown

    def test_reset_each_on_option(self):
        cc = AimdController(initial_window=2.0, reset_each_on=True)
        cc.on_flow_start(0.0)
        cc.on_ack(ack(newly=10))
        cc.on_flow_start(5.0)
        assert cc.window == 2.0


class TestNewReno:
    def test_slow_start_then_avoidance(self):
        cc = NewRenoController(initial_window=2.0)
        cc.on_flow_start(0.0)
        cc.ssthresh = 8.0
        for _ in range(6):
            cc.on_ack(ack(newly=1))
        # 2 -> 8 in slow start, then linear.
        assert 8.0 <= cc.window < 9.0

    def test_loss_sets_half(self):
        cc = NewRenoController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc.ssthresh = 1.0   # force congestion avoidance
        cc.on_loss(1.0)
        assert cc.window == pytest.approx(10.0)
        assert cc.ssthresh == pytest.approx(10.0)

    def test_recovery_holds_window(self):
        cc = NewRenoController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        window = cc.window
        cc.on_ack(ack(newly=3, in_recovery=True))
        assert cc.window == window

    def test_recovery_exit_deflates(self):
        cc = NewRenoController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        cc.on_recovery_exit(ack(newly=5))
        assert cc.window == pytest.approx(cc.ssthresh)

    def test_timeout(self):
        cc = NewRenoController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc.on_timeout(1.0)
        assert cc.window == 1.0


class TestCubic:
    def test_slow_start_without_delay_rise(self):
        cc = CubicController(initial_window=2.0)
        cc.on_flow_start(0.0)
        cc.on_ack(ack(rtt=0.1, base_rtt=0.1, newly=2))
        assert cc.window == pytest.approx(4.0)

    def test_hystart_exits_on_delay_rise(self):
        cc = CubicController(initial_window=2.0)
        cc.on_flow_start(0.0)
        base = 0.1
        # Round 1: baseline RTTs near the floor.
        now = 0.0
        for _ in range(10):
            cc.on_ack(ack(now=now, rtt=base, base_rtt=base))
            now += 0.01
        # Round 2: RTT has risen 50 ms above the floor.
        now = 0.2
        for _ in range(10):
            cc.on_ack(ack(now=now, rtt=base + 0.05, base_rtt=base))
            now += 0.01
        # A third round confirms and exits slow start.
        now = 0.5
        for _ in range(10):
            cc.on_ack(ack(now=now, rtt=base + 0.05, base_rtt=base))
            now += 0.01
        assert cc.ssthresh < float("inf")

    def test_loss_multiplies_by_beta(self):
        cc = CubicController(initial_window=100.0)
        cc.on_flow_start(0.0)
        cc.ssthresh = 1.0
        cc.on_loss(1.0)
        assert cc.window == pytest.approx(70.0)

    def test_fast_convergence_shrinks_wmax(self):
        cc = CubicController(initial_window=100.0, fast_convergence=True)
        cc.on_flow_start(0.0)
        cc.ssthresh = 1.0
        cc.on_loss(1.0)        # w_max = 100
        cc.on_loss(2.0)        # window 70 < w_max: fast convergence
        assert cc._w_max == pytest.approx(70.0 * (1.0 + 0.7) / 2.0)

    def test_concave_growth_toward_wmax(self):
        """After a loss, an ACK-clocked window climbs back toward W_max
        with shrinking per-RTT growth (the concave region)."""
        cc = CubicController(initial_window=100.0, hystart=False)
        cc.on_flow_start(0.0)
        cc.ssthresh = 1.0     # force CA
        cc.on_loss(0.0)
        rtt = 0.1
        now = 0.0
        per_rtt_growth = []
        for _ in range(20):                     # 20 RTTs = 2 s < K
            start_window = cc.window
            for _ in range(int(cc.window)):      # one ACK per in-flight pkt
                cc.on_ack(ack(now=now, rtt=rtt, base_rtt=rtt))
            now += rtt
            per_rtt_growth.append(cc.window - start_window)
        assert cc.window > 70.0                  # grew back from beta*W_max
        assert cc.window <= 101.0                # but not past W_max + eps
        early = sum(per_rtt_growth[:5])
        late = sum(per_rtt_growth[-5:])
        assert late < early                      # concave approach

    def test_timeout_resets(self):
        cc = CubicController(initial_window=50.0)
        cc.on_flow_start(0.0)
        cc.on_timeout(1.0)
        assert cc.window == 1.0

    def test_tcp_friendly_region_dominates_at_small_windows(self):
        """With a tiny W_max, the Reno-tracking estimate keeps growth at
        least linear instead of the cubic plateau."""
        cc = CubicController(initial_window=4.0, hystart=False)
        cc.on_flow_start(0.0)
        cc.ssthresh = 1.0
        cc.on_loss(0.0)
        start = cc.window
        now = 0.0
        for _ in range(400):
            now += 0.01
            cc.on_ack(ack(now=now, rtt=0.1, base_rtt=0.1))
        assert cc.window > start + 2.0
