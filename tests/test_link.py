"""Tests for links: serialization timing, propagation, delivery."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def make_packet(seq=0, size=1500):
    return Packet(flow_id=0, seq=seq, size_bytes=size, sent_at=0.0)


def collecting_link(sim, rate_bps, delay_s, queue=None):
    link = Link(sim, rate_bps, delay_s, queue=queue)
    deliveries = []
    link.deliver = lambda pkt: deliveries.append((sim.now, pkt.seq))
    return link, deliveries


class TestSerialization:
    def test_single_packet_timing(self):
        sim = Simulator()
        # 1500 bytes at 1 Mbps = 12 ms; plus 10 ms propagation.
        link, deliveries = collecting_link(sim, 1e6, 0.010)
        link.send(make_packet(0))
        sim.run(until=1.0)
        assert deliveries == [(pytest.approx(0.022), 0)]

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6, 0.0)
        link.send(make_packet(0))
        link.send(make_packet(1))
        sim.run(until=1.0)
        times = [t for t, _ in deliveries]
        assert times[0] == pytest.approx(0.012)
        assert times[1] == pytest.approx(0.024)

    def test_infinite_rate_is_instant(self):
        sim = Simulator()
        link, deliveries = collecting_link(sim, math.inf, 0.005)
        link.send(make_packet(0))
        sim.run(until=1.0)
        assert deliveries[0][0] == pytest.approx(0.005)

    def test_transmission_time_helper(self):
        sim = Simulator()
        link = Link(sim, 8e6, 0.0)
        assert link.transmission_time(1000) == pytest.approx(0.001)
        assert Link(sim, math.inf, 0.0).transmission_time(1000) == 0.0

    def test_throughput_matches_rate(self):
        """A saturated 1 Mbps link forwards ~1 Mbps of packets."""
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6, 0.0)
        n = 200
        for seq in range(n):
            link.send(make_packet(seq))
        sim.run(until=n * 0.012 + 1.0)
        assert len(deliveries) == n
        elapsed = deliveries[-1][0]
        bits = n * 1500 * 8
        assert bits / elapsed == pytest.approx(1e6, rel=0.01)


class TestQueueInteraction:
    def test_drops_at_full_queue(self):
        sim = Simulator()
        queue = DropTailQueue(capacity_packets=2)
        link, deliveries = collecting_link(sim, 1e6, 0.0, queue=queue)
        results = [link.send(make_packet(seq)) for seq in range(5)]
        # First enters service immediately, two queue, rest dropped.
        assert results == [True, True, True, False, False]
        sim.run(until=1.0)
        assert len(deliveries) == 3

    def test_idle_link_restarts_after_drain(self):
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6, 0.0)
        link.send(make_packet(0))
        sim.run(until=0.1)
        assert not link.busy
        link.send(make_packet(1))
        sim.run(until=0.2)
        assert len(deliveries) == 2

    def test_stats_accumulate(self):
        sim = Simulator()
        link, _ = collecting_link(sim, 1e6, 0.0)
        for seq in range(3):
            link.send(make_packet(seq))
        sim.run(until=1.0)
        assert link.stats.packets_forwarded == 3
        assert link.stats.bytes_forwarded == 3 * 1500
        assert link.stats.utilization(1e6, 1.0) == pytest.approx(0.036)


class TestSynchronousDeliveryBound:
    def test_deep_synchronous_relay_chain_is_bounded(self):
        """All-instant zero-delay loops must iterate, not recurse.

        Every hop direct-calls delivery, and an endpoint that responds
        by sending again re-enters Link.send one level deeper — without
        the sync-depth bound this overflows the C stack after a few
        hundred turnarounds (the eager design iterated through the
        agenda).  The bound converts deep chains back to agenda
        iteration, so the whole exchange still completes at t=0."""
        from repro.sim.network import Network

        sim = Simulator()
        net = Network(sim)
        fwd = net.add_link(Link(sim, math.inf, 0.0, name="fwd"))
        rev = net.add_link(Link(sim, math.inf, 0.0, name="rev"))
        net.add_flow(0, [fwd], [rev])
        turnarounds = []
        n = 500   # ~10 frames per synchronous turnaround if unbounded

        def on_data(packet):
            net.send_ack(packet.into_ack(packet.seq + 1, sim.now))

        def on_ack(packet):
            turnarounds.append(packet.seq)
            net.pool.release(packet)
            if len(turnarounds) < n:
                net.send_data(net.pool.acquire(0, len(turnarounds),
                                               1500, sim.now))

        net.attach_receiver(0, on_data)
        net.attach_sender(0, on_ack)
        net.send_data(net.pool.acquire(0, 0, 1500, 0.0))
        sim.run_until_idle(max_time=1.0)
        assert len(turnarounds) == n


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), -1.0, 0.0)

    def test_zero_rate_is_a_legal_down_state(self):
        # The outage/blackout state: constructible, never serializes.
        import math
        link = Link(Simulator(), 0.0, 0.0)
        assert link.down
        assert math.isinf(link.transmission_time(1500))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), 1e6, -1.0)

    def test_unconnected_link_raises_on_delivery(self):
        sim = Simulator()
        link = Link(sim, 1e6, 0.0)
        link.send(make_packet(0))
        with pytest.raises(RuntimeError):
            sim.run(until=1.0)
