"""Tests for TCP Vegas: unit window dynamics plus the classic squeeze.

The squeeze test is the paper's section 4.5 story: Vegas thrives
against itself but is starved by loss-driven TCP on a shared drop-tail
queue — the behaviour the TCP-naive Tao reproduces in Figure 7.
"""

import pytest

from repro.core.scale import Scale
from repro.core.scenario import NetworkConfig
from repro.experiments.common import run_seeds
from repro.protocols.base import AckContext
from repro.protocols.vegas import VegasController


def ack(now, rtt, newly=1, in_recovery=False):
    return AckContext(now=now, rtt_sample=rtt, newly_acked=newly,
                      cum_ack=0, echo_sent_at=now - rtt,
                      receiver_time=now, in_recovery=in_recovery,
                      base_rtt=rtt)


def drive_rounds(cc, rtt, rounds, acks_per_round=None):
    now = 0.0
    for _ in range(rounds):
        count = acks_per_round or max(int(cc.window), 1)
        for _ in range(count):
            cc.on_ack(ack(now=now, rtt=rtt))
        now += rtt


class TestVegasWindow:
    def test_slow_start_doubles_every_other_round(self):
        cc = VegasController(initial_window=2.0)
        cc.on_flow_start(0.0)
        drive_rounds(cc, rtt=0.1, rounds=4)
        # Two of the four rounds double: 2 -> 4 -> 8.
        assert cc.window == pytest.approx(8.0)

    def test_low_queue_grows_linearly(self):
        cc = VegasController(initial_window=10.0)
        cc.on_flow_start(0.0)
        cc._in_slow_start = False
        cc.base_rtt = 0.100
        # rtt == base: diff = 0 < alpha, grow by one per round.
        drive_rounds(cc, rtt=0.100, rounds=5)
        assert cc.window == pytest.approx(15.0, abs=1.0)

    def test_standing_queue_shrinks_window(self):
        cc = VegasController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc._in_slow_start = False
        cc.base_rtt = 0.100
        # 25% RTT inflation: diff = 0.25 * window = 5 > beta.
        drive_rounds(cc, rtt=0.125, rounds=5)
        assert cc.window < 20.0

    def test_equilibrium_band_holds_window(self):
        cc = VegasController(initial_window=20.0)
        cc.on_flow_start(0.0)
        cc._in_slow_start = False
        cc.base_rtt = 0.100
        # diff = window * (1 - 100/110) ~= 1.8 packets: inside [1, 3].
        drive_rounds(cc, rtt=0.110, rounds=5)
        assert cc.window == pytest.approx(20.0, abs=1.0)

    def test_loss_reduces_gently(self):
        cc = VegasController(initial_window=16.0)
        cc.on_flow_start(0.0)
        cc.on_loss(1.0)
        assert cc.window == pytest.approx(12.0)   # x0.75, not x0.5

    def test_timeout_restarts(self):
        cc = VegasController(initial_window=16.0)
        cc.on_flow_start(0.0)
        cc.on_timeout(1.0)
        assert cc.window == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VegasController(alpha=3.0, beta=1.0)


class TestVegasSqueeze:
    SCALE = Scale(duration_s=20.0, packet_budget=40_000, n_seeds=2)

    def _run(self, kinds):
        config = NetworkConfig(
            link_speeds_mbps=(10.0,), rtt_ms=100.0, sender_kinds=kinds,
            mean_on_s=50.0, mean_off_s=0.0, buffer_bdp=2.0)
        runs = run_seeds(config, scale=self.SCALE)
        means = {}
        for kind in set(kinds):
            flows = [f for r in runs for f in r.flows if f.kind == kind]
            means[kind] = {
                "tpt": sum(f.throughput_bps for f in flows) / len(flows),
                "qdelay": sum(f.queueing_delay_s for f in flows)
                / len(flows),
            }
        return means

    def test_vegas_alone_has_low_delay(self):
        """Homogeneous Vegas: high utilization, tiny standing queue."""
        means = self._run(("vegas", "vegas"))
        assert means["vegas"]["tpt"] > 3.5e6          # ~fair share
        assert means["vegas"]["qdelay"] < 0.030       # delay-based calm

    def test_vegas_squeezed_by_newreno(self):
        """The section 4.5 squeeze: loss-driven TCP starves Vegas."""
        means = self._run(("vegas", "newreno"))
        assert means["newreno"]["tpt"] > 1.5 * means["vegas"]["tpt"], (
            "NewReno should squeeze Vegas well below its fair share")

    def test_newreno_fills_queue_vegas_does_not(self):
        alone = self._run(("vegas", "vegas"))["vegas"]["qdelay"]
        reno = self._run(("newreno", "newreno"))["newreno"]["qdelay"]
        assert reno > 3 * alone + 0.005
