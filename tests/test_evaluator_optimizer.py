"""Tests for the Remy tree evaluator and optimizer (serial, tiny)."""

import pytest

from repro.core.scale import Scale
from repro.core.scenario import ScenarioRange
from repro.remy.action import Action
from repro.remy.evaluator import EvalSettings, TreeEvaluator, run_training_task
from repro.remy.optimizer import OptimizerSettings, RemyOptimizer
from repro.remy.tree import WhiskerTree

TINY = EvalSettings(
    n_configs=2, sim_seeds=(1,),
    scale=Scale(duration_s=4.0, packet_budget=6_000, min_duration_s=2.0))

RANGE = ScenarioRange(link_speed_mbps=(8.0, 16.0), rtt_ms=(100.0, 100.0),
                      num_senders=(1, 2), buffer_bdp=5.0)


class TestRunTrainingTask:
    def test_returns_finite_score(self):
        tree = WhiskerTree()
        config = RANGE.sample_many(1, seed=1)[0]
        score, counts, sums = run_training_task(
            tree.to_json(), None, config.to_dict(), seed=1,
            duration=4.0, record_usage=True)
        assert score == score   # not NaN
        assert len(counts) == len(tree)
        assert sum(counts) > 0

    def test_usage_skipped_when_disabled(self):
        tree = WhiskerTree()
        config = RANGE.sample_many(1, seed=1)[0]
        _, counts, sums = run_training_task(
            tree.to_json(), None, config.to_dict(), seed=1,
            duration=4.0, record_usage=False)
        assert counts == [] and sums == []

    def test_peer_tree_accepted(self):
        tree = WhiskerTree()
        peer = WhiskerTree(default_action=Action(0.5, 4.0, 0.01))
        mixed = ScenarioRange(
            link_speed_mbps=(8.0, 8.0), rtt_ms=(100.0, 100.0),
            sender_mixes=(("learner", "peer"),), buffer_bdp=5.0)
        config = mixed.sample_many(1, seed=1)[0]
        score, _, _ = run_training_task(
            tree.to_json(), peer.to_json(), config.to_dict(), seed=1,
            duration=4.0, record_usage=False)
        assert score == score


class TestTreeEvaluator:
    def test_deterministic_scores(self):
        tree = WhiskerTree()
        first = TreeEvaluator(RANGE, TINY).evaluate(tree)
        second = TreeEvaluator(RANGE, TINY).evaluate(tree)
        assert first.score == second.score

    def test_usage_merged_into_tree(self):
        tree = WhiskerTree()
        evaluator = TreeEvaluator(RANGE, TINY)
        evaluator.evaluate(tree, record_usage=True)
        assert tree.whiskers()[0].use_count > 0

    def test_batch_matches_single(self):
        evaluator = TreeEvaluator(RANGE, TINY)
        tree_a = WhiskerTree()
        tree_b = WhiskerTree(default_action=Action(0.6, 8.0, 0.002))
        single_a = evaluator.evaluate(tree_a).score
        single_b = evaluator.evaluate(tree_b).score
        batch = evaluator.evaluate_batch([tree_a, tree_b])
        assert batch == pytest.approx([single_a, single_b])

    def test_batch_caching_avoids_resimulation(self):
        evaluator = TreeEvaluator(RANGE, TINY)
        tree = WhiskerTree()
        evaluator.evaluate_batch([tree])
        count = evaluator.evaluations
        evaluator.evaluate_batch([tree])     # cache hit
        assert evaluator.evaluations == count

    def test_better_action_scores_better(self):
        """A sane rate-matching rule beats a pathological one."""
        evaluator = TreeEvaluator(RANGE, TINY)
        sane = WhiskerTree(default_action=Action(1.0, 1.0, 1e-4))
        # Pathological: window pinned at 1 and pacing of 1 s per packet.
        crippled = WhiskerTree(default_action=Action(0.0, 1.0, 1.0))
        scores = evaluator.evaluate_batch([sane, crippled])
        assert scores[0] > scores[1]


class TestOptimizer:
    def test_training_improves_or_holds_score(self):
        optimizer = RemyOptimizer(
            RANGE, TINY,
            OptimizerSettings(generations=1, max_action_steps=2,
                              neighbor_scales=(1.0,)))
        tree, log = optimizer.train()
        assert len(log.scores) >= 1
        assert log.scores[-1] >= log.scores[0] - 1e-9
        assert log.evaluations > 0
        assert log.wall_time_s > 0

    def test_generations_grow_the_tree(self):
        optimizer = RemyOptimizer(
            RANGE, TINY,
            OptimizerSettings(generations=1, max_action_steps=1,
                              neighbor_scales=(1.0,)))
        tree, log = optimizer.train()
        assert log.tree_sizes[-1] > log.tree_sizes[0]

    def test_time_budget_respected(self):
        optimizer = RemyOptimizer(
            RANGE, TINY,
            OptimizerSettings(generations=50, max_action_steps=50,
                              time_budget_s=3.0))
        import time
        started = time.monotonic()
        optimizer.train()
        # Budget plus one generation's slack, not 50 generations.
        assert time.monotonic() - started < 60.0

    def test_mask_restricts_split_dims(self):
        optimizer = RemyOptimizer(
            RANGE, TINY,
            OptimizerSettings(generations=1, max_action_steps=1,
                              neighbor_scales=(1.0,)))
        tree, _ = optimizer.train(WhiskerTree(mask=(True, False,
                                                    False, False)))
        assert len(tree) <= 3   # binary splits only on one dim
