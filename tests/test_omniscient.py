"""Tests for the omniscient bound and the proportional-fair solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.omniscient import (dumbbell_expected_throughput,
                                   omniscient_dumbbell,
                                   omniscient_for_config,
                                   omniscient_parking_lot,
                                   parking_lot_allocation,
                                   proportional_fair_allocation)
from repro.core.scenario import NetworkConfig


class TestPfSolver:
    def test_single_link_equal_split(self):
        rates = proportional_fair_allocation([[1, 1, 1]], [30e6])
        assert rates == pytest.approx([10e6, 10e6, 10e6], rel=1e-4)

    def test_independent_links(self):
        rates = proportional_fair_allocation(
            [[1, 0], [0, 1]], [10e6, 20e6])
        assert rates == pytest.approx([10e6, 20e6], rel=1e-4)

    def test_parking_lot_closed_form(self):
        """Symmetric parking lot (C1 = C2 = C): the PF solution gives the
        crossing flow C/3 and each one-hop flow 2C/3."""
        c = 30e6
        rates = proportional_fair_allocation(
            [[1, 1, 0], [1, 0, 1]], [c, c])
        assert rates[0] == pytest.approx(c / 3, rel=1e-3)
        assert rates[1] == pytest.approx(2 * c / 3, rel=1e-3)
        assert rates[2] == pytest.approx(2 * c / 3, rel=1e-3)

    def test_feasibility_and_saturation(self):
        matrix = [[1, 1, 0], [1, 0, 1]]
        caps = [50e6, 30e6]
        rates = proportional_fair_allocation(matrix, caps)
        loads = np.asarray(matrix) @ rates
        assert np.all(loads <= np.asarray(caps) * (1 + 1e-6))
        # PF saturates every constraint that binds some flow; with these
        # routes both links are fully used.
        assert loads == pytest.approx(caps, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportional_fair_allocation([[1.0]], [0.0])
        with pytest.raises(ValueError):
            proportional_fair_allocation([[0.0]], [1e6])
        with pytest.raises(ValueError):
            proportional_fair_allocation([[1, 0]], [1e6, 2e6])

    @given(st.floats(min_value=1e6, max_value=1e9),
           st.floats(min_value=1e6, max_value=1e9))
    @settings(max_examples=20, deadline=None)
    def test_parking_lot_dual_feasibility(self, c1, c2):
        rates = proportional_fair_allocation(
            [[1, 1, 0], [1, 0, 1]], [c1, c2])
        assert rates[0] + rates[1] <= c1 * (1 + 1e-5)
        assert rates[0] + rates[2] <= c2 * (1 + 1e-5)
        assert np.all(rates > 0)


class TestDumbbellClosedForm:
    def test_single_always_on_sender(self):
        assert dumbbell_expected_throughput(32e6, 1, 1.0) \
            == pytest.approx(32e6)

    def test_two_half_duty_senders(self):
        # E = C (1 - (1-p)^n) / (n p) with n=2, p=0.5: C * 0.75.
        assert dumbbell_expected_throughput(32e6, 2, 0.5) \
            == pytest.approx(24e6)

    def test_matches_binomial_sum(self):
        """Closed form equals the explicit binomial expectation."""
        from math import comb
        c, n, p = 15e6, 7, 0.3
        explicit = sum(
            comb(n - 1, k) * p ** k * (1 - p) ** (n - 1 - k) * c / (k + 1)
            for k in range(n))
        assert dumbbell_expected_throughput(c, n, p) \
            == pytest.approx(explicit)

    def test_more_senders_less_throughput(self):
        values = [dumbbell_expected_throughput(32e6, n, 0.5)
                  for n in (1, 2, 5, 20, 100)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            dumbbell_expected_throughput(32e6, 0, 0.5)
        with pytest.raises(ValueError):
            dumbbell_expected_throughput(32e6, 2, 0.0)

    def test_omniscient_dumbbell_delay_is_propagation(self):
        config = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0,
                               sender_kinds=("learner", "learner"))
        flows = omniscient_dumbbell(config)
        assert len(flows) == 2
        for flow in flows:
            assert flow.delay_s == pytest.approx(0.075)
            assert flow.throughput_bps == pytest.approx(24e6)


class TestParkingLotOmniscient:
    def test_allocation_subsets(self):
        speeds = (30e6, 30e6)
        alone = parking_lot_allocation(speeds, [0])
        assert alone[0] == pytest.approx(30e6, rel=1e-3)
        pair = parking_lot_allocation(speeds, [0, 1])
        assert pair[0] + pair[1] <= 30e6 * (1 + 1e-6)
        assert parking_lot_allocation(speeds, []) == {}

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            parking_lot_allocation((30e6, 30e6), [5])

    def test_expected_throughputs_always_on(self):
        """p_on = 1 reduces to the static PF allocation."""
        flows = omniscient_parking_lot((30e6, 30e6), p_on=1.0)
        assert flows[0].throughput_bps == pytest.approx(10e6, rel=1e-3)
        assert flows[1].throughput_bps == pytest.approx(20e6, rel=1e-3)
        assert flows[2].throughput_bps == pytest.approx(20e6, rel=1e-3)

    def test_delays_match_hops(self):
        flows = omniscient_parking_lot((30e6, 30e6), p_on=0.5,
                                       rtt_single_hop_s=0.150)
        assert flows[0].delay_s == pytest.approx(0.150)   # two hops
        assert flows[1].delay_s == pytest.approx(0.075)
        assert flows[2].delay_s == pytest.approx(0.075)

    def test_low_duty_cycle_approaches_solo_rates(self):
        flows = omniscient_parking_lot((30e6, 30e6), p_on=0.01)
        # With others almost never on, each flow nearly gets its solo max.
        assert flows[0].throughput_bps > 0.95 * 30e6


class TestDispatch:
    def test_dumbbell_config(self):
        config = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0)
        flows = omniscient_for_config(config)
        assert len(flows) == config.num_senders

    def test_parking_lot_config(self):
        config = NetworkConfig(
            topology="parking_lot", link_speeds_mbps=(50.0, 30.0),
            rtt_ms=150.0,
            sender_kinds=("learner", "learner", "learner"))
        flows = omniscient_for_config(config)
        assert len(flows) == 3
        assert flows[0].delay_s == pytest.approx(0.150)
