"""Tests for network configs and training scenario distributions."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scenario import NetworkConfig, ScenarioRange


class TestNetworkConfig:
    def test_defaults_are_calibrationish(self):
        config = NetworkConfig()
        assert config.num_senders == 2
        assert config.p_on == pytest.approx(0.5)
        assert config.fair_share_bps() == pytest.approx(16e6)

    def test_deltas_default_to_ones(self):
        config = NetworkConfig(sender_kinds=("learner",) * 3)
        assert config.deltas == (1.0, 1.0, 1.0)

    def test_buffer_in_packets_from_bdp(self):
        config = NetworkConfig(link_speeds_mbps=(32.0,), rtt_ms=150.0,
                               buffer_bdp=5.0)
        # BDP = 400 packets; 5 BDP = 2000.
        assert config.buffer_packets() == 2000

    def test_buffer_bytes_override(self):
        config = NetworkConfig(buffer_bytes=250_000.0, buffer_bdp=5.0)
        assert config.buffer_packets() == 250_000 // 1500

    def test_infinite_buffer(self):
        config = NetworkConfig(buffer_bdp=None)
        assert math.isinf(config.buffer_packets())

    def test_parking_lot_needs_three_senders(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="parking_lot",
                          link_speeds_mbps=(10.0, 10.0),
                          sender_kinds=("learner", "learner"))

    def test_parking_lot_needs_two_speeds(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="parking_lot",
                          link_speeds_mbps=(10.0,),
                          sender_kinds=("a", "b", "c"))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="star")
        with pytest.raises(ValueError):
            NetworkConfig(link_speeds_mbps=(-1.0,))
        with pytest.raises(ValueError):
            NetworkConfig(rtt_ms=-1.0)
        # Zero RTT is legal: it pins the zero-delay-hop fast path.
        assert NetworkConfig(rtt_ms=0.0).rtt_ms == 0.0
        with pytest.raises(ValueError):
            NetworkConfig(sender_kinds=())
        with pytest.raises(ValueError):
            NetworkConfig(queue="red")
        with pytest.raises(ValueError):
            NetworkConfig(deltas=(1.0,))  # misaligned with 2 senders
        with pytest.raises(ValueError):
            NetworkConfig(mean_on_s=0.0)

    def test_serialization_roundtrip(self):
        config = NetworkConfig(
            topology="parking_lot", link_speeds_mbps=(50.0, 30.0),
            rtt_ms=150.0, sender_kinds=("learner", "aimd", "cubic"),
            deltas=(0.1, 1.0, 1.0), mean_on_s=5.0, mean_off_s=0.01,
            buffer_bdp=None, buffer_bytes=250_000.0, queue="sfq_codel")
        clone = NetworkConfig.from_dict(config.to_dict())
        assert clone == config

    def test_with_senders(self):
        config = NetworkConfig()
        mixed = config.with_senders(("learner", "aimd"))
        assert mixed.sender_kinds == ("learner", "aimd")
        assert mixed.deltas == (1.0, 1.0)


class TestScenarioRange:
    def test_sample_within_bounds(self):
        scenario_range = ScenarioRange(
            link_speed_mbps=(1.0, 1000.0), rtt_ms=(50.0, 250.0),
            num_senders=(1, 10))
        rng = random.Random(42)
        for _ in range(100):
            config = scenario_range.sample(rng)
            assert 1.0 <= config.link_speeds_mbps[0] <= 1000.0
            assert 50.0 <= config.rtt_ms <= 250.0
            assert 1 <= config.num_senders <= 10
            assert all(kind == "learner"
                       for kind in config.sender_kinds)

    def test_log_uniform_speed_sampling(self):
        """Median of log-uniform(1, 1000) is near the geometric mean 32."""
        scenario_range = ScenarioRange(link_speed_mbps=(1.0, 1000.0))
        rng = random.Random(7)
        speeds = sorted(scenario_range.sample(rng).link_speeds_mbps[0]
                        for _ in range(2000))
        median = speeds[len(speeds) // 2]
        assert 20.0 < median < 50.0

    def test_sender_mixes(self):
        scenario_range = ScenarioRange(
            sender_mixes=(("learner", "learner"), ("learner", "aimd")))
        rng = random.Random(3)
        seen = {scenario_range.sample(rng).sender_kinds
                for _ in range(50)}
        assert seen == {("learner", "learner"), ("learner", "aimd")}

    def test_onoff_options(self):
        scenario_range = ScenarioRange(
            onoff_options=((5.0, 5.0), (5.0, 0.01)))
        rng = random.Random(3)
        seen = {(c.mean_on_s, c.mean_off_s)
                for c in (scenario_range.sample(rng) for _ in range(50))}
        assert seen == {(5.0, 5.0), (5.0, 0.01)}

    def test_deltas_assigned_by_role(self):
        scenario_range = ScenarioRange(
            sender_mixes=(("learner", "peer", "aimd"),),
            learner_delta=0.1, peer_delta=10.0)
        config = scenario_range.sample(random.Random(1))
        assert config.deltas == (0.1, 10.0, 1.0)

    def test_sample_many_deterministic(self):
        scenario_range = ScenarioRange(link_speed_mbps=(1.0, 100.0))
        first = scenario_range.sample_many(5, seed=9)
        second = scenario_range.sample_many(5, seed=9)
        assert first == second
        assert scenario_range.sample_many(5, seed=10) != first

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioRange(link_speed_mbps=(10.0, 1.0))
        with pytest.raises(ValueError):
            ScenarioRange(rtt_ms=(0.0, 100.0))
        with pytest.raises(ValueError):
            ScenarioRange(num_senders=(5, 2))
        with pytest.raises(ValueError):
            ScenarioRange(sender_mixes=())

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_samples_always_valid_configs(self, seed):
        scenario_range = ScenarioRange(
            topology="parking_lot", link_speed_mbps=(10.0, 100.0),
            rtt_ms=(150.0, 150.0),
            sender_mixes=(("learner", "learner", "learner"),))
        config = scenario_range.sample(random.Random(seed))
        assert config.topology == "parking_lot"
        assert len(config.link_speeds_mbps) == 2
