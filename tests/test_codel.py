"""Tests for the CoDel AQM state machine and queue."""

import pytest

from repro.sim.codel import CODEL_INTERVAL, CODEL_TARGET, CoDelQueue, CoDelState
from repro.sim.packet import Packet


def make_packet(seq=0, size=1500):
    return Packet(flow_id=0, seq=seq, size_bytes=size, sent_at=0.0)


class TestCoDelState:
    def test_below_target_never_drops(self):
        state = CoDelState()
        for k in range(100):
            packet = make_packet(k)
            packet.enqueued_at = k * 0.01
            now = k * 0.01 + CODEL_TARGET / 2
            assert not state.should_drop(packet, now, False)
        assert not state.dropping

    def test_short_excursion_above_target_tolerated(self):
        # Sojourn above target for less than one interval: no drops.
        state = CoDelState()
        packet = make_packet(0)
        packet.enqueued_at = 0.0
        assert not state.should_drop(packet, 0.02, False)
        packet2 = make_packet(1)
        packet2.enqueued_at = 0.0
        # Still inside the first interval window.
        assert not state.should_drop(packet2, 0.05, False)

    def test_standing_queue_enters_drop_state(self):
        state = CoDelState()
        dropped = 0
        # Sojourn time persistently 50 ms (10x target).
        time = 0.0
        for k in range(400):
            packet = make_packet(k)
            packet.enqueued_at = time - 0.050
            if state.should_drop(packet, time, False):
                dropped += 1
            time += 0.005
        assert dropped > 0
        assert state.dropping

    def test_drop_rate_accelerates(self):
        state = CoDelState()
        drop_times = []
        time = 0.0
        for k in range(2000):
            packet = make_packet(k)
            packet.enqueued_at = time - 0.050
            if state.should_drop(packet, time, False):
                drop_times.append(time)
            time += 0.002
        assert len(drop_times) >= 3
        gaps = [b - a for a, b in zip(drop_times, drop_times[1:])]
        # The control law sqrt schedule shrinks successive gaps.
        assert gaps[-1] < gaps[0]

    def test_draining_queue_exits_drop_state(self):
        state = CoDelState()
        time = 0.0
        for k in range(300):
            packet = make_packet(k)
            packet.enqueued_at = time - 0.050
            state.should_drop(packet, time, False)
            time += 0.005
        assert state.dropping
        # Low-sojourn packet exits dropping.
        packet = make_packet(999)
        packet.enqueued_at = time - 0.001
        assert not state.should_drop(packet, time, True)
        assert not state.dropping


class TestCoDelQueue:
    def test_light_load_passes_through(self):
        queue = CoDelQueue()
        for seq in range(10):
            queue.enqueue(make_packet(seq), now=seq * 0.1)
        out = []
        for seq in range(10):
            packet = queue.dequeue(now=seq * 0.1 + 0.001)
            out.append(packet.seq)
        assert out == list(range(10))
        assert queue.stats.dropped == 0

    def test_persistent_queue_is_controlled(self):
        queue = CoDelQueue()
        # Feed faster than drain for a sustained period.
        now = 0.0
        seq = 0
        drained = 0
        for step in range(4000):
            now = step * 0.001
            queue.enqueue(make_packet(seq), now)
            seq += 1
            if step % 2 == 0:   # drain at half the arrival rate
                if queue.dequeue(now) is not None:
                    drained += 1
        assert queue.stats.dropped > 0
        stats = queue.stats
        assert stats.enqueued == stats.dequeued + stats.dropped + len(queue)

    def test_capacity_overflow_counts_drops(self):
        queue = CoDelQueue(capacity_packets=2)
        assert queue.enqueue(make_packet(0), 0.0)
        assert queue.enqueue(make_packet(1), 0.0)
        assert not queue.enqueue(make_packet(2), 0.0)
        assert queue.stats.dropped == 1

    def test_custom_target_and_interval(self):
        queue = CoDelQueue(target=0.001, interval=0.01)
        assert queue.codel.target == pytest.approx(0.001)
        assert queue.codel.interval == pytest.approx(0.01)

    def test_dequeue_empty(self):
        queue = CoDelQueue()
        assert queue.dequeue(1.0) is None
