"""Tests for the RemyCC congestion-signal memory (paper section 3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.remy.memory import (SIGNAL_LOWER_BOUNDS, SIGNAL_UPPER_BOUNDS,
                               Memory)


class TestEwmaUpdates:
    def test_initial_state(self):
        memory = Memory()
        assert memory.vector() == (0.0, 0.0, 0.0, 1.0)

    def test_first_interarrival_seeds_both_ewmas(self):
        memory = Memory()
        memory.on_ack(now=1.00, echo_sent_at=0.9, rtt_sample=0.1)
        memory.on_ack(now=1.05, echo_sent_at=0.95, rtt_sample=0.1)
        vector = memory.vector()
        assert vector[0] == pytest.approx(0.05)
        assert vector[1] == pytest.approx(0.05)

    def test_fast_ewma_converges_faster_than_slow(self):
        memory = Memory()
        time = 0.0
        # Establish a 100 ms interarrival baseline...
        for _ in range(10):
            memory.on_ack(time, time - 0.1, 0.1)
            time += 0.1
        # ...then switch to 10 ms arrivals.
        for _ in range(30):
            memory.on_ack(time, time - 0.1, 0.1)
            time += 0.01
        rec, slow_rec, _, _ = memory.vector()
        assert rec < slow_rec   # the 1/8 gain tracked the change faster

    def test_ewma_gain_is_one_eighth(self):
        memory = Memory()
        memory.on_ack(0.0, -0.1, 0.1)
        memory.on_ack(0.1, 0.0, 0.1)       # seeds rec_ewma = 0.1
        memory.on_ack(0.3, 0.2, 0.1)       # sample 0.2
        expected = 0.1 + (0.2 - 0.1) / 8.0
        assert memory.vector()[0] == pytest.approx(expected)

    def test_send_ewma_uses_echoed_timestamps(self):
        memory = Memory()
        memory.on_ack(1.0, 0.50, 0.1)
        memory.on_ack(1.1, 0.53, 0.1)      # intersend 30 ms
        assert memory.vector()[2] == pytest.approx(0.03)

    def test_rtt_ratio_tracks_minimum(self):
        memory = Memory()
        memory.on_ack(1.0, 0.9, rtt_sample=0.2)
        assert memory.vector()[3] == pytest.approx(1.0)
        memory.on_ack(2.0, 1.9, rtt_sample=0.1)   # new minimum
        assert memory.vector()[3] == pytest.approx(1.0)
        memory.on_ack(3.0, 2.9, rtt_sample=0.3)
        assert memory.vector()[3] == pytest.approx(3.0)

    def test_reset_forgets_everything(self):
        memory = Memory()
        for k in range(5):
            memory.on_ack(k * 0.1, k * 0.1 - 0.05, 0.2)
        memory.reset()
        assert memory.vector() == (0.0, 0.0, 0.0, 1.0)
        assert memory.min_rtt == float("inf")


class TestClipping:
    def test_vector_always_inside_domain(self):
        memory = Memory()
        memory.on_ack(0.0, -100.0, 1000.0)
        memory.on_ack(100.0, 0.0, 1e-9)
        memory.on_ack(300.0, 200.0, 5000.0)
        vector = memory.vector()
        for value, low, high in zip(vector, SIGNAL_LOWER_BOUNDS,
                                    SIGNAL_UPPER_BOUNDS):
            assert low <= value < high

    @given(st.lists(st.tuples(
        st.floats(min_value=1e-4, max_value=5.0),     # interarrival gap
        st.floats(min_value=1e-4, max_value=5.0)),    # rtt sample
        min_size=1, max_size=60))
    def test_domain_invariant_property(self, steps):
        memory = Memory()
        now = 0.0
        for gap, rtt in steps:
            now += gap
            memory.on_ack(now, now - rtt, rtt)
            vector = memory.vector()
            for value, low, high in zip(vector, SIGNAL_LOWER_BOUNDS,
                                        SIGNAL_UPPER_BOUNDS):
                assert low <= value < high

    def test_negative_intersend_ignored(self):
        """Out-of-order echoes (impossible on FIFO paths, but guard)."""
        memory = Memory()
        memory.on_ack(1.0, 0.9, 0.1)
        memory.on_ack(1.1, 0.5, 0.1)   # echo went backwards
        assert memory.vector()[2] == 0.0
