"""Tests for stochastic fair queueing with per-bucket CoDel."""

import pytest

from repro.sim.packet import Packet
from repro.sim.sfq_codel import SfqCoDelQueue


def make_packet(flow, seq, size=1500):
    return Packet(flow_id=flow, seq=seq, size_bytes=size, sent_at=0.0)


class TestSfqScheduling:
    def test_single_flow_fifo(self):
        queue = SfqCoDelQueue()
        for seq in range(5):
            queue.enqueue(make_packet(0, seq), 0.0)
        out = [queue.dequeue(0.0).seq for _ in range(5)]
        assert out == [0, 1, 2, 3, 4]

    def test_two_flows_interleaved(self):
        """A backlogged pair of flows should share dequeues evenly."""
        queue = SfqCoDelQueue()
        for seq in range(20):
            queue.enqueue(make_packet(0, seq), 0.0)
            queue.enqueue(make_packet(1, seq), 0.0)
        first_20 = [queue.dequeue(0.0).flow_id for _ in range(20)]
        # DRR with a 1-MTU quantum alternates between the two buckets.
        assert first_20.count(0) == pytest.approx(10, abs=1)
        assert first_20.count(1) == pytest.approx(10, abs=1)

    def test_fairness_with_unequal_backlogs(self):
        """A heavy flow cannot crowd out a light one."""
        queue = SfqCoDelQueue()
        for seq in range(100):
            queue.enqueue(make_packet(0, seq), 0.0)
        for seq in range(10):
            queue.enqueue(make_packet(1, seq), 0.0)
        served = [queue.dequeue(0.0).flow_id for _ in range(20)]
        # Flow 1 gets roughly half the service while backlogged.
        assert served.count(1) >= 8

    def test_dequeue_empty(self):
        queue = SfqCoDelQueue()
        assert queue.dequeue(0.0) is None

    def test_total_counters(self):
        queue = SfqCoDelQueue()
        for seq in range(7):
            queue.enqueue(make_packet(seq % 3, seq), 0.0)
        assert len(queue) == 7
        drained = 0
        while queue.dequeue(0.0) is not None:
            drained += 1
        assert drained == 7
        assert len(queue) == 0
        assert queue.byte_length == 0


class TestSfqOverflow:
    def test_overflow_drops_from_longest_bucket(self):
        queue = SfqCoDelQueue(capacity_packets=10)
        # Flow 0 hogs the buffer.
        for seq in range(10):
            queue.enqueue(make_packet(0, seq), 0.0)
        # Flow 1's arrival overflows; the drop must hit flow 0's bucket.
        queue.enqueue(make_packet(1, 0), 0.0)
        assert queue.stats.dropped == 1
        assert len(queue) == 10
        flows = []
        while True:
            packet = queue.dequeue(0.0)
            if packet is None:
                break
            flows.append(packet.flow_id)
        assert 1 in flows   # the light flow's packet survived

    def test_conservation_with_overflow(self):
        queue = SfqCoDelQueue(capacity_packets=5)
        for seq in range(50):
            queue.enqueue(make_packet(seq % 4, seq), 0.0)
        stats = queue.stats
        assert stats.enqueued == 50
        assert stats.enqueued - stats.dropped == len(queue)


class TestSfqCodelIntegration:
    def test_standing_queue_gets_codel_drops(self):
        queue = SfqCoDelQueue()
        now = 0.0
        seq = 0
        for step in range(6000):
            now = step * 0.001
            queue.enqueue(make_packet(0, seq), now)
            seq += 1
            if step % 2 == 0:
                queue.dequeue(now)
        assert queue.stats.dropped > 0

    def test_isolated_flow_unaffected_by_bulk(self):
        """CoDel state is per-bucket: a sparse flow sees no drops even
        while a bulk flow is being CoDel-dropped."""
        queue = SfqCoDelQueue()
        now = 0.0
        bulk_seq = 0
        sparse_seq = 0
        sparse_delivered = 0
        for step in range(6000):
            now = step * 0.001
            queue.enqueue(make_packet(0, bulk_seq), now)
            bulk_seq += 1
            if step % 100 == 0:
                queue.enqueue(make_packet(1, sparse_seq), now)
                sparse_seq += 1
            if step % 2 == 0:
                packet = queue.dequeue(now)
                if packet is not None and packet.flow_id == 1:
                    sparse_delivered += 1
        # Every sparse packet (modulo the tail still queued) is delivered.
        assert sparse_delivered >= sparse_seq - 2

    def test_bucket_count_validation(self):
        with pytest.raises(ValueError):
            SfqCoDelQueue(n_buckets=0)

    def test_deterministic_bucket_assignment(self):
        queue_a = SfqCoDelQueue(n_buckets=16)
        queue_b = SfqCoDelQueue(n_buckets=16)
        assert (queue_a._bucket_for(123).index
                == queue_b._bucket_for(123).index)
