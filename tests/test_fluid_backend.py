"""The vectorized fluid backend: fidelity, properties, and screening.

Three contracts, each load-bearing for a different consumer:

* **Cross-validation** — every golden packet scenario, re-run on the
  fluid backend, must land inside a committed per-scenario relative
  error band on per-flow mean throughput and mean delay.  The bands
  are the observed calibration errors plus headroom, ceilinged at the
  10% fidelity target docs/PERFORMANCE.md records; anyone changing
  the fluid integrator re-earns these bands, not just "close enough".
* **Physics properties** — results no fluid-model refactor may break:
  throughput monotone in link rate, and delivered bytes bounded by
  bottleneck capacity, across queue disciplines.
* **Screen-then-confirm** — when training screens candidates on the
  fluid backend, the batch argmax must still be a genuine packet-engine
  score, and seed-batched fluid runs must be bitwise identical to solo
  runs (the executor determinism contract extended to grouping).
"""

import dataclasses

import pytest

from test_golden_traces import SCENARIOS

from repro.core.scenario import NetworkConfig
from repro.exec import SimTask, run_sim_task, run_task_group
from repro.remy.action import Action
from repro.remy.evaluator import TreeEvaluator
from repro.remy.optimizer import OptimizerSettings, RemyOptimizer
from repro.remy.tree import WhiskerTree
from repro.sim.fluid import simulate_fluid

from test_evaluator_optimizer import RANGE, TINY

#: name -> (throughput band, delay band): max |fluid - packet| / packet
#: over the scenario's flows.  Committed from the calibration pass that
#: landed the backend (worst observed: -6.4% throughput, +5.6% delay);
#: every band stays at or under the 10% target.
TOLERANCE = {
    "calibration":   (0.090, 0.020),
    "link_speed":    (0.090, 0.020),
    "multiplexing":  (0.090, 0.030),
    "rtt":           (0.040, 0.020),
    "structure":     (0.060, 0.030),
    "tcp_awareness": (0.070, 0.070),
    "diversity":     (0.090, 0.020),
    "signals":       (0.070, 0.020),
    "api":           (0.030, 0.030),
    "zero_delay":    (0.030, 0.080),
    "sfq_codel":     (0.080, 0.060),
    # Outage dynamics sit outside the 10% static-fidelity target: the
    # fluid blackout approximations (nominal-inverse delay pricing and
    # step-grid window edges — see docs/PERFORMANCE.md) cost ~12% on
    # the bursty learner flow.  Band widened accordingly, knowingly.
    "outage_blackout": (0.150, 0.030),
    # The DCTCP fluid port marks with a per-step threshold indicator,
    # not per-packet CE bits, so on a 2 s slow-start transient the cut
    # timing (and which flow grabs the early share) lands ~14-16% off
    # the packet engine — see docs/PERFORMANCE.md ("When not to trust
    # it").  Bands widened accordingly, knowingly.
    "ecn":       (0.060, 0.200),
    "dctcp_ecn": (0.200, 0.120),
}

#: Golden packet scenarios the fluid backend *refuses* (packet-only
#: dynamics features).  ``test_packet_only_scenarios_refused_by_name``
#: pins the refusal and its message.
FLUID_UNSUPPORTED = {"rtt_jitter", "pcc_dumbbell"}


def _fluid_twin(task: SimTask) -> SimTask:
    """The same simulation on the fluid backend (usage recording off:
    the fluid model has no per-whisker instrumentation)."""
    return dataclasses.replace(task, backend="fluid",
                               record_usage=False)


def _rel(fluid: float, packet: float, floor: float) -> float:
    return abs(fluid - packet) / max(abs(packet), floor)


class TestCrossValidation:
    @pytest.mark.parametrize("name", sorted(TOLERANCE))
    def test_within_band(self, name):
        tput_tol, delay_tol = TOLERANCE[name]
        packet = run_sim_task(SCENARIOS[name]).run
        fluid = run_sim_task(_fluid_twin(SCENARIOS[name])).run
        assert len(fluid.flows) == len(packet.flows)
        for pf, ff in zip(packet.flows, fluid.flows):
            # Floors keep an idle flow (nothing delivered on either
            # backend) from dividing by ~zero.
            tput = _rel(ff.throughput_bps, pf.throughput_bps, 1e3)
            delay = _rel(ff.mean_delay_s, pf.mean_delay_s, 1e-4)
            assert tput <= tput_tol, (
                f"{name} flow{pf.flow_id} ({pf.kind}): throughput "
                f"{pf.throughput_bps:.0f} -> {ff.throughput_bps:.0f} "
                f"bps, error {tput:.1%} > {tput_tol:.1%}")
            assert delay <= delay_tol, (
                f"{name} flow{pf.flow_id} ({pf.kind}): delay "
                f"{pf.mean_delay_s * 1e3:.2f} -> "
                f"{ff.mean_delay_s * 1e3:.2f} ms, "
                f"error {delay:.1%} > {delay_tol:.1%}")

    def test_every_golden_scenario_has_a_band(self):
        """A new golden scenario must bring its cross-validation band
        along (fluid-native scenarios have nothing to validate against,
        and packet-only dynamics scenarios must be declared in
        FLUID_UNSUPPORTED instead)."""
        packet = {name for name, task in SCENARIOS.items()
                  if task.backend == "packet"}
        assert packet == set(TOLERANCE) | FLUID_UNSUPPORTED
        assert not set(TOLERANCE) & FLUID_UNSUPPORTED

    @pytest.mark.parametrize("name", sorted(FLUID_UNSUPPORTED))
    def test_packet_only_scenarios_refused_by_name(self, name):
        """Rebuilding a packet-only scenario on the fluid backend must
        fail at build time with the offending feature named."""
        task = SCENARIOS[name]
        with pytest.raises(ValueError, match="packet-only"):
            SimTask.build(task.config, trees=dict(task.trees),
                          seed=task.seed, duration_s=task.duration_s,
                          backend="fluid")


def _dumbbell(rate, kinds, buffer_bdp=5.0, queue="droptail"):
    return NetworkConfig(
        link_speeds_mbps=(rate,), rtt_ms=100.0, sender_kinds=kinds,
        mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=buffer_bdp,
        queue=queue)


class TestFluidProperties:
    def test_throughput_monotone_in_link_rate(self):
        """Same workload, faster bottleneck: never fewer bytes out."""
        totals = []
        for rate in (2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
            run = simulate_fluid(
                _dumbbell(rate, ("newreno", "newreno")),
                seeds=(1,), duration_s=4.0)[0]
            totals.append(sum(f.delivered_bytes for f in run.flows))
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]   # and it actually uses the rate

    @pytest.mark.parametrize("queue", ["droptail", "codel", "sfq_codel"])
    def test_delivered_bytes_bounded_by_capacity(self, queue):
        """Byte conservation: the bottleneck cannot be beaten."""
        rate, duration = 15.0, 4.0
        run = simulate_fluid(
            _dumbbell(rate, ("cubic",) * 6, buffer_bdp=2.0,
                      queue=queue),
            seeds=(3,), duration_s=duration)[0]
        delivered_bits = sum(f.delivered_bytes for f in run.flows) * 8
        assert 0 < delivered_bits <= rate * 1e6 * duration * (1 + 1e-9)


def _flows_key(result):
    return [(f.kind, f.delivered_bytes, f.on_time_s, f.mean_delay_s,
             f.packets_delivered) for f in result.run.flows]


class TestSeedBatching:
    def test_grouped_seeds_match_solo_runs_bitwise(self):
        """run_task_group folds same-config fluid tasks into one array
        program; batch invariance makes that fold invisible."""
        config = _dumbbell(10.0, ("learner", "cubic"))
        tree = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))
        tasks = [SimTask.build(config, trees={"learner": tree},
                               seed=seed, duration_s=2.0,
                               backend="fluid")
                 for seed in (1, 2, 3, 4)]
        grouped = run_task_group(tasks)
        solo = [run_sim_task(task) for task in tasks]
        assert [_flows_key(r) for r in grouped] \
            == [_flows_key(r) for r in solo]


class TestScreenThenConfirm:
    def _candidates(self):
        return [WhiskerTree(default_action=Action(m, b, tau))
                for m, b, tau in ((1.0, 1.0, 1e-4), (0.8, 4.0, 0.002),
                                  (0.6, 8.0, 0.002), (0.0, 1.0, 1.0))]

    def test_batch_argmax_is_packet_exact(self):
        """Whatever screening returns for the winner must equal the
        packet engine's score for that tree — the optimizer adopts on
        packet evidence only."""
        trees = self._candidates()
        screened = TreeEvaluator(RANGE, TINY, screen="fluid",
                                 confirm_top=1)
        exact = TreeEvaluator(RANGE, TINY)
        scores = screened.evaluate_batch(trees)
        packet = exact.evaluate_batch(trees)
        best = max(range(len(trees)), key=scores.__getitem__)
        assert scores[best] == packet[best]
        # ... and the winner is the same tree the packet engine picks.
        assert best == max(range(len(trees)), key=packet.__getitem__)

    def test_confirmation_expands_past_confirm_top(self):
        """Every candidate whose fluid score still beats the best
        confirmed packet score gets packet-confirmed too, so a fluid
        overestimate can never hand an unconfirmed tree the argmax."""
        trees = self._candidates()
        evaluator = TreeEvaluator(RANGE, TINY, screen="fluid",
                                  confirm_top=1)
        scores = evaluator.evaluate_batch(trees)
        packet = TreeEvaluator(RANGE, TINY).evaluate_batch(trees)
        best = max(packet)
        for score, exact in zip(scores, packet):
            if score >= best:
                assert score == exact

    def test_screened_training_final_tree_confirmed_on_packet(self):
        """A quick screened training run must report a final score the
        packet engine stands behind for the tree it returns."""
        settings = OptimizerSettings(generations=0, max_action_steps=1,
                                     neighbor_scales=(1.0,))
        optimizer = RemyOptimizer(RANGE, TINY, settings,
                                  screen="fluid", confirm_top=2)
        tree, log = optimizer.train()
        exact = TreeEvaluator(RANGE, TINY).evaluate(tree).score
        assert log.final_score == pytest.approx(exact)

    def test_invalid_screen_rejected(self):
        with pytest.raises(ValueError):
            TreeEvaluator(RANGE, TINY, screen="warp")
