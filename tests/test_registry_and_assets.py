"""Tests for the scheme registry, asset store, and the Tao catalog."""

import pytest

from repro.protocols.aimd import AimdController
from repro.protocols.cubic import CubicController
from repro.protocols.newreno import NewRenoController
from repro.protocols.registry import (available_schemes, make_controller,
                                      register_scheme)
from repro.protocols.remycc import RemyCCController
from repro.remy.action import Action
from repro.remy.assets import (asset_dir, available_assets,
                               load_asset_metadata, load_tree, save_asset)
from repro.remy.catalog import CATALOG, COOPT_PAIRS, knockout_mask
from repro.remy.memory import SIGNAL_NAMES
from repro.remy.tree import WhiskerTree


class TestRegistry:
    def test_builtin_schemes(self):
        assert isinstance(make_controller("cubic"), CubicController)
        assert isinstance(make_controller("newreno"), NewRenoController)
        assert isinstance(make_controller("aimd"), AimdController)

    def test_fresh_instance_each_call(self):
        assert make_controller("cubic") is not make_controller("cubic")

    def test_tao_requires_tree(self):
        with pytest.raises(ValueError):
            make_controller("tao")
        tree = WhiskerTree()
        controller = make_controller("tao", tree=tree)
        assert isinstance(controller, RemyCCController)
        assert controller.tree is tree

    def test_unknown_scheme(self):
        # dctcp/pcc joined the registry in the ECN PR, so the canonical
        # unknown name must be something no scheme will ever claim.
        with pytest.raises(ValueError, match="unknown scheme"):
            make_controller("not_a_scheme")

    def test_custom_registration(self):
        register_scheme("myaimd", lambda: AimdController(increase=2.0))
        controller = make_controller("myaimd")
        assert controller.increase == 2.0
        assert "myaimd" in available_schemes()


class TestAssets:
    def test_save_and_load_roundtrip(self, tmp_path):
        tree = WhiskerTree(default_action=Action(0.8, 3.0, 0.002))
        path = save_asset("test_tao", tree,
                          training_range={"link_speed_mbps": [1, 10]},
                          log={"scores": [1.0, 2.0]},
                          directory=tmp_path)
        assert path.is_file()
        import json
        with open(path) as handle:
            data = json.load(handle)
        assert data["name"] == "test_tao"
        loaded = WhiskerTree.from_dict(data["tree"])
        assert loaded.to_json() == tree.to_json()

    def test_load_missing_asset(self):
        with pytest.raises(FileNotFoundError, match="no asset named"):
            load_tree("definitely_not_an_asset")

    def test_shipped_assets_load(self):
        """Every trained asset on disk parses into a usable tree."""
        for name in available_assets():
            tree = load_tree(name)
            assert len(tree) >= 1
            vector = (0.01, 0.01, 0.01, 1.5)
            assert tree.lookup(vector) is not None
            metadata = load_asset_metadata(name)
            assert metadata["name"] == name

    def test_asset_dir_exists(self):
        assert asset_dir().name == "assets"


class TestCatalog:
    def test_catalog_covers_every_paper_table(self):
        tables = {spec.paper_table for spec in CATALOG.values()}
        for expected in ("Table 1", "Table 2a", "Table 3a", "Table 4a",
                         "Table 5", "Table 6a", "Table 7a",
                         "Section 3.4"):
            assert expected in tables

    def test_speed_ranges_match_paper(self):
        assert CATALOG["tao_1000x"].training.link_speed_mbps \
            == (1.0, 1000.0)
        assert CATALOG["tao_2x"].training.link_speed_mbps == (22.0, 44.0)

    def test_mux_ranges_match_paper(self):
        assert CATALOG["tao_mux_1_100"].training.num_senders == (1, 100)
        assert CATALOG["tao_mux_1_2"].training.link_speed_mbps \
            == (15.0, 15.0)

    def test_tcp_aware_sees_aimd(self):
        mixes = CATALOG["tao_tcp_aware"].training.sender_mixes
        assert ("learner", "aimd") in mixes
        naive_mixes = CATALOG["tao_tcp_naive"].training.sender_mixes
        assert all("aimd" not in mix for mix in naive_mixes)

    def test_diversity_deltas(self):
        assert CATALOG["tao_delta_tpt_naive"].training.learner_delta \
            == pytest.approx(0.1)
        assert CATALOG["tao_delta_del_naive"].training.learner_delta \
            == pytest.approx(10.0)

    def test_coopt_pairs_are_linked(self):
        for name_a, name_b in COOPT_PAIRS:
            assert CATALOG[name_a].coopt_partner == name_b
            assert CATALOG[name_b].coopt_partner == name_a

    def test_knockout_masks(self):
        mask = knockout_mask("rec_ewma")
        assert mask == (False, True, True, True)
        with pytest.raises(ValueError):
            knockout_mask("nonexistent_signal")
        for signal in SIGNAL_NAMES:
            spec = CATALOG[f"tao_knockout_{signal}"]
            assert sum(spec.mask) == 3

    def test_structure_models_match_paper(self):
        one = CATALOG["tao_structure_one"].training
        two = CATALOG["tao_structure_two"].training
        assert one.topology == "dumbbell"
        assert one.rtt_ms == (300.0, 300.0)     # single 150 ms link
        assert two.topology == "parking_lot"
        assert two.rtt_ms == (150.0, 150.0)     # 75 ms per hop
