"""Tests for the disk-backed result store (repro.exec.store).

The store extends the execution layer's determinism contract across
process lifetimes: a result read from disk must be bitwise-identical to
the one that was computed, a killed sweep must resume from everything
it finished, and no amount of corruption, concurrency, or schema drift
may ever produce a *wrong* answer (a smaller cache is fine, a stale or
garbled result is not).
"""

import importlib.util
import json
import multiprocessing
from pathlib import Path

import pytest

from repro.core.scale import Scale
from repro.core.scenario import NetworkConfig
from repro.exec import (Executor, ResultStore, SerialExecutor, SimTask,
                        StoreExecutor, StoreSchemaError, cache_key,
                        run_batch, run_sim_task, store_main)
from repro.exec import TaskFailure
from repro.exec.store import (SCHEMA_VERSION, decode_failure,
                              decode_result, encode_failure,
                              encode_result)
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree

CONFIG = NetworkConfig(
    link_speeds_mbps=(10.0,), rtt_ms=100.0,
    sender_kinds=("learner", "cubic"), mean_on_s=1.0, mean_off_s=1.0,
    buffer_bdp=5.0)

TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))


def small_batch(n=4, duration=2.0):
    return [SimTask.build(CONFIG, trees={"learner": TREE},
                          seed=1 + k, duration_s=duration)
            for k in range(n)]


def flows_key(results):
    """A comparable projection of every float the tables consume."""
    return [[(f.kind, f.delivered_bytes, f.on_time_s, f.mean_delay_s,
              f.packets_delivered, f.packets_sent, f.retransmissions)
             for f in out.run.flows] for out in results]


class CountingExecutor(Executor):
    """Streams tasks serially, counting executions; can simulate a
    crash by dying after ``fail_after`` tasks."""

    def __init__(self, fail_after=None):
        self.executed = 0
        self.fail_after = fail_after

    def run_iter(self, tasks):
        for i, task in enumerate(list(tasks)):
            if self.fail_after is not None \
                    and self.executed >= self.fail_after:
                raise RuntimeError("simulated crash")
            self.executed += 1
            yield i, run_sim_task(task)

    def run_batch(self, tasks, progress=None):
        return self._collect(tasks, progress)


# ----------------------------------------------------------------------
class TestSerialization:
    def test_round_trip_is_exact(self):
        task = small_batch(1)[0]
        out = run_sim_task(task)
        decoded = decode_result(encode_result(out))
        assert decoded == out            # dataclass equality, bitwise

    def test_round_trip_through_json_text(self):
        """What actually happens on disk: dict -> JSON text -> dict."""
        out = run_sim_task(small_batch(1)[0])
        text = json.dumps(encode_result(out), sort_keys=True)
        assert decode_result(json.loads(text)) == out

    def test_usage_stats_survive(self):
        import dataclasses
        task = dataclasses.replace(small_batch(1)[0], record_usage=True)
        out = run_sim_task(task)
        assert sum(out.usage_counts) > 0
        decoded = decode_result(encode_result(out))
        assert decoded.usage_counts == out.usage_counts
        assert decoded.usage_sums == out.usage_sums


# ----------------------------------------------------------------------
class TestResultStore:
    def test_put_get_within_and_across_opens(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        task = small_batch(1)[0]
        out = run_sim_task(task)
        key = cache_key(task)
        assert store.get(key) is None
        store.put(key, out)
        assert store.get(key) == out
        assert key in store
        # A second open (another process, conceptually) sees it too.
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get(key) == out
        assert len(reopened) == 1

    def test_missing_store_rejected_when_resuming(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultStore(tmp_path / "nope", require_exists=True)
        ResultStore(tmp_path / "made")  # creates
        ResultStore(tmp_path / "made", require_exists=True)  # now fine

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "s"
        ResultStore(path)
        meta = path / "meta.json"
        record = json.loads(meta.read_text())
        record["schema"] = SCHEMA_VERSION + 999
        meta.write_text(json.dumps(record))
        with pytest.raises(StoreSchemaError):
            ResultStore(path)

    def test_regular_file_rejected(self, tmp_path):
        """--store pointed at a file (say, the -o report) must fail
        with the clean error path, not a raw NotADirectoryError."""
        path = tmp_path / "report.md"
        path.write_text("not a store")
        with pytest.raises(StoreSchemaError):
            ResultStore(path)

    def test_non_store_directory_rejected(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        (path / "meta.json").write_text('{"something": "else"}')
        with pytest.raises(StoreSchemaError):
            ResultStore(path)

    def test_foreign_schema_records_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        task = small_batch(1)[0]
        key = cache_key(task)
        store.put(key, run_sim_task(task))
        shard = tmp_path / "s" / "shards" / f"{key[:2]}.jsonl"
        lines = shard.read_text().splitlines()
        stale = json.loads(lines[0])
        stale["schema"] = SCHEMA_VERSION - 1
        shard.write_text(json.dumps(stale) + "\n")
        assert ResultStore(tmp_path / "s").get(key) is None

    def test_truncated_and_garbled_shards_recover(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        tasks = small_batch(2)
        outs = [run_sim_task(task) for task in tasks]
        for task, out in zip(tasks, outs):
            store.put(cache_key(task), out)
        # Crash-corrupt one shard: binary garbage plus a half-written
        # record (what a kill -9 mid-append leaves behind).
        shard_dir = tmp_path / "s" / "shards"
        victim = sorted(shard_dir.iterdir())[0]
        with open(victim, "ab") as fh:
            fh.write(b"\x00\xffgarbage not json\n")
            fh.write(b'{"schema": 1, "key": "dead', )  # truncated
        reopened = ResultStore(tmp_path / "s")
        for task, out in zip(tasks, outs):
            assert reopened.get(cache_key(task)) == out
        stats = reopened.stats()
        assert stats.records == 2
        assert stats.corrupt == 2

    def test_gc_drops_corruption_and_duplicates(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        task = small_batch(1)[0]
        key = cache_key(task)
        out = run_sim_task(task)
        store.put(key, out)
        store.put(key, out)          # duplicate (racing writers)
        shard = tmp_path / "s" / "shards" / f"{key[:2]}.jsonl"
        with open(shard, "ab") as fh:
            fh.write(b"not json either\n")
        reopened = ResultStore(tmp_path / "s")
        dropped = reopened.gc()
        assert dropped == 2          # one duplicate + one corrupt line
        assert shard.read_text().count("\n") == 1
        assert reopened.get(key) == out
        # And a fresh open agrees with the compacted file.
        assert ResultStore(tmp_path / "s").get(key) == out
        assert reopened.verify().corrupt == 0

    def test_verify_catches_undecodable_payloads(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        task = small_batch(1)[0]
        store.put(cache_key(task), run_sim_task(task))
        shard_dir = tmp_path / "s" / "shards"
        victim = sorted(shard_dir.iterdir())[0]
        # Parses as JSON, carries the right schema, but the payload has
        # lost its flows: stats() can't see that, verify() must.
        with open(victim, "ab") as fh:
            fh.write(json.dumps({"schema": SCHEMA_VERSION,
                                 "key": "ab" * 20,
                                 "result": {"run": {}}}).encode() + b"\n")
        fresh = ResultStore(tmp_path / "s")
        assert fresh.stats().corrupt == 0
        assert fresh.verify().corrupt == 1


# ----------------------------------------------------------------------
def _writer_process(path, start, count):
    """Child-process body for the concurrency test (module-level so it
    pickles under any multiprocessing start method)."""
    store = ResultStore(path)
    for task in small_batch(count)[start:]:
        store.put(cache_key(task), run_sim_task(task))


class TestConcurrentWriters:
    def test_two_processes_share_one_store(self, tmp_path):
        path = str(tmp_path / "s")
        n = 4
        ctx = multiprocessing.get_context()
        first = ctx.Process(target=_writer_process, args=(path, 0, 2))
        second = ctx.Process(target=_writer_process, args=(path, 2, n))
        first.start()
        second.start()
        first.join(timeout=120)
        second.join(timeout=120)
        assert first.exitcode == 0 and second.exitcode == 0
        # The parent (a third process) reads everything both wrote,
        # bitwise-equal to computing locally.
        store = ResultStore(path)
        tasks = small_batch(n)
        local = [run_sim_task(task) for task in tasks]
        stored = [store.get(cache_key(task)) for task in tasks]
        assert flows_key(stored) == flows_key(local)
        assert store.verify().corrupt == 0


# ----------------------------------------------------------------------
class TestStoreExecutor:
    def test_hits_skip_execution_across_processes(self, tmp_path):
        """Two executors on the same path model two processes: the
        second serves everything from disk."""
        tasks = small_batch(3)
        first = StoreExecutor(CountingExecutor(),
                              store=tmp_path / "s")
        a = first.run_batch(tasks)
        assert first.inner.executed == 3
        assert (first.hits, first.misses) == (0, 3)
        second = StoreExecutor(CountingExecutor(),
                               store=tmp_path / "s")
        b = second.run_batch(tasks)
        assert second.inner.executed == 0
        assert (second.hits, second.misses) == (3, 0)
        assert flows_key(a) == flows_key(b)

    def test_duplicates_within_batch_run_once(self, tmp_path):
        executor = StoreExecutor(CountingExecutor(),
                                 store=tmp_path / "s")
        task = small_batch(1)[0]
        results = executor.run_batch([task, task, task])
        assert executor.inner.executed == 1
        assert flows_key(results[:1]) == flows_key(results[1:2])

    def test_memory_and_disk_share_the_cache_key(self, tmp_path):
        """A result cached in memory is filed on disk under the same
        key: warm a store, then a CachingExecutor-style lookup by
        cache_key() finds exactly that entry."""
        task = small_batch(1)[0]
        executor = StoreExecutor(SerialExecutor(), store=tmp_path / "s")
        out, = executor.run_batch([task])
        assert executor.store.get(cache_key(task)) == out

    def test_progress_spans_submitted_batch(self, tmp_path):
        tasks = small_batch(3)
        executor = StoreExecutor(SerialExecutor(), store=tmp_path / "s")
        executor.run_batch(tasks[:2])
        seen = []
        executor.run_batch(tasks,
                           progress=lambda d, n: seen.append((d, n)))
        assert seen == [(3, 3)]      # 2 hits + 1 executed
        seen = []
        executor.run_batch(tasks,
                           progress=lambda d, n: seen.append((d, n)))
        assert seen == [(3, 3)]      # fully cached still fires

    def test_crash_mid_batch_resumes_from_disk(self, tmp_path):
        """The resumability contract: kill a sweep mid-batch and the
        rerun completes from disk, re-simulating only what's missing,
        with results bitwise-identical to an uninterrupted run."""
        tasks = small_batch(4)
        reference = SerialExecutor().run_batch(tasks)

        dying = StoreExecutor(CountingExecutor(fail_after=2),
                              store=tmp_path / "s")
        with pytest.raises(RuntimeError):
            dying.run_batch(tasks)
        assert dying.inner.executed == 2
        # Everything that finished before the crash is already on disk.
        assert len(ResultStore(tmp_path / "s")) == 2

        resumed = StoreExecutor(CountingExecutor(),
                                store=tmp_path / "s")
        results = resumed.run_batch(tasks)
        assert resumed.inner.executed == 2          # only the missing
        assert (resumed.hits, resumed.misses) == (2, 2)
        assert flows_key(results) == flows_key(reference)

    def test_run_batch_store_param(self, tmp_path):
        """run_batch(store=...) persists through a caller-owned
        executor without closing it."""
        tasks = small_batch(2)
        owned = CountingExecutor()
        first = run_batch(tasks, executor=owned, store=tmp_path / "s")
        second = run_batch(tasks, executor=owned, store=tmp_path / "s")
        assert owned.executed == 2                  # second was all hits
        assert flows_key(first) == flows_key(second)

    def test_run_seed_batch_store_param(self, tmp_path):
        from repro.experiments.common import run_seed_batch
        scale = Scale(duration_s=2.0, packet_budget=3_000,
                      min_duration_s=2.0, n_seeds=2)
        specs = [(CONFIG, {"learner": TREE})]
        first = run_seed_batch(specs, scale=scale, store=tmp_path / "s")
        # Second run: everything from disk, nothing executed.
        counting = CountingExecutor()
        second = run_seed_batch(specs, scale=scale, executor=counting,
                                store=tmp_path / "s")
        assert counting.executed == 0
        assert [[f.delivered_bytes for f in r.flows]
                for r in first[0]] \
            == [[f.delivered_bytes for f in r.flows]
                for r in second[0]]


# ----------------------------------------------------------------------
class TestStoreCli:
    def _warm(self, tmp_path):
        path = tmp_path / "s"
        executor = StoreExecutor(SerialExecutor(), store=path)
        executor.run_batch(small_batch(2))
        return path

    def test_stats_and_verify_ok(self, tmp_path, capsys):
        path = self._warm(tmp_path)
        assert store_main(["stats", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 distinct" in out
        assert store_main(["verify", "--store", str(path)]) == 0
        assert "verify: ok" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        path = self._warm(tmp_path)
        victim = sorted((path / "shards").iterdir())[0]
        with open(victim, "ab") as fh:
            fh.write(b"garbage\n")
        assert store_main(["verify", "--store", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_gc_then_verify_recovers(self, tmp_path, capsys):
        path = self._warm(tmp_path)
        victim = sorted((path / "shards").iterdir())[0]
        with open(victim, "ab") as fh:
            fh.write(b"garbage\n")
        assert store_main(["gc", "--store", str(path)]) == 0
        assert "dropped 1" in capsys.readouterr().out
        assert store_main(["verify", "--store", str(path)]) == 0

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert store_main(["stats", "--store",
                           str(tmp_path / "nope")]) == 2
        assert "no result store" in capsys.readouterr().err


def _stamp_ts(path, stamps):
    """Rewrite every shard record's ``ts`` from ``stamps[key]``."""
    for shard in sorted((path / "shards").iterdir()):
        if shard.name.startswith("quarantine"):
            continue
        lines = []
        for line in shard.read_text().splitlines():
            record = json.loads(line)
            record["ts"] = stamps[record["key"]]
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
        shard.write_text("\n".join(lines) + "\n")


def _shard_bytes(path):
    return sum(shard.stat().st_size
               for shard in (path / "shards").iterdir()
               if not shard.name.startswith("quarantine"))


class TestEviction:
    """``store gc --max-bytes N`` — least-recently-written eviction."""

    def _warm(self, tmp_path, n=4):
        path = tmp_path / "s"
        tasks = small_batch(n)
        with StoreExecutor(SerialExecutor(), store=path) as executor:
            executor.run_batch(tasks)
        return path, [cache_key(task) for task in tasks]

    def test_oldest_records_go_first(self, tmp_path):
        path, keys = self._warm(tmp_path)
        # Ages increase with batch position: keys[0] oldest.
        _stamp_ts(path, {key: 1000 + i for i, key in enumerate(keys)})
        store = ResultStore(path, require_exists=True)
        before = _shard_bytes(path)
        evicted, shards = store.evict(before // 2)
        assert evicted >= 1 and shards >= 1
        assert _shard_bytes(path) <= before // 2
        survivors = store.keys()
        # The survivors are exactly the newest tail of the batch.
        assert survivors == set(keys[len(keys) - len(survivors):])
        # Survivors are still served, from this handle and a fresh one.
        reopened = ResultStore(path, require_exists=True)
        for key in survivors:
            assert store.get(key) is not None
            assert reopened.get(key) is not None
        for key in keys[:len(keys) - len(survivors)]:
            assert reopened.get(key) is None

    def test_within_budget_is_a_no_op(self, tmp_path):
        path, keys = self._warm(tmp_path, n=2)
        store = ResultStore(path, require_exists=True)
        assert store.evict(_shard_bytes(path)) == (0, 0)
        assert store.keys() == set(keys)

    def test_missing_ts_counts_as_oldest(self, tmp_path):
        path, keys = self._warm(tmp_path, n=3)
        stamps = {key: 5000 for key in keys}
        _stamp_ts(path, stamps)
        # Strip ts from one record entirely (a pre-eviction store).
        for shard in sorted((path / "shards").iterdir()):
            lines = [json.loads(line)
                     for line in shard.read_text().splitlines()]
            if any(rec["key"] == keys[1] for rec in lines):
                for rec in lines:
                    rec.pop("ts", None)
                shard.write_text("\n".join(
                    json.dumps(rec, sort_keys=True,
                               separators=(",", ":"))
                    for rec in lines) + "\n")
        store = ResultStore(path, require_exists=True)
        evicted, _shards = store.evict(_shard_bytes(path) - 1)
        assert evicted == 1
        assert keys[1] not in store.keys()

    def test_quarantine_is_never_evicted(self, tmp_path):
        path, keys = self._warm(tmp_path, n=2)
        store = ResultStore(path, require_exists=True)
        store.quarantine("deadbeef" * 5, TaskFailure(
            kind="crash", attempts=3, message="poison"))
        evicted, _shards = store.evict(0)
        assert evicted == len(keys)
        assert store.keys() == set()
        assert store.get_quarantine("deadbeef" * 5) is not None

    def test_gc_preserves_ts(self, tmp_path):
        path, keys = self._warm(tmp_path, n=2)
        _stamp_ts(path, {key: 1234 for key in keys})
        store = ResultStore(path, require_exists=True)
        store.gc()
        for shard in (path / "shards").iterdir():
            for line in shard.read_text().splitlines():
                assert json.loads(line)["ts"] == 1234

    def test_cli_prints_eviction_stats(self, tmp_path, capsys):
        path, keys = self._warm(tmp_path, n=2)
        assert store_main(["gc", "--store", str(path),
                           "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert f"evicted {len(keys)} record(s)" in out
        assert ResultStore(path, require_exists=True).keys() == set()

    def test_cli_rejects_max_bytes_outside_gc(self, tmp_path):
        path, _keys = self._warm(tmp_path, n=1)
        with pytest.raises(SystemExit):
            store_main(["stats", "--store", str(path),
                        "--max-bytes", "5"])


# ----------------------------------------------------------------------
def _load_script(name):
    """Import a scripts/*.py file (scripts/ is not a package)."""
    path = Path(__file__).resolve().parents[1] / "scripts" / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSweepResume:
    """The acceptance criterion: a run_experiments.py --store sweep
    killed halfway and rerun with --resume produces byte-identical
    output while re-simulating only the missing fingerprints."""

    def test_scripts_expose_store_subcommand(self, tmp_path, capsys):
        path = tmp_path / "s"
        StoreExecutor(SerialExecutor(),
                      store=path).run_batch(small_batch(1))
        for name in ("run_experiments.py", "train_assets.py"):
            module = _load_script(name)
            assert module.main(["store", "stats",
                                "--store", str(path)]) == 0
            assert "1 distinct" in capsys.readouterr().out

    def test_resume_without_store_rejected(self, capsys):
        run_experiments = _load_script("run_experiments.py")
        with pytest.raises(SystemExit):
            run_experiments.main(["--resume"])

    def test_killed_sweep_resumes_identically(self, tmp_path,
                                              monkeypatch, capsys):
        from repro.core import scale as scale_module

        run_experiments = _load_script("run_experiments.py")
        tiny = Scale(duration_s=2.0, packet_budget=3_000,
                     min_duration_s=2.0, n_seeds=2, sweep_points=2)
        monkeypatch.setitem(scale_module.NAMED_SCALES, "quick", tiny)

        # Count what the inner executor actually simulates per run.
        executors = []
        real_executor_for = run_experiments.executor_for

        def counting_executor_for(jobs, store=None, resume=False,
                                  policy=None, workers=None):
            executor = real_executor_for(jobs, store=store,
                                         resume=resume, policy=policy,
                                         workers=workers)
            if isinstance(executor, StoreExecutor):
                executor.inner = CountingExecutor()
                executors.append(executor)
            return executor

        monkeypatch.setattr(run_experiments, "executor_for",
                            counting_executor_for)
        args = ["--scale", "quick", "--only", "calibration",
                "--fake-taos"]
        store = tmp_path / "store"
        ref, out = tmp_path / "ref.md", tmp_path / "out.md"

        # Uninterrupted reference, no store involved at all.
        assert run_experiments.main(args + ["-o", str(ref)]) == 0
        # Full run into the store; output must match the reference.
        assert run_experiments.main(
            args + ["--store", str(store), "-o", str(out)]) == 0
        total = executors[0].inner.executed
        assert total > 0
        assert out.read_text() == ref.read_text()

        # "Kill it halfway": drop half the shard files, as a crash
        # partway through the sweep would have left them unwritten.
        shards = sorted((store / "shards").glob("*.jsonl"))
        assert len(shards) >= 2
        lost = 0
        for shard in shards[:len(shards) // 2]:
            lost += sum(1 for _ in shard.open())
            shard.unlink()
        assert 0 < lost < total

        assert run_experiments.main(
            args + ["--store", str(store), "--resume",
                    "-o", str(out)]) == 0
        resumed = executors[1]
        # Only the lost fingerprints were re-simulated...
        assert resumed.inner.executed == lost
        assert resumed.hits == total - lost
        # ...and the report is byte-identical to the uninterrupted run.
        assert out.read_text() == ref.read_text()

    def test_resume_against_missing_store_fails_fast(self, tmp_path,
                                                     capsys):
        run_experiments = _load_script("run_experiments.py")
        code = run_experiments.main(
            ["--scale", "quick", "--only", "calibration", "--fake-taos",
             "--store", str(tmp_path / "typo"), "--resume"])
        assert code == 2
        assert "no result store" in capsys.readouterr().err


FAILURE = TaskFailure(kind="worker-death", message="poison",
                      attempts=3, resubmissions=3)


class TestQuarantine:
    """The quarantine shard: poison fingerprints recorded apart from
    results, surfaced by stats/verify, enforced only under --strict."""

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.quarantine("deadbeef", FAILURE)
        assert store.get_quarantine("deadbeef") == FAILURE
        assert store.get_quarantine("cafebabe") is None
        # A fresh open reads it back from disk.
        reopened = ResultStore(tmp_path / "s")
        assert reopened.quarantined_keys() == {"deadbeef"}
        assert reopened.get_quarantine("deadbeef") == FAILURE

    def test_encode_decode_tolerant(self):
        assert decode_failure(encode_failure(FAILURE)) == FAILURE
        sparse = decode_failure({"kind": "timeout"})
        assert sparse.kind == "timeout" and sparse.attempts == 1

    def test_never_lands_in_result_shards(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = cache_key(small_batch(1)[0])
        store.quarantine(key, FAILURE)
        assert key not in store            # not servable as a result
        stats = store.stats()
        assert stats.records == 0 and stats.quarantined == 1

    def test_stats_and_verify_count_quarantine(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        StoreExecutor(SerialExecutor(),
                      store=store).run_batch(small_batch(1))
        store.quarantine("deadbeef", FAILURE)
        store.quarantine("deadbeef", FAILURE)   # duplicate: 1 distinct
        for stats in (store.stats(), store.verify()):
            assert stats.distinct == 1
            assert stats.quarantined == 1
        assert any("quarantined 1" in line
                   for line in store.stats().lines())

    def test_gc_compacts_quarantine_shard(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.quarantine("deadbeef", FAILURE)
        store.quarantine("deadbeef", FAILURE)
        with open(store._quarantine_path(), "ab") as fh:
            fh.write(b"\x00not json\n")
        assert store.gc() == 2                  # duplicate + garbage
        reopened = ResultStore(tmp_path / "s")
        assert reopened.quarantined_keys() == {"deadbeef"}
        assert reopened.stats().corrupt == 0

    def test_store_main_strict_gates_on_quarantine(self, tmp_path,
                                                   capsys):
        path = str(tmp_path / "s")
        store = ResultStore(path)
        StoreExecutor(SerialExecutor(),
                      store=store).run_batch(small_batch(1))
        # Healthy, no quarantine: strict and non-strict both pass.
        for extra in ([], ["--strict"]):
            assert store_main(["stats", "--store", path] + extra) == 0
            assert store_main(["verify", "--store", path] + extra) == 0
        store.quarantine("deadbeef", FAILURE)
        capsys.readouterr()
        # Quarantined fingerprints are reported but only fail --strict.
        assert store_main(["stats", "--store", path]) == 0
        assert "quarantined 1" in capsys.readouterr().out
        assert store_main(["stats", "--store", path, "--strict"]) == 1
        assert "deadbeef"[:12] in capsys.readouterr().out
        assert store_main(["verify", "--store", path, "--strict"]) == 1
