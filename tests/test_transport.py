"""Tests for the shared transport: reliability, loss detection, pacing.

These tests build tiny hand-wired networks (one duplex link) so they can
force specific losses and observe the sender's reaction.
"""

import math

import pytest

from repro.protocols.base import CongestionController
from repro.protocols.transport import FlowReceiver, FlowSender
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.queues import DropTailQueue


class FixedWindow(CongestionController):
    """A controller holding a constant window (isolates the transport)."""

    name = "fixed"

    def __init__(self, window=8.0, pacing=0.0):
        super().__init__()
        self.window = window
        self._pacing = pacing
        self.loss_events = 0
        self.timeout_events = 0

    def on_loss(self, now):
        self.loss_events += 1

    def on_timeout(self, now):
        self.timeout_events += 1

    def pacing_interval(self):
        return self._pacing


def make_flow(rate_bps=1e6, delay_s=0.01, queue_capacity=math.inf,
              window=8.0, pacing=0.0):
    sim = Simulator()
    network = Network(sim)
    forward = Link(sim, rate_bps, delay_s,
                   queue=DropTailQueue(capacity_packets=queue_capacity),
                   name="fwd")
    reverse = Link(sim, math.inf, delay_s, name="rev")
    network.add_link(forward)
    network.add_link(reverse)
    network.add_flow(0, [forward], [reverse])
    controller = FixedWindow(window=window, pacing=pacing)
    sender = FlowSender(sim, network, 0, controller)
    receiver = FlowReceiver(sim, network, 0)
    return sim, network, forward, sender, receiver, controller


class TestReliableDelivery:
    def test_lossless_delivery_in_order(self):
        sim, _, _, sender, receiver, _ = make_flow()
        sender.set_on(0.0)
        sim.run(until=2.0)
        assert receiver.stats.unique_delivered > 50
        assert receiver.cum == receiver.stats.unique_delivered
        assert sender.stats.retransmissions == 0
        assert sender.stats.timeouts == 0

    def test_window_limits_inflight(self):
        sim, _, link, sender, _, _ = make_flow(window=4.0,
                                               rate_bps=1e5)
        sender.set_on(0.0)
        sim.run(until=0.05)   # before any ACK returns
        assert sender.pipe <= 4

    def test_all_lost_data_retransmitted(self):
        """Packets dropped at a tiny buffer all get through eventually."""
        sim, _, link, sender, receiver, cc = make_flow(
            queue_capacity=2, window=16.0)
        sender.set_on(0.0)
        sim.run(until=10.0)
        sender.set_off(10.0)
        sim.run(until=20.0)
        assert link.queue.stats.dropped > 0
        # Reliable: everything below the cumulative point arrived, and
        # the stream made progress past the losses.
        assert receiver.cum > 100
        # Every drop is either already resent or still queued for
        # retransmission (the sender turned off mid-recovery).
        unresolved = len(sender._lost)
        assert (sender.stats.retransmissions + unresolved
                >= link.queue.stats.dropped)

    def test_delay_measured_from_first_send(self):
        sim, _, link, sender, receiver, _ = make_flow(
            queue_capacity=1, window=8.0)
        sender.set_on(0.0)
        sim.run(until=5.0)
        # Retransmitted packets carry their original first-send stamp, so
        # max delay far exceeds the unloaded path latency.
        unloaded = 0.01 + 1500 * 8 / 1e6
        assert receiver.stats.max_delay > 2 * unloaded


class TestLossDetection:
    def test_rack_declares_losses_without_timeout(self):
        sim, _, link, sender, receiver, cc = make_flow(
            queue_capacity=4, window=32.0)
        sender.set_on(0.0)
        sim.run(until=3.0)
        assert link.queue.stats.dropped > 0
        assert cc.loss_events > 0
        assert sender.stats.timeouts == 0   # RACK recovered everything

    def test_no_spurious_retransmissions_without_loss(self):
        sim, _, _, sender, _, _ = make_flow(window=4.0)
        sender.set_on(0.0)
        sim.run(until=5.0)
        assert sender.stats.retransmissions == 0

    def test_retransmission_count_matches_drops(self):
        """With RACK, exactly the dropped packets are resent."""
        sim, _, link, sender, receiver, _ = make_flow(
            queue_capacity=3, window=24.0)
        sender.set_on(0.0)
        sim.run(until=4.0)
        sender.set_off(4.0)
        sim.run(until=8.0)
        drops = link.queue.stats.dropped
        assert drops > 0
        # Every retransmission corresponds to a genuine drop (no K > 1
        # blowup); drops not yet resent sit in the lost queue because
        # the sender turned off mid-recovery.
        unresolved = len(sender._lost)
        assert (drops <= sender.stats.retransmissions + unresolved
                <= drops + 5)

    def test_pipe_accounting_stays_consistent(self):
        sim, _, link, sender, receiver, _ = make_flow(
            queue_capacity=3, window=16.0)
        sender.set_on(0.0)
        for step in range(1, 80):
            sim.run(until=step * 0.05)
            assert sender.pipe >= 0
            assert sender.pipe <= sender.next_seq - sender.cum_acked


class TestTimeout:
    def test_total_blackout_triggers_rto(self):
        """Drop everything: only the RTO can recover."""
        sim, network, link, sender, receiver, cc = make_flow(window=8.0)
        sender.set_on(0.0)
        sim.run(until=0.3)
        delivered_before = receiver.stats.unique_delivered
        # Replace the queue with one that drops everything.
        link.queue.capacity_packets = 0.0
        original_enqueue = link.queue.enqueue
        link.queue.enqueue = lambda pkt, now: False
        sim.run(until=1.0)
        # Restore the path; the RTO resend must repair the stream.
        link.queue.enqueue = original_enqueue
        sim.run(until=8.0)
        assert sender.stats.timeouts >= 1
        assert cc.timeout_events >= 1
        assert receiver.stats.unique_delivered > delivered_before

    def test_rto_backoff_doubles(self):
        sim, network, link, sender, receiver, _ = make_flow(window=4.0)
        sender.set_on(0.0)
        # Total blackout via the queue's capacity contract (the
        # monomorphic fast path inlines drop-tail admission, so
        # instance-level enqueue monkeypatches no longer intercept).
        link.queue.capacity_packets = 0.0
        sim.run(until=30.0)
        assert sender.stats.timeouts >= 3
        assert sender._rto_backoff > 1.0


class TestPacing:
    def test_pacing_spreads_transmissions(self):
        sim, _, link, sender, _, _ = make_flow(
            rate_bps=1e7, window=100.0, pacing=0.01)
        sender.set_on(0.0)
        sim.run(until=1.0)
        # 1 second at one packet per 10 ms ~= 100 packets, not the burst
        # the window would otherwise allow.
        assert 80 <= sender.stats.packets_sent <= 110

    def test_zero_pacing_bursts_to_window(self):
        sim, _, _, sender, _, _ = make_flow(rate_bps=1e7, window=50.0)
        sender.set_on(0.0)
        sim.run(until=0.001)
        assert sender.stats.packets_sent == 50


class TestOnOffBehaviour:
    def test_no_sends_while_off(self):
        sim, _, _, sender, _, _ = make_flow(window=4.0)
        sender.set_on(0.0)
        sim.run(until=1.0)
        sent = sender.stats.packets_sent
        sender.set_off(1.0)
        sim.run(until=3.0)
        assert sender.stats.packets_sent == sent

    def test_resume_after_off(self):
        sim, _, _, sender, receiver, _ = make_flow(window=4.0)
        sender.set_on(0.0)
        sim.run(until=1.0)
        sender.set_off(1.0)
        sim.run(until=2.0)
        sender.set_on(2.0)
        sim.run(until=3.0)
        delivered = receiver.stats.unique_delivered
        assert delivered > 0
        assert receiver.cum == delivered   # stream still contiguous


class TestReceiver:
    def test_duplicate_data_not_double_counted(self):
        sim, network, link, sender, receiver, _ = make_flow(
            queue_capacity=2, window=16.0)
        sender.set_on(0.0)
        sim.run(until=6.0)
        assert receiver.stats.unique_delivered <= receiver.stats.packets_received
        assert (receiver.stats.delivered_bytes
                == receiver.stats.unique_delivered * 1500)

    def test_acks_echo_send_timestamp(self):
        sim, network, link, sender, receiver, _ = make_flow()
        echoes = []
        original = sender._on_ack_packet

        def spy(ack):
            echoes.append((ack.echo_sent_at, sim.now))
            original(ack)

        network.attach_sender(0, spy)
        sender.set_on(0.0)
        sim.run(until=0.5)
        assert echoes
        for sent_at, arrived in echoes:
            assert 0.0 <= sent_at < arrived
