"""Tests for topology descriptions, routing, and the two factories."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.topology.dumbbell import bdp_packets, dumbbell
from repro.topology.graph import LinkSpec, Topology
from repro.topology.parking_lot import (FLOW_BOTH, FLOW_LINK1, FLOW_LINK2,
                                        parking_lot)


class TestTopologyBasics:
    def test_duplicate_edge_rejected(self):
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(1e6, 0.0))
        with pytest.raises(ValueError):
            topo.add_link("a", "b", LinkSpec(1e6, 0.0))

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(1e6, 0.0))
        topo.add_flow("b", "a")
        with pytest.raises(ValueError, match="no path"):
            topo.build(Simulator())

    def test_duplicate_flow_id_rejected(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", LinkSpec(1e6, 0.0))
        topo.add_flow("a", "b", flow_id=7)
        with pytest.raises(ValueError):
            topo.add_flow("a", "b", flow_id=7)

    def test_auto_flow_ids_increment(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", LinkSpec(1e6, 0.0))
        f0 = topo.add_flow("a", "b")
        f1 = topo.add_flow("a", "b")
        assert (f0.flow_id, f1.flow_id) == (0, 1)

    def test_shortest_path_prefers_low_delay(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", LinkSpec(1e6, 0.100))
        topo.add_duplex_link("a", "c", LinkSpec(1e6, 0.010))
        topo.add_duplex_link("c", "b", LinkSpec(1e6, 0.010))
        flow = topo.add_flow("a", "b")
        built = topo.build(Simulator())
        path = built.network.flows[flow.flow_id]
        names = [link.name for link in path.data_route]
        assert names == ["a->c", "c->b"]

    def test_validation_of_specs(self):
        with pytest.raises(ValueError):
            LinkSpec(-1.0, 0.0)
        with pytest.raises(ValueError):
            LinkSpec(1e6, -0.1)


class TestDumbbell:
    def test_structure(self):
        topo = dumbbell(3, 10e6, 0.1)
        assert len(topo.flows) == 3
        built = topo.build(Simulator())
        bottleneck = built.link("A", "B")
        assert bottleneck.rate_bps == 10e6
        assert bottleneck.delay_s == pytest.approx(0.05)

    def test_flow_routes_share_bottleneck(self):
        topo = dumbbell(2, 10e6, 0.1)
        built = topo.build(Simulator())
        bottleneck = built.link("A", "B")
        for flow_id in (0, 1):
            path = built.network.flows[flow_id]
            assert bottleneck in path.data_route

    def test_min_rtt_matches_request(self):
        topo = dumbbell(2, 10e6, 0.150)
        flow = topo.flows[0]
        rtt = topo.min_rtt(flow)
        # Propagation 150 ms plus one serialization of a 1500 B packet.
        assert rtt == pytest.approx(0.150 + 1500 * 8 / 10e6, rel=1e-6)

    def test_ack_path_never_queues(self):
        topo = dumbbell(1, 10e6, 0.1)
        built = topo.build(Simulator())
        reverse = built.link("B", "A")
        assert math.isinf(reverse.rate_bps)

    def test_needs_at_least_one_sender(self):
        with pytest.raises(ValueError):
            dumbbell(0, 1e6, 0.1)

    def test_bdp_packets(self):
        # 32 Mbps * 150 ms = 4.8 Mbit = 600 kB = 400 packets of 1500 B.
        assert bdp_packets(32e6, 0.150) == pytest.approx(400.0)


class TestParkingLot:
    def test_flow_paths(self):
        topo = parking_lot(50e6, 30e6)
        built = topo.build(Simulator())
        link1 = built.link("A", "B")
        link2 = built.link("B", "C")
        both = built.network.flows[FLOW_BOTH]
        assert link1 in both.data_route and link2 in both.data_route
        only1 = built.network.flows[FLOW_LINK1]
        assert link1 in only1.data_route and link2 not in only1.data_route
        only2 = built.network.flows[FLOW_LINK2]
        assert link2 in only2.data_route and link1 not in only2.data_route

    def test_rtts_match_paper(self):
        """75 ms per hop: one-hop flows see 150 ms, the crossing flow 300."""
        topo = parking_lot(50e6, 30e6, per_hop_delay_s=0.075)
        rtts = {flow.flow_id: topo.min_rtt(flow, data_bytes=0, ack_bytes=0)
                for flow in topo.flows}
        assert rtts[FLOW_BOTH] == pytest.approx(0.300)
        assert rtts[FLOW_LINK1] == pytest.approx(0.150)
        assert rtts[FLOW_LINK2] == pytest.approx(0.150)

    def test_distinct_queues_per_bottleneck(self):
        topo = parking_lot(50e6, 30e6)
        built = topo.build(Simulator())
        assert built.link("A", "B").queue is not built.link("B", "C").queue


class TestBaseDelay:
    def test_base_delay_includes_serialization(self):
        topo = dumbbell(1, 10e6, 0.1)
        built = topo.build(Simulator())
        path = built.network.flows[0]
        expected_forward = 0.05 + 1500 * 8 / 10e6
        assert path.one_way_base_delay(1500) == pytest.approx(
            expected_forward)
        rtt = path.base_delay(1500, 40)
        assert rtt == pytest.approx(expected_forward + 0.05)
