"""Property-based tests of the transport's reliability machinery.

Strategy: drive a single flow over a link whose queue drops an
arbitrary (hypothesis-chosen) subset of packets, and assert the
invariants that must survive *any* loss pattern:

* the receiver's cumulative stream never goes backwards and has no
  holes below ``cum``,
* the sender's pipe estimate is never negative and never exceeds the
  true number of packets physically in flight,
* every sequence number below the final cumulative point was
  delivered exactly once (no duplicate goodput),
* the connection always makes progress unless literally everything is
  dropped.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.protocols.base import CongestionController
from repro.protocols.transport import FlowReceiver, FlowSender
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.queues import DropTailQueue


class LossyQueue(DropTailQueue):
    """Drops the packets whose arrival index is in ``drop_set``."""

    def __init__(self, drop_set):
        super().__init__()
        self.drop_set = drop_set
        self.arrivals = 0

    def enqueue(self, packet, now):
        index = self.arrivals
        self.arrivals += 1
        if index in self.drop_set:
            self.stats.dropped += 1
            self.stats.dropped_at_arrival += 1
            self.stats.bytes_dropped += packet.size_bytes
            return False
        return super().enqueue(packet, now)


class FixedWindow(CongestionController):
    def __init__(self, window):
        super().__init__()
        self.window = window


def run_lossy_flow(drop_set, window, duration=8.0):
    sim = Simulator()
    network = Network(sim)
    queue = LossyQueue(drop_set)
    forward = Link(sim, 2e6, 0.02, queue=queue, name="fwd")
    reverse = Link(sim, math.inf, 0.02, name="rev")
    network.add_link(forward)
    network.add_link(reverse)
    network.add_flow(0, [forward], [reverse])
    sender = FlowSender(sim, network, 0, FixedWindow(window))
    receiver = FlowReceiver(sim, network, 0)
    sender.set_on(0.0)

    checkpoints = 16
    for step in range(1, checkpoints + 1):
        sim.run(until=duration * step / checkpoints)
        # Pipe sanity at every checkpoint.
        assert sender.pipe >= 0
        assert sender.outstanding >= 0
        assert receiver.cum <= sender.next_seq
    return sim, sender, receiver, queue


@st.composite
def drop_patterns(draw):
    indices = draw(st.sets(st.integers(min_value=0, max_value=120),
                           max_size=60))
    window = draw(st.integers(min_value=1, max_value=24))
    return frozenset(indices), window


class TestLossPatternProperties:
    @given(drop_patterns())
    @settings(max_examples=25, deadline=None)
    def test_stream_integrity_under_any_loss(self, pattern):
        drop_set, window = pattern
        _, sender, receiver, queue = run_lossy_flow(drop_set, window)
        # Contiguity: everything below cum was delivered exactly once.
        assert receiver.stats.unique_delivered >= receiver.cum
        # No duplicate goodput: unique deliveries can't exceed distinct
        # sequence numbers ever sent.
        assert receiver.stats.unique_delivered <= sender.next_seq
        # Progress: packets after the drop window must eventually flow.
        assert receiver.cum > 0

    @given(drop_patterns())
    @settings(max_examples=25, deadline=None)
    def test_retransmissions_bounded_by_losses(self, pattern):
        drop_set, window = pattern
        _, sender, receiver, queue = run_lossy_flow(drop_set, window)
        # Each retransmission answers a real drop (possibly of an
        # earlier retransmission) or a timeout's conservative re-mark.
        # Without timeouts the bound is exact.
        if sender.stats.timeouts == 0:
            assert sender.stats.retransmissions \
                <= queue.stats.dropped + len(sender._lost)

    @given(st.integers(min_value=1, max_value=24))
    @settings(max_examples=10, deadline=None)
    def test_lossless_flow_never_retransmits(self, window):
        _, sender, receiver, _ = run_lossy_flow(frozenset(), window)
        assert sender.stats.retransmissions == 0
        assert sender.stats.timeouts == 0
        assert receiver.cum == receiver.stats.unique_delivered

    @given(st.sets(st.integers(min_value=0, max_value=30), min_size=31,
                   max_size=31))
    @settings(max_examples=5, deadline=None)
    def test_blackout_prefix_recovers(self, drops):
        """Dropping the first 31 arrivals forces RTO recovery; the
        stream must still come up afterwards."""
        _, sender, receiver, _ = run_lossy_flow(frozenset(drops), 8,
                                                duration=20.0)
        assert receiver.cum > 0
        assert sender.stats.timeouts >= 1
