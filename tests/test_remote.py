"""Chaos suite for multi-host dispatch (repro.exec.remote).

The contract under test is the PR-8 failure semantics carried over TCP
(docs/EXECUTION.md, "Remote execution"): every task a
:class:`RemoteExecutor` completes is bitwise-identical to a fault-free
serial run — transient wire faults (conn-drop, frame-corrupt, delay)
are absorbed by session-resuming reconnects and retries, silent workers
blow their heartbeat lease and their tasks re-dispatch with bisection,
stragglers are speculatively duplicated first-result-wins, persistent
poison is quarantined, and zero reachable workers degrades to the
local supervised pool with a warning instead of an error.
"""

import json
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.scenario import NetworkConfig
from repro.exec import (RemoteExecutor, ResultStore, RetryPolicy,
                        SerialExecutor, SimTask, StoreExecutor,
                        TaskFailedError, WorkerServer, cache_key,
                        executor_for, parse_workers, run_batch,
                        serve_worker)
from repro.exec.faults import FAULTS_ENV, FaultInjector, FaultPlan
from repro.exec.remote import (FrameError, _parse_frames, recv_frame,
                               send_frame, workers_from_args)
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree

CONFIG = NetworkConfig(
    link_speeds_mbps=(10.0,), rtt_ms=100.0,
    sender_kinds=("learner", "cubic"), mean_on_s=1.0, mean_off_s=1.0,
    buffer_bdp=5.0)

TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))

#: PR-8 retry semantics, waiting compressed to test scale.
FAST = RetryPolicy(max_retries=2, task_timeout_s=20.0,
                   timeout_slack_s=5.0, backoff_base_s=0.01,
                   backoff_max_s=0.05)


def small_batch(n=4, duration=2.0):
    return [SimTask.build(CONFIG, trees={"learner": TREE},
                          seed=1 + k, duration_s=duration)
            for k in range(n)]


def flows_key(results):
    """A comparable projection of every float the tables consume."""
    return [[(f.kind, f.delivered_bytes, f.on_time_s, f.mean_delay_s,
              f.packets_delivered, f.packets_sent, f.retransmissions)
             for f in out.run.flows] for out in results]


@pytest.fixture
def server():
    """One in-process worker daemon on an ephemeral port."""
    srv = WorkerServer()
    srv.start()
    yield srv
    srv.stop()


def remote(srv, lanes=1, policy=FAST, **kwargs):
    kwargs.setdefault("fallback_jobs", 1)
    kwargs.setdefault("connect_timeout_s", 2.0)
    kwargs.setdefault("reconnect_base_s", 0.01)
    kwargs.setdefault("reconnect_max_s", 0.05)
    return RemoteExecutor([f"127.0.0.1:{srv.port}"] * lanes,
                          policy=policy, **kwargs)


# ----------------------------------------------------------------------
# Protocol units.


class TestParseWorkers:
    def test_string_and_sequence_forms(self):
        assert parse_workers("a:1, b:2,") == [("a", 1), ("b", 2)]
        assert parse_workers(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        # Duplicates are meaningful: one lane per listing.
        assert parse_workers("a:1,a:1") == [("a", 1), ("a", 1)]

    @pytest.mark.parametrize("bad", ["hostonly", ":7070", "a:port",
                                     "a:1:2:x"])
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_workers(bad)

    def test_cli_round_trip(self):
        import argparse

        from repro.exec import add_workers_argument
        parser = argparse.ArgumentParser()
        add_workers_argument(parser)
        args = parser.parse_args(["--workers", "h:1,h:2"])
        assert workers_from_args(args) == [("h", 1), ("h", 2)]
        assert workers_from_args(parser.parse_args([])) is None


class TestFrames:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = ("result", 3, 1, {"x": [1.5, None, "s"]})
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_corrupt_frame_fails_checksum(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, ("result", 1, 0, "data"), corrupt=True)
            with pytest.raises(FrameError, match="checksum"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_frames_incremental(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, ("one",))
            send_frame(a, ("two", 2))
            data = b.recv(1 << 16)
        finally:
            a.close()
            b.close()
        buf = bytearray()
        seen = []
        for i in range(len(data)):      # byte-at-a-time arrival
            buf.extend(data[i:i + 1])
            seen.extend(_parse_frames(buf))
        assert seen == [("one",), ("two", 2)]
        assert not buf

    def test_bad_magic_is_a_frame_error(self):
        with pytest.raises(FrameError, match="magic"):
            _parse_frames(bytearray(b"XXXX" + b"\0" * 16))


# ----------------------------------------------------------------------
# Clean-path remote execution (in-process daemon).


class TestRemoteCleanPath:
    def test_bitwise_equal_to_serial(self, server):
        tasks = small_batch(5)
        with remote(server, lanes=2) as executor:
            results = executor.run_batch(tasks)
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert executor.stats.conn_losses == 0
        assert executor.stats.local_fallbacks == 0

    def test_empty_batch(self, server):
        with remote(server) as executor:
            assert executor.run_batch([]) == []

    def test_reused_across_batches(self, server):
        with remote(server) as executor:
            first = executor.run_batch(small_batch(2))
            second = executor.run_batch(small_batch(2))
        assert flows_key(first) == flows_key(second)

    def test_close_idempotent(self, server):
        executor = remote(server)
        executor.run_batch(small_batch(1))
        executor.close()
        executor.close()                 # clean no-op

    def test_executor_for_prefers_workers(self, server):
        executor = executor_for(4, workers=f"127.0.0.1:{server.port}")
        try:
            assert isinstance(executor, RemoteExecutor)
            assert executor.fallback_jobs == 4
        finally:
            executor.close()

    def test_run_batch_accepts_workers(self, server):
        tasks = small_batch(2)
        results = run_batch(tasks, workers=f"127.0.0.1:{server.port}",
                            policy=FAST)
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))


# ----------------------------------------------------------------------
# Graceful degradation: no workers is a warning, not an error.


class TestDegradation:
    def test_zero_reachable_workers_runs_locally(self):
        sink = socket.socket()          # bound, never accepts: refuse
        sink.bind(("127.0.0.1", 0))
        port = sink.getsockname()[1]
        sink.close()
        tasks = small_batch(3)
        executor = RemoteExecutor([f"127.0.0.1:{port}"], policy=FAST,
                                  fallback_jobs=1,
                                  connect_timeout_s=0.5,
                                  reconnect_base_s=0.01,
                                  reconnect_max_s=0.02,
                                  max_reconnects=1)
        try:
            with pytest.warns(RuntimeWarning, match="degraded"):
                results = executor.run_batch(tasks)
        finally:
            executor.close()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert executor.stats.local_fallbacks == 1

    def test_double_close_after_fallback_leaks_nothing(self):
        executor = RemoteExecutor(["127.0.0.1:9"], policy=FAST,
                                  fallback_jobs=1,
                                  connect_timeout_s=0.5,
                                  max_reconnects=0)
        with pytest.warns(RuntimeWarning):
            executor.run_batch(small_batch(1))
        executor.close()
        executor.close()                 # second close: clean no-op
        assert not [p for p in multiprocessing.active_children()
                    if p.name.startswith("repro-supervised-")]


# ----------------------------------------------------------------------
# Chaos: injected wire faults (explicit injector, in-process daemon).


def chaos_server(plan):
    srv = WorkerServer(injector=FaultInjector(plan))
    srv.start()
    return srv


class TestWireChaos:
    def test_transient_conn_drop_absorbed(self):
        srv = chaos_server(FaultPlan(seed=11, p_conn_drop=1.0))
        try:
            tasks = small_batch(4)
            with remote(srv, lanes=2, chunk_size=2) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.conn_losses >= 1
        assert stats.reconnects >= 1     # session resumed after drop

    def test_transient_frame_corruption_absorbed(self):
        srv = chaos_server(FaultPlan(seed=5, p_frame_corrupt=1.0))
        try:
            tasks = small_batch(3)
            with remote(srv, lanes=2) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.frame_errors >= 1

    def test_partition_blows_lease_then_serial_fallback(self):
        tasks = small_batch(3)
        poison = cache_key(tasks[1])
        srv = chaos_server(FaultPlan(partition_keys=(poison,)))
        policy = RetryPolicy(max_retries=1, task_timeout_s=0.5,
                             timeout_slack_s=0.2, backoff_base_s=0.01,
                             backoff_max_s=0.05)
        try:
            with remote(srv, lanes=2, policy=policy,
                        chunk_size=1) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.lease_expiries >= 1
        assert stats.serial_fallbacks == 1

    def test_straggler_is_stolen(self):
        # One lane is slowed on every send; the idle lane steals the
        # tail of its assignment and the duplicate's results win.
        srv = chaos_server(FaultPlan(p_delay=1.0, delay_s=0.4,
                                     max_attempt=None))
        try:
            tasks = small_batch(6, duration=1.0)
            with remote(srv, lanes=2, chunk_size=3) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.steals >= 1
        assert stats.duplicates >= 1

    def test_persistent_conn_drop_is_poison_quarantine(self):
        tasks = small_batch(4)
        poison = cache_key(tasks[2])
        srv = chaos_server(FaultPlan(conn_drop_keys=(poison,)))
        policy = RetryPolicy(max_retries=2, task_timeout_s=20.0,
                             backoff_base_s=0.01, backoff_max_s=0.05,
                             on_failure="quarantine")
        try:
            with remote(srv, lanes=2, policy=policy,
                        chunk_size=4) as executor:
                results = executor.run_batch(tasks)
        finally:
            srv.stop()
        failure = results[2].failure
        assert failure is not None and failure.kind == "worker-death"
        assert "bisection" in failure.message
        clean = [r for i, r in enumerate(results) if i != 2]
        serial = SerialExecutor().run_batch(
            [t for i, t in enumerate(tasks) if i != 2])
        assert flows_key(clean) == flows_key(serial)

    def test_persistent_conn_drop_raises_under_raise_policy(self):
        tasks = small_batch(2)
        poison = cache_key(tasks[0])
        srv = chaos_server(FaultPlan(conn_drop_keys=(poison,)))
        policy = RetryPolicy(max_retries=1, task_timeout_s=20.0,
                             backoff_base_s=0.01, backoff_max_s=0.05)
        try:
            with remote(srv, policy=policy) as executor:
                with pytest.raises(TaskFailedError, match=poison[:12]):
                    executor.run_batch(tasks)
        finally:
            srv.stop()

    def test_task_exception_retries_then_succeeds(self):
        # In-task transient fault (the PR-8 kind), not a wire fault:
        # the remote worker reports it per-task and the client retries.
        tasks = small_batch(3)
        srv = chaos_server(FaultPlan(seed=2, p_exception=1.0))
        try:
            with remote(srv, lanes=2) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.retries >= 1


# ----------------------------------------------------------------------
# Real daemons in subprocesses: death, partition-then-resume.


def _spawn_worker(env=None):
    """Start serve_worker in a child process; return (process, port)."""
    queue = multiprocessing.Queue()
    saved = {}
    env = env or {}
    for key, value in env.items():
        saved[key] = os.environ.get(key)
        os.environ[key] = value
    try:
        process = multiprocessing.Process(
            target=serve_worker, kwargs=dict(port=0, on_ready=queue.put),
            daemon=True)
        process.start()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    port = queue.get(timeout=10)
    return process, port


class TestRealWorkers:
    def test_worker_death_mid_batch_finishes_on_survivors(self):
        # Worker 2 is partitioned (sleeps on every send) so it can
        # never deliver; it is then SIGKILLed mid-batch.  The client
        # must re-dispatch its tasks to the survivor and finish with
        # bitwise-identical results.
        plan = FaultPlan(p_partition=1.0, partition_s=3600.0,
                         max_attempt=None)
        alive, port1 = _spawn_worker()
        victim, port2 = _spawn_worker(
            env={FAULTS_ENV: plan.to_json()})
        tasks = small_batch(6, duration=1.0)
        try:
            # steal=False: the victim's task must complete through the
            # death path (conn loss -> re-dispatch), not a speculative
            # duplicate racing the kill timer.
            executor = RemoteExecutor(
                [f"127.0.0.1:{port1}", f"127.0.0.1:{port2}"],
                policy=FAST, fallback_jobs=1, connect_timeout_s=2.0,
                reconnect_base_s=0.01, reconnect_max_s=0.05,
                max_reconnects=1, steal=False)
            timer = threading.Timer(
                0.3, lambda: os.kill(victim.pid, signal.SIGKILL))
            timer.start()
            try:
                results = executor.run_batch(tasks)
                stats = executor.stats
            finally:
                timer.cancel()
                executor.close()
        finally:
            for process in (alive, victim):
                process.terminate()
                process.join(timeout=5)
        assert flows_key(results) \
            == flows_key(SerialExecutor().run_batch(tasks))
        assert stats.conn_losses >= 1        # the kill was observed
        assert stats.dead_workers >= 1       # and the worker written off

    def test_partition_then_resume_reexecutes_nothing(self, tmp_path):
        # Satellite: a batch that loses a worker mid-flight still fills
        # the store; a --resume run re-executes zero tasks and is
        # byte-identical to a clean serial run's store.
        plan = FaultPlan(p_partition=1.0, partition_s=3600.0,
                         max_attempt=None)
        alive, port1 = _spawn_worker()
        victim, port2 = _spawn_worker(
            env={FAULTS_ENV: plan.to_json()})
        tasks = small_batch(5, duration=1.0)
        store_path = tmp_path / "chaos-store"
        try:
            inner = RemoteExecutor(
                [f"127.0.0.1:{port1}", f"127.0.0.1:{port2}"],
                policy=FAST, fallback_jobs=1, connect_timeout_s=2.0,
                reconnect_base_s=0.01, reconnect_max_s=0.05,
                max_reconnects=1, steal=False)
            timer = threading.Timer(
                0.3, lambda: os.kill(victim.pid, signal.SIGKILL))
            timer.start()
            try:
                with StoreExecutor(inner, store=store_path) as executor:
                    first = executor.run_batch(tasks)
            finally:
                timer.cancel()
        finally:
            for process in (alive, victim):
                process.terminate()
                process.join(timeout=5)
        serial = SerialExecutor().run_batch(tasks)
        assert flows_key(first) == flows_key(serial)
        # Resume: every result comes off disk, zero re-executions.
        with executor_for(None, store=store_path,
                          resume=True) as resumed:
            again = resumed.run_batch(tasks)
            assert resumed.hits == len(tasks)
            assert resumed.misses == 0
        assert flows_key(again) == flows_key(serial)
        # The chaos store's records match a clean serial store's,
        # record for record (ts excluded: it is wall-clock metadata).
        clean_path = tmp_path / "clean-store"
        with StoreExecutor(SerialExecutor(),
                           store=clean_path) as executor:
            executor.run_batch(tasks)

        def canonical(path):
            records = {}
            for shard in sorted((path / "shards").iterdir()):
                for line in shard.read_text().splitlines():
                    record = json.loads(line)
                    record.pop("ts", None)
                    records[record["key"]] = json.dumps(
                        record, sort_keys=True)
            return records

        assert canonical(store_path) == canonical(clean_path)


# ----------------------------------------------------------------------
# The golden pin: full chaos schedule over the golden scenarios.


class TestGoldenChaos:
    def test_digests_survive_full_chaos_schedule(self):
        """Worker death (conn loss), heartbeat-timeout lease expiry,
        and at least one speculative duplicate — same digests as the
        fault-free golden table."""
        from test_golden_traces import (GOLDEN, SCENARIOS,
                                        result_digest)
        names = list(SCENARIOS)
        tasks = [SCENARIOS[name] for name in names]
        partitioned = cache_key(SCENARIOS["api"])
        plan = FaultPlan(seed=13, p_conn_drop=0.35, p_delay=0.5,
                         delay_s=0.3, partition_keys=(partitioned,),
                         partition_s=3600.0)
        policy = RetryPolicy(max_retries=2, task_timeout_s=2.0,
                             timeout_slack_s=0.5, backoff_base_s=0.01,
                             backoff_max_s=0.05)
        srv = chaos_server(plan)
        try:
            with remote(srv, lanes=2, policy=policy,
                        chunk_size=3) as executor:
                results = executor.run_batch(tasks)
                stats = executor.stats
        finally:
            srv.stop()
        digests = {name: result_digest(result)
                   for name, result in zip(names, results)}
        assert digests == GOLDEN
        assert stats.conn_losses >= 1        # worker death happened
        assert stats.lease_expiries >= 1     # a lease blew
        assert stats.duplicates >= 1         # a steal speculated
