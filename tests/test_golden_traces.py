"""Determinism regression harness: golden result fingerprints.

One pinned scenario per experiment module, each digested to a SHA-1
over the canonical serialized :class:`SimTaskResult`.  The committed
GOLDEN table is the contract the whole reproduction stands on:

* the simulator is a pure function of the task — any change to the
  engine, transport, queues, or workload that shifts a single float
  shows up here as a digest mismatch (bump the goldens *knowingly*);
* serial, pooled, and store-backed execution all reproduce the same
  digests — the common-random-numbers property the Remy optimizer's
  candidate comparisons depend on;
* a result written to disk and read back is bitwise-identical — the
  store may substitute persisted results for live simulation.

If a legitimate simulator change lands, regenerate with::

    PYTHONPATH=src python tests/test_golden_traces.py
"""

import hashlib
import json

from repro.core.scenario import NetworkConfig
from repro.exec import (ProcessPoolExecutor, SerialExecutor, SimTask,
                        StoreExecutor)
from repro.exec.store import encode_result
from repro.experiments.api import FAKE_TREE as TREE
from repro.experiments.api import Axis, adhoc_spec, expand
from repro.experiments.calibration import CALIBRATION_CONFIG
from repro.sim.dynamics import DynamicsSpec, LinkSchedule

_LEARNER = {"learner": TREE}
_DURATION = 2.0


def _dumbbell(speed, rtt_ms, kinds, queue="droptail", buffer_bdp=5.0,
              deltas=(), dynamics=None, ecn_threshold=None):
    return NetworkConfig(
        link_speeds_mbps=(speed,), rtt_ms=rtt_ms, sender_kinds=kinds,
        deltas=deltas, mean_on_s=1.0, mean_off_s=1.0,
        buffer_bdp=buffer_bdp, queue=queue, dynamics=dynamics,
        ecn_threshold=ecn_threshold)


#: One scenario per experiment module, mirroring that module's network
#: family (speeds/RTTs/mixes/queues from the module's own constants) at
#: a 2-simulated-second budget.
SCENARIOS = {
    # E1 calibration: the paper's 32 Mbps / 150 ms / 2-learner network.
    "calibration": SimTask.build(
        CALIBRATION_CONFIG, trees=_LEARNER, seed=1,
        duration_s=_DURATION),
    # E2 link_speed: one point of the 1-1000 Mbps sweep (150 ms RTT).
    "link_speed": SimTask.build(
        _dumbbell(10.0, 150.0, ("learner", "learner")),
        trees=_LEARNER, seed=1, duration_s=_DURATION),
    # E3 multiplexing: 15 Mbps, more senders, the "no drop" buffer.
    "multiplexing": SimTask.build(
        _dumbbell(15.0, 150.0, ("learner",) * 3, buffer_bdp=None),
        trees=_LEARNER, seed=1, duration_s=_DURATION),
    # E4 rtt: the 33 Mbps dumbbell at an off-training 50 ms RTT.
    "rtt": SimTask.build(
        _dumbbell(33.0, 50.0, ("learner", "learner")),
        trees=_LEARNER, seed=1, duration_s=_DURATION),
    # E5 structure: the two-bottleneck parking lot (75 ms per hop).
    "structure": SimTask.build(
        NetworkConfig(topology="parking_lot",
                      link_speeds_mbps=(10.0, 20.0), rtt_ms=150.0,
                      sender_kinds=("learner",) * 3,
                      deltas=(1.0,) * 3, mean_on_s=1.0, mean_off_s=1.0,
                      buffer_bdp=5.0),
        trees=_LEARNER, seed=1, duration_s=_DURATION),
    # E6/E7 tcp_awareness: a Tao sharing the link with NewReno.
    "tcp_awareness": SimTask.build(
        _dumbbell(10.0, 100.0, ("learner", "newreno")),
        trees=_LEARNER, seed=1, duration_s=_DURATION),
    # E8 diversity: mixed objectives (delta 0.1 vs 10) on an infinite
    # buffer, learner + peer trees.
    "diversity": SimTask.build(
        _dumbbell(10.0, 100.0, ("learner", "peer"),
                  buffer_bdp=None, deltas=(0.1, 10.0)),
        trees={"learner": TREE, "peer": TREE}, seed=1,
        duration_s=_DURATION),
    # E9 signals: the calibration network with per-whisker usage
    # recording on (the path the knockout training runs exercise).
    "signals": SimTask.build(
        CALIBRATION_CONFIG, trees=_LEARNER, seed=2,
        duration_s=_DURATION, record_usage=True),
}

#: The spec-engine path: a grid composed through the declarative sweep
#: API (an ad-hoc link×queue grid's CoDel cell — a queue discipline no
#: experiment module hardcodes), expanded by the same `expand` the
#: engine runs on.  Pins both the expansion (cell order, config
#: construction) and the codel simulation path.
_ADHOC_SPEC = adhoc_spec(
    axes=(Axis.log("link_mbps", 8.0, 32.0, 2),
          Axis.of("queue", ("droptail", "codel"))),
    schemes=("cubic",), name="golden_adhoc", bound=False)
_ADHOC_PLANS = expand(_ADHOC_SPEC)[1]
SCENARIOS["api"] = SimTask.build(
    _ADHOC_PLANS[1].cell.config, trees=None, seed=1,
    duration_s=_DURATION)

#: Simulator-path scenarios (no experiment module of their own): pin
#: both halves of the link hot path introduced with the pooled packet
#: work.
#
# zero_delay: every hop has zero propagation (rtt 0), so the whole
# forward/reverse path runs through the instant links' direct-call /
# relay-yield machinery and the bottleneck's zero-delay direct
# delivery.  Infinite buffer: a 0-RTT BDP would floor the buffer to one
# packet and starve the run.
SCENARIOS["zero_delay"] = SimTask.build(
    _dumbbell(10.0, 0.0, ("learner", "newreno"), buffer_bdp=None),
    trees=_LEARNER, seed=1, duration_s=_DURATION)
# sfq_codel: the generic (virtual-dispatch) queue path, which must stay
# byte-identical to the pre-fast-path machinery.
SCENARIOS["sfq_codel"] = SimTask.build(
    _dumbbell(15.0, 100.0, ("learner", "cubic"), queue="sfq_codel"),
    trees=_LEARNER, seed=1, duration_s=_DURATION)
# many_senders_fluid: the vectorized fluid backend at a sender count
# the packet engine would crawl on.  Pins the fluid integrator's
# determinism (and its seed-batch invariance, via the pooled run,
# which groups fluid tasks into one array program).
SCENARIOS["many_senders_fluid"] = SimTask.build(
    _dumbbell(15.0, 150.0, ("learner",) * 50, buffer_bdp=None),
    trees=_LEARNER, seed=1, duration_s=_DURATION, backend="fluid")

#: Link-dynamics scenarios: pin the dynamic serialization path the
#: static fast paths bypass.
#
# outage_blackout: two hold-policy blackout windows on the bottleneck —
# rate drops to 0 mid-serialization (re-pricing the in-flight packet's
# remaining bits) and recovery restarts the held queue.
SCENARIOS["outage_blackout"] = SimTask.build(
    _dumbbell(12.0, 150.0, ("learner", "newreno"),
              dynamics=DynamicsSpec.outage(((0.6, 1.0), (1.4, 1.6)))),
    trees=_LEARNER, seed=1, duration_s=_DURATION)
# rtt_jitter: periodic delay resampling plus random reordering — the
# two packet-only dynamics features (no fluid analogue), drawing from
# the dynamics RNG stream disjoint from the workload streams.
SCENARIOS["rtt_jitter"] = SimTask.build(
    _dumbbell(12.0, 100.0, ("learner", "newreno"),
              dynamics=DynamicsSpec(links=(LinkSchedule(
                  jitter_ms=10.0, jitter_period_s=0.05,
                  reorder_prob=0.05, reorder_extra_ms=8.0),))),
    trees=_LEARNER, seed=1, duration_s=_DURATION)

#: ECN + modern schemes: pin the marking path end to end.
#
# ecn: the E10 module's family — an ECN drop-tail bottleneck shared by
# a DCTCP (reacts to CE echoes) and a Cubic (ignores them) sender, so
# the digest pins both the marking machinery and the non-ECN scheme's
# indifference to it.
SCENARIOS["ecn"] = SimTask.build(
    _dumbbell(15.0, 50.0, ("dctcp", "cubic"), ecn_threshold=15.0),
    trees=None, seed=1, duration_s=_DURATION)
# dctcp_ecn: homogeneous DCTCP under a tight threshold — the
# marked-fraction EWMA and proportional-cut trajectory.  (50 ms RTT:
# slow start must actually reach the threshold inside the 2 s budget,
# or the digest would pin a mark-free — ECN-dead — trajectory.)
SCENARIOS["dctcp_ecn"] = SimTask.build(
    _dumbbell(15.0, 50.0, ("dctcp", "dctcp"), ecn_threshold=10.0),
    trees=None, seed=1, duration_s=_DURATION)
# pcc_dumbbell: PCC's monitor-interval/utility-gradient loop (packet
# only — no fluid analogue of rate trials).
SCENARIOS["pcc_dumbbell"] = SimTask.build(
    _dumbbell(15.0, 100.0, ("pcc", "pcc")),
    trees=None, seed=1, duration_s=_DURATION)

#: name -> SHA-1 of the canonical serialized result.  Regenerate by
#: running this file as a script — but only after convincing yourself
#: the simulator change behind the mismatch is intentional.
GOLDEN = {
    "calibration": "48d59864b2ad2111d27f6753116e2384897c1048",
    "link_speed": "ff018da7fd61b9c51e6551a0d70287ef199120c8",
    "multiplexing": "6bef938d7172d20502f46d76ba9620a1c7556502",
    "rtt": "21d6478b30858f7cb6344be790a7ba734792b84e",
    "structure": "5769c43d166243d7e43db24a1d20a5940a028d7e",
    "tcp_awareness": "e91183a85f17c3f7b9cf072ab19b14d35716586c",
    "diversity": "f749def2366abb41d3313591b31bf4798106c7ce",
    "signals": "b13307dd764739faeaeacf7ae52aa94907b0bdea",
    "api": "0db9043ca3c8c29b9776b3a321977c23ac9ca3f8",
    "zero_delay": "ec956bfd539121b708292613bd947951939d50ba",
    "sfq_codel": "a3c66118f8d3678804aeb47ef197bddb085e44d6",
    "many_senders_fluid": "bf1e625e1803dfd31fab55382206f8cf4d026074",
    "outage_blackout": "753836519abf3a4eee99198e9336f6b5555c7236",
    "rtt_jitter": "590d8579b90f3ef7fc5b4f7ea78d5b8e69c6a47a",
    "ecn": "f8bf29d38150840c7f771fdac013d61b78d80fb1",
    "dctcp_ecn": "1408f173aa738536ab43dc60e4deefb575f6e6b9",
    "pcc_dumbbell": "ada7aa9f913232a73c4c4eff4bae7d6b6a1298cd",
}


def result_digest(result) -> str:
    """Canonical SHA-1 of everything a result carries."""
    payload = json.dumps(encode_result(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha1(payload.encode()).hexdigest()


def _digests(results):
    return {name: result_digest(result)
            for name, result in zip(SCENARIOS, results)}


NAMES = list(SCENARIOS)
TASKS = [SCENARIOS[name] for name in NAMES]


class TestGoldenTraces:
    def test_scenarios_cover_every_experiment_module(self):
        """A new experiment module must bring a golden scenario along."""
        import inspect

        import repro.experiments as experiments
        # "common" and "adversary" are infrastructure (shared builders,
        # the search loop), not registered experiment modules.
        modules = {name for name in dir(experiments)
                   if not name.startswith("_")
                   and name not in ("common", "adversary")
                   and inspect.ismodule(getattr(experiments, name))}
        # Subset, not equality: SCENARIOS also pins simulator paths no
        # experiment module owns (zero_delay, sfq_codel).
        assert modules <= set(SCENARIOS)

    def test_serial_matches_golden(self):
        digests = _digests(SerialExecutor().run_batch(TASKS))
        assert digests == GOLDEN

    def test_pooled_matches_golden(self):
        with ProcessPoolExecutor(jobs=2) as pool:
            digests = _digests(pool.run_batch(TASKS))
        assert digests == GOLDEN

    def test_store_backed_matches_golden(self, tmp_path):
        """Persist, then serve everything from disk: both the freshly
        computed and the decoded-from-disk results must digest to the
        goldens (disk round-trip is bitwise)."""
        first = StoreExecutor(SerialExecutor(), store=tmp_path / "s")
        assert _digests(first.run_batch(TASKS)) == GOLDEN
        replay = StoreExecutor(SerialExecutor(), store=tmp_path / "s")
        assert _digests(replay.run_batch(TASKS)) == GOLDEN
        assert (replay.hits, replay.misses) == (len(TASKS), 0)


if __name__ == "__main__":
    for name, task in SCENARIOS.items():
        from repro.exec import run_sim_task
        print(f'    "{name}": "{result_digest(run_sim_task(task))}",')
